//! Quickstart: build a small multicore, run a two-epoch persistent update
//! under the LB++ barrier, and inspect what became durable.
//!
//! Run: `cargo run -p pbm --example quickstart`

use pbm::prelude::*;

fn main() -> Result<(), ConfigError> {
    // A 4-core system (scaled-down Table 1) with the paper's headline
    // configuration: LB++ enforcing buffered epoch persistency.
    let mut cfg = SystemConfig::small_test();
    cfg.barrier = BarrierKind::LbPp;
    cfg.persistency = PersistencyKind::BufferedEpoch;

    // Core 0 performs one persistent-queue insert (Figure 10): epoch A
    // copies a 512-byte entry, epoch B publishes it by bumping the head
    // pointer. The barrier between them is what guarantees a crash never
    // sees the pointer without the data.
    let entry = Addr::new(0);
    let head_ptr = Addr::new(4096);
    let mut program = ProgramBuilder::new();
    program
        .store_span(entry, 512, 7) // epoch A: the entry payload
        .barrier()
        .store(head_ptr, 1) // epoch B: the commit pointer
        .barrier();

    let mut sys = System::new(cfg, vec![program.build()])?;
    let stats = sys.run();

    println!(
        "executed {} stores across {} epochs",
        stats.stores, stats.epochs_created
    );
    println!("execution took {} cycles", stats.cycles);
    println!(
        "epochs persisted: {} ({} NVRAM line writes)",
        stats.epochs_persisted, stats.nvram_writes
    );
    println!(
        "conflicts: {} intra-thread, {} inter-thread",
        stats.conflicts_intra, stats.conflicts_inter
    );

    // Everything is durable after the run; the head pointer carries 1.
    let head = sys
        .durable_line(head_ptr.line())
        .expect("head pointer persisted");
    println!("durable head pointer value: {}", System::token_value(head));
    assert_eq!(System::token_value(head), 1);
    Ok(())
}
