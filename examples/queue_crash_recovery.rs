//! Figure 10 end-to-end: persistent queue inserts with crash injection.
//!
//! Replays the paper's queue-insert recipe, then "crashes" the machine at
//! every few hundred cycles of the run and checks the recovery invariant
//! the barrier placement is supposed to buy: *if the head pointer points
//! past an entry, that entry's payload is fully durable.* A crash between
//! epoch A (entry copy) and epoch B (head bump) simply ignores the
//! half-inserted entry.
//!
//! Run: `cargo run -p pbm --example queue_crash_recovery`

use pbm::prelude::*;

const ENTRY_BYTES: u64 = 512;
const SLOTS: u64 = 32;

fn slot(i: u64) -> Addr {
    Addr::new((i % SLOTS) * ENTRY_BYTES)
}

fn head_ptr() -> Addr {
    Addr::new(SLOTS * ENTRY_BYTES)
}

fn main() -> Result<(), ConfigError> {
    let mut cfg = SystemConfig::small_test();
    cfg.cores = 1;
    cfg.llc_banks = 4;
    cfg.barrier = BarrierKind::LbPp;

    // One thread performs 8 inserts.
    let inserts = 8u64;
    let mut b = ProgramBuilder::new();
    for i in 0..inserts {
        b.store_span(slot(i), ENTRY_BYTES, (100 + i) as u32); // epoch A
        b.barrier();
        b.store(head_ptr(), (i + 1) as u32); // epoch B: head = i+1
        b.barrier();
    }

    let mut sys = System::new(cfg, vec![b.build()])?;
    sys.enable_checking();
    sys.preload(head_ptr(), 0);
    let stats = sys.run();
    println!(
        "ran {} inserts in {} cycles; {} epochs persisted",
        inserts, stats.cycles, stats.epochs_persisted
    );

    // Crash everywhere and recover.
    let horizon = stats.cycles + 30_000;
    let mut checked = 0u64;
    let mut ignored_partial = 0u64;
    for at in (0..horizon).step_by(250) {
        let snap = sys.persistent_snapshot_at(Cycle::new(at));
        // Recovery: read the durable head pointer.
        let head = snap
            .line(head_ptr().line())
            .map(|tok| System::token_value(tok) as u64)
            .unwrap_or(0);
        // Invariant: every entry below head is fully durable with the
        // value written for it.
        for i in 0..head {
            for l in 0..(ENTRY_BYTES / 64) {
                let line = slot(i).offset(l * 64).line();
                let tok = snap.line(line).unwrap_or_else(|| {
                    panic!("crash@{at}: head={head} but entry {i} line {l} not durable")
                });
                assert_eq!(
                    System::token_value(tok) as u64,
                    100 + i,
                    "crash@{at}: entry {i} holds a foreign value"
                );
            }
        }
        // Count crashes that caught a half-inserted entry (data durable
        // beyond head) — legal, and exactly what recovery ignores.
        if snap.line(slot(head).line()).is_some() && head < inserts {
            ignored_partial += 1;
        }
        checked += 1;
    }
    println!("checked {checked} crash points: recovery invariant held at every one");
    println!("{ignored_partial} crash points caught a half-inserted entry (safely ignored)");
    Ok(())
}
