//! Figure 1 in numbers: the same store sequence under strict (SP), epoch
//! (EP) and buffered-epoch (BEP) persistency.
//!
//! The paper's Figure 1 contrasts when visibility and persistence complete
//! under each model. This example runs one thread issuing the figure's
//! six stores (`a a b c` in epoch 1, `d e` in epoch 2, `f` in epoch 3)
//! under each model and prints execution time and persist counts: SP
//! (write-through) pays a persist per store and cannot coalesce the two
//! stores to `a`; EP stalls at each barrier; BEP retires barriers without
//! stalling and persists offline.
//!
//! Run: `cargo run -p pbm --example persistency_timelines`

use pbm::prelude::*;

fn program() -> Program {
    let a = Addr::new(0);
    let b = Addr::new(64);
    let c = Addr::new(128);
    let d = Addr::new(192);
    let e = Addr::new(256);
    let f = Addr::new(320);
    let mut p = ProgramBuilder::new();
    p.store(a, 1)
        .store(a, 2) // coalesces under EP/BEP, cannot under SP
        .store(b, 3)
        .store(c, 4)
        .barrier()
        .store(d, 5)
        .store(e, 6)
        .barrier()
        .store(f, 7)
        .barrier();
    p.build()
}

fn run(label: &str, barrier: BarrierKind, model: PersistencyKind) -> Result<(), ConfigError> {
    let mut cfg = SystemConfig::small_test();
    cfg.cores = 1;
    cfg.barrier = barrier;
    cfg.persistency = model;
    let mut sys = System::new(cfg, vec![program()])?;
    let stats = sys.run();
    println!(
        "{label:<28} visibility done @ {:>6} cycles | {:>2} NVRAM writes | barrier stalls {:>5} cycles",
        stats.cycles, stats.nvram_writes, stats.barrier_stall_cycles
    );
    Ok(())
}

fn main() -> Result<(), ConfigError> {
    println!("six stores, three epochs (Figure 1's sequence), one core:\n");
    run(
        "SP  (strict, write-through)",
        BarrierKind::WriteThrough,
        PersistencyKind::Strict,
    )?;
    run(
        "EP  (epoch persistency)",
        BarrierKind::LbPp,
        PersistencyKind::Epoch,
    )?;
    run(
        "BEP (buffered epochs, LB++)",
        BarrierKind::LbPp,
        PersistencyKind::BufferedEpoch,
    )?;
    println!(
        "\nSP persists 7 lines (no coalescing of the two stores to `a`) in the\n\
         critical path; EP coalesces but stalls at barriers; BEP retires the\n\
         same barriers without stalling — persists happen offline."
    );
    Ok(())
}
