//! Barrier face-off: one micro-benchmark, all four lazy barrier variants.
//!
//! A miniature Figure 11: runs the `queue` micro-benchmark under LB,
//! LB+IDT, LB+PF and LB++ and prints throughput, conflict counts, and
//! where the flushes came from — the quantities that explain *why* LB++
//! wins.
//!
//! Run: `cargo run -p pbm --example barrier_faceoff --release`

use pbm::prelude::*;
use pbm::workloads::micro::{queue, MicroParams};

fn main() -> Result<(), ConfigError> {
    let mut params = MicroParams::paper();
    params.threads = 8;
    params.ops_per_thread = 32;
    let wl = queue(&params);

    let mut base = SystemConfig::micro48();
    base.cores = 8;
    base.llc_banks = 8;
    base.mesh_rows = 2;
    base.persistency = PersistencyKind::BufferedEpoch;

    println!(
        "{:<8} {:>10} {:>8} {:>8} {:>10} {:>10} {:>10}",
        "barrier", "tput", "intra", "inter", "conflict%", "proactive", "stall-cy"
    );
    let mut lb_tput = None;
    for kind in BarrierKind::LAZY_VARIANTS {
        let mut cfg = base.clone();
        cfg.barrier = kind;
        let mut sys = System::new(cfg, wl.programs.clone())?;
        wl.apply_preloads(&mut sys);
        let stats = sys.run();
        let tput = stats.throughput();
        let lb = *lb_tput.get_or_insert(tput);
        println!(
            "{:<8} {:>9.2}x {:>8} {:>8} {:>9.1}% {:>10} {:>10}",
            kind.to_string(),
            tput / lb,
            stats.conflicts_intra,
            stats.conflicts_inter,
            stats.conflicting_epoch_pct(),
            stats.epochs_proactive_flushed,
            stats.online_persist_stall_cycles,
        );
    }
    println!("\n(throughput normalized to LB; paper's Figure 11 gmean: LB++ = 1.22x)");
    Ok(())
}
