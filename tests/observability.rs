//! Observability integration tests: determinism of the exported
//! artifacts, round-tripping of the event codec, and the shape of the
//! Chrome trace produced from real simulated runs.

use pbm::obs::{chrome, codec, json, metrics_csv};
use pbm::prelude::*;
use pbm_types::{MetricSample, TraceEvent, TraceEventKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn conflict_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::small_test();
    cfg.barrier = BarrierKind::LbPp;
    cfg.persistency = PersistencyKind::BufferedEpoch;
    cfg
}

/// A seeded multithreaded workload with enough sharing to exercise the
/// conflict, IDT and stall machinery.
fn seeded_programs(seed: u64, cores: usize) -> Vec<Program> {
    (0..cores)
        .map(|core| {
            let mut rng = StdRng::seed_from_u64(seed ^ ((core as u64) << 32));
            let mut b = ProgramBuilder::new();
            let private_base = 1_000 + core as u64 * 64;
            for i in 0..60usize {
                match rng.gen_range(0..10) {
                    0..=5 => {
                        let line = if rng.gen_bool(0.4) {
                            rng.gen_range(0..8)
                        } else {
                            private_base + rng.gen_range(0..16)
                        };
                        b.store(Addr::new(line * 64), i as u32);
                    }
                    6..=7 => {
                        let line = rng.gen_range(0..8);
                        b.load(Addr::new(line * 64));
                    }
                    _ => {
                        b.barrier();
                    }
                }
            }
            b.barrier();
            b.build()
        })
        .collect()
}

fn traced_run(seed: u64) -> (Vec<TraceEvent>, Vec<MetricSample>) {
    let cfg = conflict_cfg();
    let mut sys = System::new(cfg, seeded_programs(seed, 4)).expect("valid config");
    sys.enable_tracing();
    sys.enable_metrics(Cycle::new(500));
    sys.run();
    (sys.take_trace_events(), sys.take_metric_samples())
}

#[test]
fn same_seed_runs_export_byte_identical_artifacts() {
    let (events_a, samples_a) = traced_run(7);
    let (events_b, samples_b) = traced_run(7);
    assert!(!events_a.is_empty(), "trace should capture events");
    assert!(!samples_a.is_empty(), "sampler should capture rows");
    assert_eq!(
        codec::export_events(&events_a),
        codec::export_events(&events_b),
        "event-log JSON must be byte-identical across same-seed runs"
    );
    assert_eq!(
        chrome::export_chrome_trace(&events_a, &samples_a),
        chrome::export_chrome_trace(&events_b, &samples_b),
        "Chrome trace JSON must be byte-identical across same-seed runs"
    );
    assert_eq!(
        metrics_csv(&samples_a),
        metrics_csv(&samples_b),
        "metrics CSV must be byte-identical across same-seed runs"
    );
}

#[test]
fn different_seeds_diverge() {
    let (events_a, _) = traced_run(7);
    let (events_b, _) = traced_run(8);
    assert_ne!(
        codec::export_events(&events_a),
        codec::export_events(&events_b),
        "different programs should produce different traces"
    );
}

#[test]
fn event_log_round_trips_through_the_codec() {
    let (events, _) = traced_run(11);
    let text = codec::export_events(&events);
    let parsed = codec::parse_events(&text).expect("exported log parses");
    assert_eq!(parsed, events, "decode(encode(x)) == x for a real run");
    // And re-encoding is stable.
    assert_eq!(codec::export_events(&parsed), text);
}

#[test]
fn trace_covers_the_flush_handshake() {
    let (events, _) = traced_run(13);
    let has = |f: &dyn Fn(&TraceEventKind) -> bool| events.iter().any(|e| f(&e.kind));
    assert!(has(&|k| matches!(k, TraceEventKind::FlushEpoch { .. })));
    assert!(has(&|k| matches!(k, TraceEventKind::BankAck { .. })));
    assert!(has(&|k| matches!(k, TraceEventKind::PersistCmp { .. })));
    assert!(has(&|k| matches!(k, TraceEventKind::EpochPhase { .. })));
    assert!(has(&|k| matches!(k, TraceEventKind::NocSend { .. })));
    // Stalls come in begin/end pairs (every begin eventually ends because
    // the run completed).
    let begins = events
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::StallBegin { .. }))
        .count();
    let ends = events
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::StallEnd { .. }))
        .count();
    assert_eq!(begins, ends, "stall begins and ends must pair up");
    // Timestamps never decrease across the milestone events, which are
    // stamped with the event-loop clock. (`NocSend` is exempt: it is
    // stamped with its injection time, which a timed cascade inside one
    // handler can place ahead of the loop clock. `BankFlushStart` and
    // `PersistWrite` are likewise cascade-stamped: the whole bank flush
    // is computed inside one handler and stamped with future cycles.)
    let milestones: Vec<_> = events
        .iter()
        .filter(|e| {
            !matches!(
                e.kind,
                TraceEventKind::NocSend { .. }
                    | TraceEventKind::BankFlushStart { .. }
                    | TraceEventKind::PersistWrite { .. }
            )
        })
        .collect();
    assert!(
        milestones.windows(2).all(|w| w[0].cycle <= w[1].cycle),
        "milestone events must be time-ordered"
    );
}

#[test]
fn chrome_export_is_valid_and_has_per_core_epoch_tracks() {
    let (events, samples) = traced_run(17);
    let text = chrome::export_chrome_trace(&events, &samples);
    let doc = json::parse(&text).expect("chrome trace is valid JSON");
    let evs = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    // Epoch execution spans (pid 1) for at least two distinct cores.
    let mut exec_tids = std::collections::BTreeSet::new();
    for e in evs {
        if e.get("ph").and_then(|v| v.as_str()) == Some("X")
            && e.get("pid").and_then(|v| v.as_u64()) == Some(1)
        {
            exec_tids.insert(e.get("tid").and_then(|v| v.as_u64()).unwrap());
        }
    }
    assert!(
        exec_tids.len() >= 2,
        "expected epoch spans on >=2 core tracks, got {exec_tids:?}"
    );
    // Metrics counters present when samples exist.
    assert!(
        evs.iter()
            .any(|e| e.get("ph").and_then(|v| v.as_str()) == Some("C")),
        "expected counter events from the metric samples"
    );
}

#[test]
fn metrics_counters_are_cumulative_and_time_ordered() {
    let (_, samples) = traced_run(19);
    assert!(samples.len() >= 2, "want at least two samples");
    for w in samples.windows(2) {
        assert!(w[0].cycle < w[1].cycle);
        assert!(w[0].nvram_writes <= w[1].nvram_writes);
        assert!(w[0].noc_messages <= w[1].noc_messages);
        assert!(w[0].epochs_persisted <= w[1].epochs_persisted);
        assert!(w[0].online_stall_cycles <= w[1].online_stall_cycles);
        assert!(w[0].barrier_stall_cycles <= w[1].barrier_stall_cycles);
    }
}

#[test]
fn disabled_observer_records_nothing() {
    let cfg = conflict_cfg();
    let mut sys = System::new(cfg, seeded_programs(7, 4)).expect("valid config");
    sys.run();
    assert!(sys.take_trace_events().is_empty());
    assert!(sys.take_metric_samples().is_empty());
}

#[test]
fn stats_are_unchanged_by_tracing() {
    let cfg = conflict_cfg();
    let mut plain = System::new(cfg.clone(), seeded_programs(23, 4)).expect("valid config");
    let stats_plain = plain.run();
    let mut traced = System::new(cfg, seeded_programs(23, 4)).expect("valid config");
    traced.enable_tracing();
    traced.enable_metrics(Cycle::new(500));
    let stats_traced = traced.run();
    assert_eq!(
        stats_plain, stats_traced,
        "observation must not perturb the simulation"
    );
}
