//! Crash-consistency integration tests: random multithreaded workloads,
//! every barrier variant, arbitrary crash points — the persistency model's
//! guarantees must hold at all of them.
//!
//! The random-program generator lives in `pbm_workloads::random` and is
//! shared with the `pbm-check` fuzzing harness, so any program shape that
//! exposes a bug here can be replayed there (and vice versa).

use pbm::prelude::*;
use pbm_workloads::random::{programs, random_programs, RandomProgramParams};
use proptest::prelude::*;

fn small_cfg(barrier: BarrierKind, persistency: PersistencyKind) -> SystemConfig {
    let mut cfg = SystemConfig::small_test();
    cfg.barrier = barrier;
    cfg.persistency = persistency;
    cfg
}

fn check_bep_programs(programs: Vec<Program>, barrier: BarrierKind, seed: u64) {
    let cfg = small_cfg(barrier, PersistencyKind::BufferedEpoch);
    let mut sys = System::new(cfg, programs).expect("valid config");
    sys.enable_checking();
    let stats = sys.run();
    let ck = sys.checker().expect("checking enabled");
    let horizon = stats.cycles + 50_000;
    for k in 0..40 {
        let at = Cycle::new(horizon * k / 39);
        let snap = sys.persistent_snapshot_at(at);
        ck.check_bep(&snap)
            .unwrap_or_else(|v| panic!("{barrier} seed={seed}: violation at {at}: {v}"));
    }
    // The recorded dependence graph must be acyclic (deadlock freedom).
    assert!(ck.hb_graph().is_acyclic(), "{barrier}: cyclic dependences");
}

fn check_bep_everywhere(seed: u64, barrier: BarrierKind) {
    let cfg = small_cfg(barrier, PersistencyKind::BufferedEpoch);
    let params = RandomProgramParams::mixed(60, 16);
    check_bep_programs(random_programs(seed, cfg.cores, &params), barrier, seed);
}

#[test]
fn bep_invariants_hold_for_every_lazy_barrier() {
    for barrier in BarrierKind::LAZY_VARIANTS {
        for seed in [1u64, 2, 3] {
            check_bep_everywhere(seed, barrier);
        }
    }
}

#[test]
fn bsp_recovery_is_atomic_for_every_lazy_barrier() {
    for barrier in BarrierKind::LAZY_VARIANTS {
        for seed in [11u64, 12] {
            let mut cfg = small_cfg(barrier, PersistencyKind::BufferedStrictBulk);
            cfg.bsp_epoch_size = 7;
            let params = RandomProgramParams::mixed(50, 12);
            let programs = random_programs(seed, cfg.cores, &params);
            let mut sys = System::new(cfg, programs).expect("valid config");
            sys.enable_checking();
            let stats = sys.run();
            let ck = sys.checker().expect("checking enabled");
            let horizon = stats.cycles + 50_000;
            for k in 0..40 {
                let at = Cycle::new(horizon * k / 39);
                let snap = sys.persistent_snapshot_at(at);
                let (recovered, _) = snap.recover_with(sys.undo_log());
                ck.check_bsp_recovered(&recovered)
                    .unwrap_or_else(|v| panic!("{barrier} seed={seed}: violation at {at}: {v}"));
            }
        }
    }
}

#[test]
fn strict_write_through_persists_in_program_order() {
    let cfg = small_cfg(BarrierKind::WriteThrough, PersistencyKind::Strict);
    let mut b = ProgramBuilder::new();
    for i in 0..20u64 {
        b.store(Addr::new(i * 64), i as u32);
    }
    let mut sys = System::new(cfg, vec![b.build()]).expect("valid config");
    sys.enable_checking();
    let stats = sys.run();
    // At every crash point, the durable lines must be a prefix of program
    // order: if line k is durable, lines 0..k are durable.
    for at in (0..stats.cycles + 1000).step_by(97) {
        let snap = sys.persistent_snapshot_at(Cycle::new(at));
        let durable: Vec<bool> = (0..20u64)
            .map(|i| snap.line(LineAddr::new(i)).is_some())
            .collect();
        let first_gap = durable.iter().position(|d| !d).unwrap_or(20);
        assert!(
            durable[first_gap..].iter().all(|d| !d),
            "crash@{at}: durable set {durable:?} is not a program-order prefix"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random seeds, random crash points: LB++ never violates BEP.
    #[test]
    fn prop_lbpp_bep_consistency(
        case in programs(4, RandomProgramParams::mixed(60, 16))
    ) {
        let (seed, progs) = case;
        check_bep_programs(progs, BarrierKind::LbPp, seed);
    }

    /// Determinism: a workload produces identical statistics on every run.
    #[test]
    fn prop_runs_are_deterministic(seed in 0u64..50) {
        let mk = || {
            let cfg = small_cfg(BarrierKind::LbPp, PersistencyKind::BufferedEpoch);
            let params = RandomProgramParams::mixed(40, 8);
            let programs = random_programs(seed, cfg.cores, &params);
            let mut sys = System::new(cfg, programs).expect("valid config");
            sys.run()
        };
        prop_assert_eq!(mk(), mk());
    }
}
