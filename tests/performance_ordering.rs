//! Cross-configuration performance-ordering tests: the qualitative
//! relationships the paper's evaluation rests on must hold in the model.

use pbm::prelude::*;
use pbm::workloads::micro::{self, MicroParams};

fn micro_cfg(barrier: BarrierKind) -> SystemConfig {
    let mut cfg = SystemConfig::builder()
        .cores(8)
        .mesh_rows(2)
        .barrier(barrier)
        .persistency(PersistencyKind::BufferedEpoch)
        .build()
        .expect("valid");
    cfg.mcs = 4;
    cfg
}

fn micro_params() -> MicroParams {
    let mut p = MicroParams::paper();
    p.threads = 8;
    p.ops_per_thread = 24;
    p
}

fn run_micro(name: &str, barrier: BarrierKind) -> SimStats {
    let params = micro_params();
    let wl = micro::all(&params)
        .into_iter()
        .find(|w| w.name == name)
        .expect("known workload");
    let mut sys = System::new(micro_cfg(barrier), wl.programs.clone()).expect("valid");
    wl.apply_preloads(&mut sys);
    sys.run()
}

#[test]
fn lbpp_beats_lb_on_conflict_heavy_queue() {
    let lb = run_micro("queue", BarrierKind::Lb);
    let lbpp = run_micro("queue", BarrierKind::LbPp);
    assert!(
        lbpp.cycles < lb.cycles,
        "LB++ ({}) must beat LB ({}) on the queue micro-benchmark",
        lbpp.cycles,
        lb.cycles
    );
    // And it does so by reducing online persists, not by doing less work.
    assert_eq!(lbpp.transactions, lb.transactions);
    assert!(lbpp.online_persist_stall_cycles < lb.online_persist_stall_cycles);
}

#[test]
fn pf_reduces_conflict_flushes() {
    let lb = run_micro("hash", BarrierKind::Lb);
    let pf = run_micro("hash", BarrierKind::LbPf);
    assert!(
        pf.conflicting_epoch_pct() < lb.conflicting_epoch_pct(),
        "PF must reduce the conflicting-epoch share ({} vs {})",
        pf.conflicting_epoch_pct(),
        lb.conflicting_epoch_pct()
    );
    assert!(pf.epochs_proactive_flushed > 0);
    assert_eq!(
        lb.epochs_proactive_flushed, 0,
        "LB never flushes proactively"
    );
}

#[test]
fn ep_is_slower_than_bep() {
    let params = micro_params();
    let wl = micro::queue(&params);
    let mut bep_cfg = micro_cfg(BarrierKind::LbPp);
    bep_cfg.persistency = PersistencyKind::BufferedEpoch;
    let mut ep_cfg = micro_cfg(BarrierKind::LbPp);
    ep_cfg.persistency = PersistencyKind::Epoch;
    let mut bep = System::new(bep_cfg, wl.programs.clone()).expect("valid");
    wl.apply_preloads(&mut bep);
    let mut ep = System::new(ep_cfg, wl.programs.clone()).expect("valid");
    wl.apply_preloads(&mut ep);
    let bep_stats = bep.run();
    let ep_stats = ep.run();
    assert!(
        ep_stats.cycles > bep_stats.cycles,
        "EP barriers stall (rule E2); BEP must be faster ({} vs {})",
        ep_stats.cycles,
        bep_stats.cycles
    );
}

#[test]
fn write_through_is_the_worst_case() {
    use pbm::workloads::apps::{self, AppParams};
    let mut params = AppParams::tiny();
    params.threads = 4;
    params.ops_per_thread = 400;
    let wl = apps::build(apps::profile("ssca2").expect("known"), &params);

    let mut np_cfg = SystemConfig::small_test();
    np_cfg.barrier = BarrierKind::NoPersistency;
    let mut np = System::new(np_cfg, wl.programs.clone()).expect("valid");
    let np_stats = np.run();

    let mut wt_cfg = SystemConfig::small_test();
    wt_cfg.barrier = BarrierKind::WriteThrough;
    wt_cfg.persistency = PersistencyKind::Strict;
    let mut wt = System::new(wt_cfg, wl.programs.clone()).expect("valid");
    let wt_stats = wt.run();

    let slowdown = wt_stats.cycles as f64 / np_stats.cycles as f64;
    assert!(
        slowdown > 3.0,
        "write-through strict persistency should be several times slower, got {slowdown:.2}x"
    );
}

#[test]
fn clwb_beats_clflush() {
    let params = micro_params();
    let wl = micro::hash(&params);
    let run = |mode: FlushMode| {
        let mut cfg = micro_cfg(BarrierKind::LbPp);
        cfg.flush_mode = mode;
        let mut sys = System::new(cfg, wl.programs.clone()).expect("valid");
        wl.apply_preloads(&mut sys);
        sys.run()
    };
    let clwb = run(FlushMode::NonInvalidating);
    let clflush = run(FlushMode::Invalidating);
    assert!(
        clflush.cycles > clwb.cycles,
        "invalidating flushes evict the working set: {} vs {}",
        clflush.cycles,
        clwb.cycles
    );
    assert!(
        clflush.nvram_reads > clwb.nvram_reads,
        "evicted lines must be re-fetched from NVRAM"
    );
}

#[test]
fn bigger_bsp_epochs_coalesce_more() {
    use pbm::workloads::apps::{self, AppParams};
    let mut params = AppParams::tiny();
    params.threads = 4;
    params.ops_per_thread = 3000;
    let wl = apps::build(apps::profile("radix").expect("known"), &params);
    let run = |size: u64| {
        let mut cfg = SystemConfig::small_test();
        cfg.barrier = BarrierKind::Lb;
        cfg.persistency = PersistencyKind::BufferedStrictBulk;
        cfg.bsp_epoch_size = size;
        let mut sys = System::new(cfg, wl.programs.clone()).expect("valid");
        sys.run()
    };
    let small = run(100);
    let big = run(2000);
    assert!(
        big.nvram_writes < small.nvram_writes,
        "larger epochs coalesce repeated stores: {} vs {} line writes",
        big.nvram_writes,
        small.nvram_writes
    );
    assert!(big.barriers < small.barriers);
}
