//! Workload-level integration tests: every micro-benchmark and application
//! proxy runs to completion under every barrier with sane statistics, and
//! the Figure 10 queue-recovery invariant holds end to end.

use pbm::prelude::*;
use pbm::workloads::apps::{self, AppParams};
use pbm::workloads::micro::{self, MicroParams};

fn cfg4(barrier: BarrierKind, persistency: PersistencyKind) -> SystemConfig {
    let mut cfg = SystemConfig::small_test();
    cfg.barrier = barrier;
    cfg.persistency = persistency;
    cfg
}

#[test]
fn every_micro_under_every_barrier() {
    let mut params = MicroParams::tiny();
    params.threads = 4;
    for wl in micro::all(&params) {
        for barrier in BarrierKind::LAZY_VARIANTS {
            let mut sys = System::new(
                cfg4(barrier, PersistencyKind::BufferedEpoch),
                wl.programs.clone(),
            )
            .expect("valid");
            wl.apply_preloads(&mut sys);
            let stats = sys.run();
            assert_eq!(
                stats.transactions,
                (params.threads * params.ops_per_thread) as u64,
                "{} under {barrier}",
                wl.name
            );
            assert_eq!(
                stats.epochs_created, stats.epochs_persisted,
                "{} under {barrier}: every closed epoch must persist",
                wl.name
            );
        }
    }
}

#[test]
fn every_app_proxy_under_bsp() {
    let mut params = AppParams::tiny();
    params.threads = 4;
    params.ops_per_thread = 200;
    for wl in apps::all(&params) {
        let mut cfg = cfg4(BarrierKind::LbPp, PersistencyKind::BufferedStrictBulk);
        cfg.bsp_epoch_size = 50;
        let mut sys = System::new(cfg, wl.programs.clone()).expect("valid");
        let stats = sys.run();
        assert!(stats.stores > 0, "{}", wl.name);
        assert!(stats.barriers > 0, "{}: hardware must cut epochs", wl.name);
        assert!(stats.log_writes > 0, "{}: undo logging active", wl.name);
        assert!(
            stats.checkpoint_writes >= stats.barriers * 8,
            "{}: 512 B checkpoint = 8 lines per epoch",
            wl.name
        );
    }
}

/// The Figure 10 recovery property, end to end: at any crash point, every
/// queue entry below the durable head pointer is fully durable.
#[test]
fn queue_insert_recovery_invariant() {
    const ENTRY: u64 = 512;
    let slots = 16u64;
    let head_ptr = Addr::new(slots * ENTRY);
    let slot = |i: u64| Addr::new((i % slots) * ENTRY);

    let mut b = ProgramBuilder::new();
    for i in 0..6u64 {
        b.store_span(slot(i), ENTRY, (100 + i) as u32);
        b.barrier();
        b.store(head_ptr, (i + 1) as u32);
        b.barrier();
    }
    let mut cfg = cfg4(BarrierKind::LbPp, PersistencyKind::BufferedEpoch);
    cfg.cores = 1;
    cfg.llc_banks = 4;
    cfg.mcs = 2;
    let mut sys = System::new(cfg, vec![b.build()]).expect("valid");
    sys.enable_checking();
    sys.preload(head_ptr, 0);
    let stats = sys.run();

    for at in (0..stats.cycles + 30_000).step_by(333) {
        let snap = sys.persistent_snapshot_at(Cycle::new(at));
        let head = snap
            .line(head_ptr.line())
            .map(|tok| u64::from(System::token_value(tok)))
            .unwrap_or(0);
        for i in 0..head {
            for l in 0..(ENTRY / 64) {
                let line = slot(i).offset(l * 64).line();
                let tok = snap.line(line).unwrap_or_else(|| {
                    panic!("crash@{at}: head={head} but entry {i} line {l} missing")
                });
                assert_eq!(u64::from(System::token_value(tok)), 100 + i);
            }
        }
    }
}

/// Micro-benchmark runs stay BEP-consistent under the *unoptimized* barrier
/// too — correctness is barrier-independent; only performance differs.
#[test]
fn lb_is_correct_just_slower() {
    let params = MicroParams::tiny();
    let wl = micro::sps(&params);
    let mut sys = System::new(
        cfg4(BarrierKind::Lb, PersistencyKind::BufferedEpoch),
        wl.programs.clone(),
    )
    .expect("valid");
    sys.enable_checking();
    wl.apply_preloads(&mut sys);
    let stats = sys.run();
    let ck = sys.checker().expect("checking");
    for k in 0..25 {
        let at = Cycle::new((stats.cycles + 20_000) * k / 24);
        ck.check_bep(&sys.persistent_snapshot_at(at))
            .unwrap_or_else(|v| panic!("violation at {at}: {v}"));
    }
}

#[test]
fn app_profiles_differ_in_traffic() {
    let mut params = AppParams::tiny();
    params.threads = 2;
    params.ops_per_thread = 2000;
    let run = |name: &str| {
        let wl = apps::build(apps::profile(name).expect("known"), &params);
        let mut sys = System::new(
            cfg4(BarrierKind::NoPersistency, PersistencyKind::BufferedEpoch),
            wl.programs.clone(),
        )
        .expect("valid");
        sys.run()
    };
    let ssca2 = run("ssca2");
    let freqmine = run("freqmine");
    assert!(
        ssca2.stores > 2 * freqmine.stores,
        "ssca2 must be far more write-intensive ({} vs {})",
        ssca2.stores,
        freqmine.stores
    );
}
