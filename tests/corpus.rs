//! Replays every corpus artifact in `tests/corpus/` against the real
//! design.
//!
//! Each artifact is a shrunk case that once reproduced an (injected or
//! real) bug — see `pbm_check::artifact` for the format and `check
//! --bugs=all` for how they are minted. Replaying them here keeps the
//! corpus a permanent regression fence: the real design must stay
//! consistent on every program shape that has ever found a bug.

use pbm_check::{decode_case, run_case};
use std::fs;
use std::path::PathBuf;

#[test]
fn corpus_replays_clean_on_the_real_design() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus");
    let mut artifacts: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("tests/corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    artifacts.sort();
    assert!(!artifacts.is_empty(), "the corpus is never empty");
    for path in artifacts {
        let text = fs::read_to_string(&path).expect("readable artifact");
        let artifact = decode_case(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(
            artifact.spec.total_ops() <= 20,
            "{}: corpus cases are shrunk to <= 20 ops, found {}",
            path.display(),
            artifact.spec.total_ops()
        );
        if let Err(failure) = run_case(&artifact.spec) {
            panic!(
                "{}: replays dirty on the real design: {failure}",
                path.display()
            );
        }
    }
}
