//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal substitute. The derives expand to nothing: the
//! `Serialize`/`Deserialize` markers on types document serializability and
//! keep the real-serde migration path open, but nothing in this workspace
//! performs serde-based serialization (the observability layer emits its
//! JSON and CSV by hand for byte-deterministic output).

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
