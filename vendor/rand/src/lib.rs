//! Offline stand-in for the `rand` crate (0.8-compatible API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this substitute. It covers exactly the surface the workloads
//! use — `StdRng::seed_from_u64`, `gen_range` over integer ranges,
//! `gen_bool`, `gen` — with a SplitMix64 generator: statistically strong
//! enough for workload shaping, fully deterministic for a given seed, and
//! identical on every platform. The bit streams differ from upstream
//! rand's ChaCha12-based `StdRng`, so seed-sensitive calibrations were
//! re-baselined when this stand-in was introduced.

use std::ops::{Range, RangeInclusive};

/// A random number generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Integer types uniformly samplable over a range.
///
/// The blanket `SampleRange` impls below tie the output type to the range's
/// element type, so untyped literals (`gen_range(0..32)`) unify with the
/// surrounding expression the way upstream rand's blanket impl does.
pub trait SampleUniform: Copy + PartialOrd {
    /// `hi - lo` widened to `u64`.
    fn span_from(lo: Self, hi: Self) -> u64;
    /// `lo + off`, where `off` is within the sampled span.
    fn add_offset(lo: Self, off: u64) -> Self;
}

macro_rules! impl_int_sampling {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $t
            }
        }

        impl SampleUniform for $t {
            fn span_from(lo: $t, hi: $t) -> u64 {
                hi.wrapping_sub(lo) as u64
            }

            fn add_offset(lo: $t, off: u64) -> $t {
                lo.wrapping_add(off as $t)
            }
        }
    )*};
}

impl_int_sampling!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        let span = T::span_from(self.start, self.end);
        T::add_offset(self.start, rng.next_u64() % span)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range in gen_range");
        let span = T::span_from(lo, hi);
        if span == u64::MAX {
            return T::add_offset(lo, rng.next_u64());
        }
        T::add_offset(lo, rng.next_u64() % (span + 1))
    }
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The user-facing generator interface (subset of rand 0.8's `Rng`).
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        // Compare 53 uniform mantissa bits against p.
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }

    /// Draws a value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood): passes BigCrush, one u64 of
            // state, and trivially reproducible across platforms.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..=5);
            assert!(w <= 5);
            let x = rng.gen_range(-3i64..3);
            assert!((-3..3).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let trues = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_000..4_000).contains(&trues), "got {trues}");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }
}
