//! Offline stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this substitute covering the API surface its property tests
//! use: the `proptest!` macro, `Strategy` with `prop_map`, ranges, tuples,
//! `Just`, weighted `prop_oneof!`, `collection::vec`, `option::of`,
//! `any::<T>()`, and `ProptestConfig::with_cases`.
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! generated inputs in scope, so rely on the assertion message), and case
//! generation is seeded from the test's module path + name, making every
//! run of a given test binary deterministic.

pub mod strategy;
pub mod test_runner;

pub use strategy::{Just, Strategy};

/// Strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length is uniform in `size` and whose
    /// elements come from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Strategies over `Option`.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Option`s of an inner strategy's values.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `None` half the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<A>(PhantomData<A>);

    /// Full-range strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }
}

/// The glob-import surface test modules use.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Chooses among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::box_strategy($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::box_strategy($strat))),+
        ])
    };
}

/// Declares property tests: each `fn name(x in strategy, ...) { body }`
/// becomes a `#[test]` running `body` for `ProptestConfig::cases`
/// deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(a in 0u32..10, pair in (5u64..6, 0usize..3)) {
            prop_assert!(a < 10);
            prop_assert_eq!(pair.0, 5);
            prop_assert!(pair.1 < 3);
        }

        #[test]
        fn oneof_vec_option(
            v in crate::collection::vec(
                prop_oneof![2 => Just(1u8), 1 => (10u8..20).prop_map(|x| x)],
                1..10,
            ),
            o in crate::option::of(Just(7i32)),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|&x| x == 1 || (10..20).contains(&x)));
            prop_assert!(o.is_none() || o == Some(7));
        }

        #[test]
        fn any_is_full_range(x in any::<u32>()) {
            let _ = x;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
