//! The `Strategy` trait and combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: `generate`
/// draws one sample directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Boxes a strategy (helper for [`prop_oneof!`](crate::prop_oneof)).
pub fn box_strategy<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Strategy yielding one fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice among boxed strategies (built by
/// [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<V> {
    arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
    total: u64,
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union")
            .field("arms", &self.arms.len())
            .finish()
    }
}

impl<V> Union<V> {
    /// Creates a weighted union.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.next_u64() % self.total;
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights covered")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
