//! Test configuration and the deterministic case RNG.

/// Per-test configuration (subset of upstream's `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// SplitMix64 generator seeded from the test's fully-qualified name, so a
/// given test binary explores the same cases on every run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the RNG for the named test.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name gives a stable, well-mixed seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}
