//! Offline stand-in for `criterion`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this substitute covering the group-based benchmarking API the
//! `figures` bench uses. Each benchmark is warmed up, then timed for the
//! configured measurement window; the mean wall-clock time per iteration
//! is printed as `name ... <mean> ns/iter (<iters> iters)`. There is no
//! outlier analysis, HTML report, or baseline comparison.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter display value.
    pub fn new<F: Display, P: Display>(function_id: F, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Measures one closure's mean wall-clock time per call.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine` repeatedly and records the mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
        }

        let mut iters = 0u64;
        let start = Instant::now();
        let mut elapsed = Duration::ZERO;
        while elapsed < self.measurement {
            black_box(routine());
            iters += 1;
            elapsed = start.elapsed();
        }
        self.iters = iters;
        self.mean_ns = elapsed.as_nanos() as f64 / iters as f64;
    }
}

/// A named collection of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness sizes by wall-clock
    /// window rather than sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the timed measurement window per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Sets the untimed warm-up window per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Runs one benchmark with an input value passed to the closure.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b, input);
        self.report(&id.id, &b);
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        self.report(&id.id, &b);
        self
    }

    fn report(&mut self, id: &str, b: &Bencher) {
        println!(
            "{}/{:<40} {:>14.0} ns/iter ({} iters)",
            self.name, id, b.mean_ns, b.iters
        );
        self.criterion
            .results
            .push((format!("{}/{}", self.name, id), b.mean_ns));
    }

    /// Ends the group (upstream finalizes reports here; no-op).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark harness state.
#[derive(Debug)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    /// `(full benchmark id, mean ns/iter)` for every completed benchmark.
    pub results: Vec<(String, f64)>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_secs(1),
            measurement: Duration::from_secs(3),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (warm_up, measurement) = (self.warm_up, self.measurement);
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            warm_up,
            measurement,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
        g.finish();
        self
    }
}

/// Declares a benchmark group function calling each target with a
/// shared `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(10);
        g.bench_with_input(BenchmarkId::new("f", 3), &3u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
        assert_eq!(c.results.len(), 2);
        assert_eq!(c.results[0].0, "g/f/3");
        assert!(c.results.iter().all(|(_, ns)| *ns > 0.0));
    }
}
