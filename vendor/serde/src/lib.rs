//! Offline stand-in for `serde`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this minimal substitute: `Serialize` and `Deserialize`
//! are empty marker traits and the derives (re-exported from the local
//! `serde_derive`) expand to nothing. Nothing in the workspace serializes
//! through serde — the observability layer hand-writes its JSON/CSV so the
//! bytes are deterministic — but keeping the trait names and derive
//! positions intact means swapping the real serde back in is a one-line
//! manifest change.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};

/// Stand-in for `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}

/// Stand-in for `serde::de`.
pub mod de {
    pub use crate::Deserialize;
}
