//! Non-volatile memory substrate for the `pbm` simulator.
//!
//! Models the NVRAM DIMMs and memory controllers of Figure 2: asymmetric
//! read/write latency (Table 1: 240/360 cycles), per-controller banking
//! parallelism, a write-ahead undo-log region (for BSP bulk mode, §5.2.1),
//! and — crucially for a *checkable* reproduction — an optional write
//! history from which the durable state at any past cycle can be
//! reconstructed, so crash consistency can be verified offline.
//!
//! Line contents are modelled as a single [`LineValue`] token per 64-byte
//! line. Ordering and atomicity — the properties persist barriers exist to
//! enforce — are line-granularity in hardware too, so tokens lose no
//! generality; workloads store meaningful tokens where recovery checks need
//! them.
//!
//! # Example
//!
//! ```
//! use pbm_nvram::NvramDevice;
//! use pbm_types::{Cycle, LineAddr};
//!
//! let mut nv = NvramDevice::with_history();
//! nv.persist(LineAddr::new(1), 0xAA, Cycle::new(100));
//! nv.persist(LineAddr::new(1), 0xBB, Cycle::new(200));
//! assert_eq!(nv.read(LineAddr::new(1)), Some(0xBB));
//! let old = nv.snapshot_at(Cycle::new(150));
//! assert_eq!(old.line(pbm_types::LineAddr::new(1)), Some(0xAA));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod controller;
mod crash;
mod device;
mod log;

pub use controller::{mc_for_line, McTiming};
pub use crash::DurableSnapshot;
pub use device::{LineValue, NvramDevice};
pub use log::{LogRecord, UndoLog};
