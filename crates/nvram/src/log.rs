//! Hardware undo log for BSP bulk mode (§5.2.1).
//!
//! Before a cache line is modified for the first time in an epoch, its old
//! value is written to the log region in NVRAM (write-ahead). When an epoch
//! fully persists (`PersistCMP`), a commit marker for it becomes durable and
//! its records are dead. On a crash, every *durable but uncommitted* record
//! is applied in reverse to undo partially-persisted epochs.

use crate::device::LineValue;
use pbm_types::{Cycle, EpochTag, LineAddr};

/// One undo-log entry: the pre-image of a line modified by an epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogRecord {
    /// Epoch that modified the line.
    pub tag: EpochTag,
    /// The line modified.
    pub line: LineAddr,
    /// Durable value before the modification (`None` = line had never
    /// been persisted).
    pub old: Option<LineValue>,
    /// Cycle at which this record itself became durable in the log region.
    pub durable_at: Cycle,
    /// Cycle at which the epoch's commit marker became durable, if it did.
    pub committed_at: Option<Cycle>,
}

/// The undo-log region: an append-only journal of pre-images plus commit
/// markers.
///
/// The log is *modelled* logically here; the NVRAM write traffic it causes
/// is accounted by the simulator (each append and each commit marker is a
/// line write through a memory controller).
#[derive(Debug, Clone, Default)]
pub struct UndoLog {
    records: Vec<LogRecord>,
    appended: u64,
    committed_epochs: u64,
}

impl UndoLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a pre-image record that becomes durable at `durable_at`,
    /// returning the cycle at which it *actually* becomes durable.
    ///
    /// The log region is a sequential buffer: a record appended later can
    /// never become durable before an earlier one, even when the two lands
    /// on differently-loaded memory controllers. `append` therefore clamps
    /// `durable_at` to be monotone in append order. Without this, undo
    /// recovery is unsound: a record whose pre-image is another epoch's
    /// not-yet-durable value could become durable first, and rolling it
    /// back at a crash in that window would resurrect a value that was
    /// never in NVRAM.
    pub fn append(
        &mut self,
        tag: EpochTag,
        line: LineAddr,
        old: Option<LineValue>,
        durable_at: Cycle,
    ) -> Cycle {
        let durable_at = self
            .records
            .last()
            .map_or(durable_at, |r| durable_at.max(r.durable_at));
        self.appended += 1;
        self.records.push(LogRecord {
            tag,
            line,
            old,
            durable_at,
            committed_at: None,
        });
        durable_at
    }

    /// Marks every record of `tag` committed, with the commit marker
    /// durable at `at`. Idempotent per epoch.
    pub fn commit_epoch(&mut self, tag: EpochTag, at: Cycle) {
        let mut any = false;
        for r in self.records.iter_mut().filter(|r| r.tag == tag) {
            if r.committed_at.is_none() {
                r.committed_at = Some(at);
                any = true;
            }
        }
        if any {
            self.committed_epochs += 1;
        }
    }

    /// All records, in append order.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Total records ever appended.
    pub fn append_count(&self) -> u64 {
        self.appended
    }

    /// Epochs for which a commit marker was written.
    pub fn committed_epoch_count(&self) -> u64 {
        self.committed_epochs
    }

    /// Records that, at a crash at cycle `at`, are durable but whose epoch
    /// commit marker is not — i.e. the records recovery must undo, in
    /// *reverse* append order.
    pub fn pending_at(&self, at: Cycle) -> impl Iterator<Item = &LogRecord> {
        self.records
            .iter()
            .rev()
            .filter(move |r| r.durable_at <= at && !matches!(r.committed_at, Some(c) if c <= at))
    }

    /// Drops committed records older than `at` (log truncation / space
    /// reclamation). Returns how many records were reclaimed.
    pub fn truncate_committed(&mut self, at: Cycle) -> usize {
        let before = self.records.len();
        self.records
            .retain(|r| !matches!(r.committed_at, Some(c) if c <= at));
        before - self.records.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbm_types::{CoreId, EpochId};

    fn tag(core: u32, epoch: u64) -> EpochTag {
        EpochTag::new(CoreId::new(core), EpochId::new(epoch))
    }

    #[test]
    fn append_and_commit() {
        let mut log = UndoLog::new();
        log.append(tag(0, 0), LineAddr::new(1), Some(10), Cycle::new(5));
        log.append(tag(0, 0), LineAddr::new(2), None, Cycle::new(6));
        assert_eq!(log.append_count(), 2);
        assert_eq!(log.pending_at(Cycle::new(10)).count(), 2);
        log.commit_epoch(tag(0, 0), Cycle::new(20));
        assert_eq!(log.committed_epoch_count(), 1);
        assert_eq!(log.pending_at(Cycle::new(25)).count(), 0);
        // Before the commit marker was durable, records are still pending.
        assert_eq!(log.pending_at(Cycle::new(15)).count(), 2);
    }

    #[test]
    fn records_not_yet_durable_are_invisible() {
        let mut log = UndoLog::new();
        log.append(tag(1, 3), LineAddr::new(7), Some(1), Cycle::new(100));
        assert_eq!(log.pending_at(Cycle::new(99)).count(), 0);
        assert_eq!(log.pending_at(Cycle::new(100)).count(), 1);
    }

    #[test]
    fn pending_is_reverse_order() {
        let mut log = UndoLog::new();
        log.append(tag(0, 0), LineAddr::new(1), Some(1), Cycle::new(1));
        log.append(tag(0, 0), LineAddr::new(1), Some(2), Cycle::new(2));
        let pending: Vec<_> = log.pending_at(Cycle::new(5)).collect();
        assert_eq!(pending[0].old, Some(2));
        assert_eq!(pending[1].old, Some(1));
    }

    #[test]
    fn commit_is_idempotent() {
        let mut log = UndoLog::new();
        log.append(tag(0, 1), LineAddr::new(1), Some(1), Cycle::new(1));
        log.commit_epoch(tag(0, 1), Cycle::new(2));
        log.commit_epoch(tag(0, 1), Cycle::new(3));
        assert_eq!(log.committed_epoch_count(), 1);
        let r = log.records()[0];
        assert_eq!(r.committed_at, Some(Cycle::new(2)), "first commit wins");
    }

    #[test]
    fn truncation_reclaims_committed_only() {
        let mut log = UndoLog::new();
        log.append(tag(0, 0), LineAddr::new(1), Some(1), Cycle::new(1));
        log.append(tag(0, 1), LineAddr::new(2), Some(2), Cycle::new(2));
        log.commit_epoch(tag(0, 0), Cycle::new(10));
        assert_eq!(log.truncate_committed(Cycle::new(20)), 1);
        assert_eq!(log.records().len(), 1);
        assert_eq!(log.records()[0].tag, tag(0, 1));
    }
}
