//! The NVRAM device: durable line store with optional write history.

use crate::crash::DurableSnapshot;
use pbm_types::{Cycle, LineAddr};
use std::collections::HashMap;

/// The modelled contents of one 64-byte line: an opaque token.
///
/// Workloads store meaningful tokens (sequence numbers, pointers) so that
/// recovery checks can reason about application state; the memory system
/// treats tokens as opaque.
pub type LineValue = u64;

/// Byte-addressable non-volatile memory at line granularity.
///
/// `persist` applies a durable write at a given cycle; `read` returns the
/// current durable value. When constructed [`NvramDevice::with_history`],
/// every write is also journalled so [`NvramDevice::snapshot_at`] can
/// reconstruct the durable state at any past cycle — the primitive on which
/// all crash-consistency checking in this repository is built.
#[derive(Debug, Clone, Default)]
pub struct NvramDevice {
    lines: HashMap<LineAddr, LineValue>,
    history: Option<Vec<(Cycle, LineAddr, LineValue)>>,
    writes: u64,
    reads: u64,
}

impl NvramDevice {
    /// Creates a device that keeps no write history (fast; for benches).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a device that journals every write so durable state at any
    /// cycle can be reconstructed (for crash-consistency tests).
    pub fn with_history() -> Self {
        NvramDevice {
            history: Some(Vec::new()),
            ..Self::default()
        }
    }

    /// Durably writes `value` to `line`, effective at cycle `at`.
    ///
    /// The caller (memory-controller timing model) is responsible for `at`
    /// being the *completion* time of the NVRAM write; the device itself is
    /// timing-free.
    pub fn persist(&mut self, line: LineAddr, value: LineValue, at: Cycle) {
        self.lines.insert(line, value);
        self.writes += 1;
        if let Some(h) = &mut self.history {
            h.push((at, line, value));
        }
    }

    /// Reads the durable value of `line`, or `None` if never persisted.
    pub fn read(&mut self, line: LineAddr) -> Option<LineValue> {
        self.reads += 1;
        self.lines.get(&line).copied()
    }

    /// Reads without bumping the access counter (for checkers/tests).
    pub fn peek(&self, line: LineAddr) -> Option<LineValue> {
        self.lines.get(&line).copied()
    }

    /// Total durable line writes performed.
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Total line reads served.
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Number of distinct lines currently holding durable data.
    pub fn resident_lines(&self) -> usize {
        self.lines.len()
    }

    /// Reconstructs the durable state as of cycle `at` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the device was not created [`Self::with_history`] — asking
    /// for a historical snapshot without a journal is a test-harness bug.
    pub fn snapshot_at(&self, at: Cycle) -> DurableSnapshot {
        let history = self
            .history
            .as_ref()
            .expect("snapshot_at requires NvramDevice::with_history");
        let mut lines = HashMap::new();
        for &(t, line, value) in history.iter().filter(|(t, _, _)| *t <= at) {
            let _ = t;
            lines.insert(line, value);
        }
        DurableSnapshot::new(lines, at)
    }

    /// The current durable state as a snapshot (works without history).
    pub fn snapshot_now(&self, at: Cycle) -> DurableSnapshot {
        DurableSnapshot::new(self.lines.clone(), at)
    }

    /// The distinct cycles at which at least one durable write completed,
    /// sorted ascending.
    ///
    /// Durable state only changes at these instants, so a crash sweep over
    /// `{0} ∪ persist_times()` is *exhaustive*: it observes every durable
    /// state the run ever exposed (the `pbm-check` harness relies on this).
    ///
    /// # Panics
    ///
    /// Panics if the device was not created [`Self::with_history`].
    pub fn persist_times(&self) -> Vec<Cycle> {
        let history = self
            .history
            .as_ref()
            .expect("persist_times requires NvramDevice::with_history");
        let mut times: Vec<Cycle> = history.iter().map(|&(t, _, _)| t).collect();
        times.sort_unstable();
        times.dedup();
        times
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_after_persist() {
        let mut nv = NvramDevice::new();
        assert_eq!(nv.read(LineAddr::new(5)), None);
        nv.persist(LineAddr::new(5), 42, Cycle::new(10));
        assert_eq!(nv.read(LineAddr::new(5)), Some(42));
        assert_eq!(nv.peek(LineAddr::new(5)), Some(42));
        assert_eq!(nv.write_count(), 1);
        assert_eq!(nv.read_count(), 2);
        assert_eq!(nv.resident_lines(), 1);
    }

    #[test]
    fn overwrite_keeps_latest() {
        let mut nv = NvramDevice::new();
        nv.persist(LineAddr::new(1), 1, Cycle::new(1));
        nv.persist(LineAddr::new(1), 2, Cycle::new(2));
        assert_eq!(nv.peek(LineAddr::new(1)), Some(2));
        assert_eq!(nv.resident_lines(), 1);
        assert_eq!(nv.write_count(), 2);
    }

    #[test]
    fn snapshot_reconstructs_past() {
        let mut nv = NvramDevice::with_history();
        nv.persist(LineAddr::new(1), 10, Cycle::new(100));
        nv.persist(LineAddr::new(2), 20, Cycle::new(200));
        nv.persist(LineAddr::new(1), 11, Cycle::new(300));
        let s = nv.snapshot_at(Cycle::new(250));
        assert_eq!(s.line(LineAddr::new(1)), Some(10));
        assert_eq!(s.line(LineAddr::new(2)), Some(20));
        let s0 = nv.snapshot_at(Cycle::new(50));
        assert_eq!(s0.line(LineAddr::new(1)), None);
        let s_end = nv.snapshot_at(Cycle::new(300));
        assert_eq!(s_end.line(LineAddr::new(1)), Some(11));
    }

    #[test]
    fn persist_times_are_sorted_and_deduped() {
        let mut nv = NvramDevice::with_history();
        nv.persist(LineAddr::new(1), 10, Cycle::new(300));
        nv.persist(LineAddr::new(2), 20, Cycle::new(100));
        nv.persist(LineAddr::new(3), 30, Cycle::new(300));
        assert_eq!(nv.persist_times(), vec![Cycle::new(100), Cycle::new(300)]);
    }

    #[test]
    #[should_panic(expected = "with_history")]
    fn snapshot_without_history_panics() {
        let nv = NvramDevice::new();
        let _ = nv.snapshot_at(Cycle::new(1));
    }

    #[test]
    fn snapshot_now_works_without_history() {
        let mut nv = NvramDevice::new();
        nv.persist(LineAddr::new(9), 9, Cycle::new(9));
        let s = nv.snapshot_now(Cycle::new(9));
        assert_eq!(s.line(LineAddr::new(9)), Some(9));
    }
}
