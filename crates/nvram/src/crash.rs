//! Durable-state snapshots and crash recovery.

use crate::device::LineValue;
use crate::log::UndoLog;
use pbm_types::{Cycle, LineAddr};
use std::collections::HashMap;

/// The durable contents of NVRAM at a crash point.
///
/// Produced by [`NvramDevice::snapshot_at`](crate::NvramDevice::snapshot_at)
/// (reconstruction from the write journal) or
/// [`NvramDevice::snapshot_now`](crate::NvramDevice::snapshot_now).
/// [`DurableSnapshot::recover_with`] applies the BSP undo log, yielding the
/// state a real recovery procedure would observe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurableSnapshot {
    lines: HashMap<LineAddr, LineValue>,
    at: Cycle,
}

impl DurableSnapshot {
    /// Wraps a durable line map taken at cycle `at`.
    pub fn new(lines: HashMap<LineAddr, LineValue>, at: Cycle) -> Self {
        DurableSnapshot { lines, at }
    }

    /// The crash cycle this snapshot represents.
    pub fn at(&self) -> Cycle {
        self.at
    }

    /// Durable value of `line`, or `None` if never persisted by the crash.
    pub fn line(&self, line: LineAddr) -> Option<LineValue> {
        self.lines.get(&line).copied()
    }

    /// Number of durable lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True if nothing was durable.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Iterates over `(line, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, LineValue)> + '_ {
        self.lines.iter().map(|(l, v)| (*l, *v))
    }

    /// Applies crash recovery with the undo log: every durable-but-
    /// uncommitted record is undone in reverse append order, restoring each
    /// partially-persisted epoch's pre-image (§5.2.1).
    ///
    /// Returns the recovered state and the number of records undone.
    pub fn recover_with(mut self, log: &UndoLog) -> (DurableSnapshot, usize) {
        let mut undone = 0;
        // `pending_at` yields reverse append order, which is exactly undo
        // order: the oldest pre-image of a line is applied last.
        let pending: Vec<_> = log.pending_at(self.at).collect();
        for rec in pending {
            match rec.old {
                Some(v) => {
                    self.lines.insert(rec.line, v);
                }
                None => {
                    self.lines.remove(&rec.line);
                }
            }
            undone += 1;
        }
        (self, undone)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbm_types::{CoreId, EpochId, EpochTag};

    fn tag(core: u32, epoch: u64) -> EpochTag {
        EpochTag::new(CoreId::new(core), EpochId::new(epoch))
    }

    fn snap(pairs: &[(u64, u64)], at: u64) -> DurableSnapshot {
        DurableSnapshot::new(
            pairs
                .iter()
                .map(|&(l, v)| (LineAddr::new(l), v))
                .collect::<HashMap<_, _>>(),
            Cycle::new(at),
        )
    }

    #[test]
    fn accessors() {
        let s = snap(&[(1, 10), (2, 20)], 100);
        assert_eq!(s.at(), Cycle::new(100));
        assert_eq!(s.line(LineAddr::new(1)), Some(10));
        assert_eq!(s.line(LineAddr::new(3)), None);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.iter().count(), 2);
    }

    #[test]
    fn recovery_restores_preimage_of_uncommitted_epoch() {
        // Epoch wrote line 1: 10 -> 11, and the new value leaked to NVRAM,
        // but the epoch never committed.
        let mut log = UndoLog::new();
        log.append(tag(0, 0), LineAddr::new(1), Some(10), Cycle::new(50));
        let s = snap(&[(1, 11)], 100);
        let (r, undone) = s.recover_with(&log);
        assert_eq!(undone, 1);
        assert_eq!(r.line(LineAddr::new(1)), Some(10));
    }

    #[test]
    fn recovery_removes_lines_that_never_existed() {
        let mut log = UndoLog::new();
        log.append(tag(0, 0), LineAddr::new(2), None, Cycle::new(10));
        let s = snap(&[(2, 99)], 100);
        let (r, _) = s.recover_with(&log);
        assert_eq!(r.line(LineAddr::new(2)), None);
    }

    #[test]
    fn committed_epochs_are_not_undone() {
        let mut log = UndoLog::new();
        log.append(tag(0, 0), LineAddr::new(1), Some(10), Cycle::new(50));
        log.commit_epoch(tag(0, 0), Cycle::new(80));
        let s = snap(&[(1, 11)], 100);
        let (r, undone) = s.recover_with(&log);
        assert_eq!(undone, 0);
        assert_eq!(r.line(LineAddr::new(1)), Some(11));
    }

    #[test]
    fn multiple_epochs_undo_in_reverse() {
        // Epoch 0 (committed): 1 -> A(=1). Epoch 1 (uncommitted): A -> B(=2).
        // Epoch 2 (uncommitted): B -> C(=3). Crash sees C; recovery must
        // land on A, not B.
        let mut log = UndoLog::new();
        log.append(tag(0, 0), LineAddr::new(1), None, Cycle::new(1));
        log.commit_epoch(tag(0, 0), Cycle::new(5));
        log.append(tag(0, 1), LineAddr::new(1), Some(1), Cycle::new(10));
        log.append(tag(0, 2), LineAddr::new(1), Some(2), Cycle::new(20));
        let s = snap(&[(1, 3)], 100);
        let (r, undone) = s.recover_with(&log);
        assert_eq!(undone, 2);
        assert_eq!(r.line(LineAddr::new(1)), Some(1));
    }

    #[test]
    fn records_durable_after_crash_are_ignored() {
        let mut log = UndoLog::new();
        log.append(tag(0, 1), LineAddr::new(1), Some(7), Cycle::new(500));
        let s = snap(&[(1, 8)], 100); // crash before the record was durable
        let (r, undone) = s.recover_with(&log);
        assert_eq!(undone, 0);
        assert_eq!(r.line(LineAddr::new(1)), Some(8));
    }
}
