//! Memory-controller timing and address interleaving.

use pbm_types::{Cycle, LineAddr, McId};

/// Maps a line to the memory controller that owns it.
///
/// Lines are interleaved across controllers at line granularity, the usual
/// choice for bandwidth balance with multiple on-chip controllers.
///
/// # Panics
///
/// Panics if `mcs` is zero.
pub fn mc_for_line(line: LineAddr, mcs: usize) -> McId {
    assert!(mcs > 0, "mcs must be nonzero");
    McId::new((line.as_u64() % mcs as u64) as u32)
}

/// Timing model of one memory controller: `parallelism` independent device
/// banks, each serving one access at a time, with **read priority**.
///
/// An access issued at `now` starts on the earliest-free bank (but not
/// before `now`) and completes after the device latency. Reads and writes
/// are scheduled on separate lanes: demand reads never queue behind
/// buffered persist writes. This models the read-priority / write-buffering
/// scheduling that persistent-memory controllers use (cf. FIRM, NVM-Duet —
/// both cited by the paper as complementary), without which offline epoch
/// flushes would put their full write latency back onto the demand path.
///
/// The write lane still serializes once saturated — a burst of epoch
/// flush-line writes backs up exactly as the paper's conflict analysis
/// expects.
#[derive(Debug, Clone)]
pub struct McTiming {
    banks: Vec<Cycle>,
    read_banks: Vec<Cycle>,
    read_latency: u64,
    write_latency: u64,
    reads: u64,
    writes: u64,
    /// Maximum extra per-access service delay (0 = exact model).
    jitter_max: u64,
    /// SplitMix64 state for the jitter stream.
    jitter_state: u64,
}

impl McTiming {
    /// Creates a controller with `parallelism` banks and the given
    /// device latencies in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `parallelism` is zero.
    pub fn new(parallelism: usize, read_latency: u64, write_latency: u64) -> Self {
        assert!(parallelism > 0, "parallelism must be nonzero");
        McTiming {
            banks: vec![Cycle::ZERO; parallelism],
            read_banks: vec![Cycle::ZERO; parallelism],
            read_latency,
            write_latency,
            reads: 0,
            writes: 0,
            jitter_max: 0,
            jitter_state: 0,
        }
    }

    /// Enables seeded service-time jitter: every access takes up to `max`
    /// extra cycles, drawn from a deterministic SplitMix64 stream.
    ///
    /// Variable device service time is protocol-legal (real PCM/ReRAM
    /// latencies vary per access); the schedule perturbator in `pbm-check`
    /// uses this to reorder persist completions. With `max == 0` (the
    /// default) the controller is cycle-exact.
    pub fn set_jitter(&mut self, max: u64, seed: u64) {
        self.jitter_max = max;
        self.jitter_state = seed;
    }

    fn jitter(&mut self) -> u64 {
        if self.jitter_max == 0 {
            return 0;
        }
        // SplitMix64 (Steele et al.): full-period, two multiplies.
        self.jitter_state = self.jitter_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.jitter_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) % (self.jitter_max + 1)
    }

    /// Schedules a line read issued at `now`; returns its completion time.
    /// Reads have priority: they never wait behind buffered writes.
    pub fn schedule_read(&mut self, now: Cycle) -> Cycle {
        self.reads += 1;
        let latency = self.read_latency + self.jitter();
        Self::schedule_on(&mut self.read_banks, now, latency)
    }

    /// Schedules a line write (persist) issued at `now`; returns the time
    /// at which the write is durable (when the PersistAck is generated).
    pub fn schedule_write(&mut self, now: Cycle) -> Cycle {
        self.schedule_write_timed(now).1
    }

    /// Like [`McTiming::schedule_write`], but also returns the cycle at
    /// which the device write *started* (when the access left the
    /// controller's write queue): `(start, durable)`. The difference
    /// `start - now` is queueing delay behind buffered persists;
    /// `durable - start` is device service time. Profilers use the split
    /// to attribute persist latency to MC contention vs NVRAM write cost.
    pub fn schedule_write_timed(&mut self, now: Cycle) -> (Cycle, Cycle) {
        self.writes += 1;
        let latency = self.write_latency + self.jitter();
        Self::schedule_on_timed(&mut self.banks, now, latency)
    }

    /// Write lanes still busy at `now` — the instantaneous depth of the
    /// buffered-persist queue (each busy lane holds exactly one in-flight
    /// write; queued writes behind it have not been scheduled yet, so this
    /// is a lower bound that tracks saturation faithfully).
    pub fn pending_writes(&self, now: Cycle) -> u64 {
        self.banks.iter().filter(|t| **t > now).count() as u64
    }

    /// Reads scheduled so far.
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Writes scheduled so far.
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    fn schedule_on(lanes: &mut [Cycle], now: Cycle, latency: u64) -> Cycle {
        Self::schedule_on_timed(lanes, now, latency).1
    }

    fn schedule_on_timed(lanes: &mut [Cycle], now: Cycle, latency: u64) -> (Cycle, Cycle) {
        // Earliest-free bank; ties broken by index for determinism.
        let bank = lanes
            .iter()
            .enumerate()
            .min_by_key(|(i, t)| (**t, *i))
            .map(|(i, _)| i)
            .expect("at least one bank");
        let start = lanes[bank].max(now);
        let done = start + Cycle::new(latency);
        lanes[bank] = done;
        (start, done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleave_covers_all_mcs() {
        let mut seen = [false; 4];
        for l in 0..16 {
            seen[mc_for_line(LineAddr::new(l), 4).index()] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn adjacent_lines_hit_different_mcs() {
        assert_ne!(
            mc_for_line(LineAddr::new(0), 4),
            mc_for_line(LineAddr::new(1), 4)
        );
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_mcs_panics() {
        let _ = mc_for_line(LineAddr::new(0), 0);
    }

    #[test]
    fn unloaded_access_pays_device_latency() {
        let mut mc = McTiming::new(2, 240, 360);
        assert_eq!(mc.schedule_read(Cycle::new(100)), Cycle::new(340));
        assert_eq!(mc.schedule_write(Cycle::new(100)), Cycle::new(460));
        assert_eq!(mc.read_count(), 1);
        assert_eq!(mc.write_count(), 1);
    }

    #[test]
    fn saturated_banks_serialize() {
        let mut mc = McTiming::new(2, 240, 360);
        let a = mc.schedule_write(Cycle::ZERO);
        let b = mc.schedule_write(Cycle::ZERO);
        let c = mc.schedule_write(Cycle::ZERO);
        assert_eq!(a, Cycle::new(360));
        assert_eq!(b, Cycle::new(360), "second bank absorbs second write");
        assert_eq!(c, Cycle::new(720), "third write queues behind a bank");
    }

    #[test]
    fn reads_bypass_buffered_writes() {
        // Saturate the write lane, then issue a read: it must complete at
        // device read latency, not behind the write queue.
        let mut mc = McTiming::new(1, 240, 360);
        for _ in 0..10 {
            mc.schedule_write(Cycle::ZERO);
        }
        assert_eq!(mc.schedule_read(Cycle::ZERO), Cycle::new(240));
    }

    #[test]
    fn pending_writes_tracks_busy_lanes() {
        let mut mc = McTiming::new(2, 240, 360);
        assert_eq!(mc.pending_writes(Cycle::ZERO), 0);
        mc.schedule_write(Cycle::ZERO); // lane 0 busy until 360
        mc.schedule_write(Cycle::ZERO); // lane 1 busy until 360
        assert_eq!(mc.pending_writes(Cycle::new(100)), 2);
        assert_eq!(mc.pending_writes(Cycle::new(360)), 0, "retired at 360");
    }

    #[test]
    fn jitter_is_bounded_and_seed_deterministic() {
        let run = |seed: u64| {
            let mut mc = McTiming::new(2, 240, 360);
            mc.set_jitter(24, seed);
            (0..8)
                .map(|i| mc.schedule_write(Cycle::new(i * 10_000)))
                .collect::<Vec<_>>()
        };
        let a = run(3);
        assert_eq!(a, run(3), "same seed, same service times");
        assert_ne!(a, run(4), "different seed perturbs the schedule");
        for (i, t) in a.iter().enumerate() {
            let base = i as u64 * 10_000 + 360;
            assert!(
                t.as_u64() >= base && t.as_u64() <= base + 24,
                "write {i} done at {t}, outside [{base}, {base}+24]"
            );
        }
    }

    #[test]
    fn timed_write_splits_queue_wait_from_service() {
        let mut mc = McTiming::new(1, 240, 360);
        let (s0, d0) = mc.schedule_write_timed(Cycle::new(100));
        assert_eq!((s0, d0), (Cycle::new(100), Cycle::new(460)), "no queue");
        let (s1, d1) = mc.schedule_write_timed(Cycle::new(110));
        assert_eq!(s1, Cycle::new(460), "queued behind the first write");
        assert_eq!(d1, Cycle::new(820));
        assert_eq!(mc.schedule_write(Cycle::new(0)), Cycle::new(1180));
    }

    #[test]
    fn idle_banks_do_not_backdate() {
        let mut mc = McTiming::new(1, 10, 10);
        mc.schedule_read(Cycle::ZERO); // busy until 10
        let late = mc.schedule_read(Cycle::new(100));
        assert_eq!(late, Cycle::new(110), "starts at issue time, not at 10");
    }
}
