//! Message size classes carried by the network.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Size and virtual-network class of a network message.
///
/// Mirrors the virtual-network split of the Ruby/Garnet setup the paper
/// simulates on: requests and protocol acks (FlushEpoch, BankAck,
/// PersistCMP, PersistAck, EpochCMP) travel on the control network, demand
/// data responses on the response network, and writeback/flush-line/log
/// traffic on the writeback network. Each class has its own virtual
/// channels, so bulk epoch flushes cannot starve demand traffic (they still
/// contend for memory-controller write bandwidth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MessageClass {
    /// Header-only message (requests, acks, barrier protocol): 8 bytes.
    Control,
    /// Demand response carrying a 64-byte line plus header: 72 bytes.
    Data,
    /// Background line transfer (writebacks, epoch flush lines, undo-log
    /// and checkpoint writes): 72 bytes on its own virtual network.
    Writeback,
}

impl MessageClass {
    /// Payload size in bytes, including the header.
    pub const fn bytes(self) -> u64 {
        match self {
            MessageClass::Control => 8,
            MessageClass::Data | MessageClass::Writeback => 72,
        }
    }

    /// Virtual-network index (one set of link channels per class).
    pub const fn vnet(self) -> usize {
        match self {
            MessageClass::Control => 0,
            MessageClass::Data => 1,
            MessageClass::Writeback => 2,
        }
    }

    /// Number of virtual networks.
    pub const VNETS: usize = 3;

    /// The trace-vocabulary class of this message, for `pbm-obs` exports
    /// (which must not depend on this crate).
    pub const fn obs_class(self) -> pbm_types::NocClass {
        match self {
            MessageClass::Control => pbm_types::NocClass::Control,
            MessageClass::Data => pbm_types::NocClass::Data,
            MessageClass::Writeback => pbm_types::NocClass::Writeback,
        }
    }
}

impl fmt::Display for MessageClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MessageClass::Control => f.write_str("ctrl"),
            MessageClass::Data => f.write_str("data"),
            MessageClass::Writeback => f.write_str("wb"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(MessageClass::Control.bytes(), 8);
        assert_eq!(MessageClass::Data.bytes(), 72);
    }

    #[test]
    fn obs_classes_align() {
        assert_eq!(
            MessageClass::Control.obs_class(),
            pbm_types::NocClass::Control
        );
        assert_eq!(MessageClass::Data.obs_class(), pbm_types::NocClass::Data);
        assert_eq!(
            MessageClass::Writeback.obs_class(),
            pbm_types::NocClass::Writeback
        );
    }

    #[test]
    fn display() {
        assert_eq!(MessageClass::Control.to_string(), "ctrl");
        assert_eq!(MessageClass::Data.to_string(), "data");
    }
}
