//! On-chip interconnection network model for the `pbm` simulator.
//!
//! Models the paper's Garnet-configured 2D mesh (Table 1: 4 rows, 16-byte
//! flits): XY dimension-order routing, per-hop router/link latency, flit
//! serialization, and a deterministic link-occupancy contention model.
//!
//! Tiles are laid out row-major; core `i` and LLC bank `i` share tile `i`
//! (the usual tiled-CMP organization), and the memory controllers sit at the
//! mesh corners as in Figure 2 of the paper.
//!
//! # Example
//!
//! ```
//! use pbm_noc::{Mesh, MessageClass};
//! use pbm_types::{CoreId, BankId, NodeId, SystemConfig, Cycle};
//!
//! let cfg = SystemConfig::micro48();
//! let mut mesh = Mesh::new(&cfg);
//! let arrival = mesh.send(
//!     NodeId::Core(CoreId::new(0)),
//!     NodeId::Bank(BankId::new(31)),
//!     MessageClass::Data,
//!     Cycle::ZERO,
//! );
//! assert!(arrival > Cycle::ZERO);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod message;
mod routing;
mod topology;

pub use message::MessageClass;
pub use routing::{route_xy, RouteIter};
pub use topology::{Coord, Placement};

use pbm_types::{Cycle, NodeId, SystemConfig};

/// The 2D-mesh network: topology, placement and link-contention state.
///
/// All latency computation goes through [`Mesh::send`], which both returns
/// the arrival time of a message injected at `now` and updates link
/// occupancy so later messages sharing links observe queueing delay.
/// [`Mesh::latency_unloaded`] answers "how long with no contention" without
/// mutating state.
#[derive(Debug, Clone)]
pub struct Mesh {
    placement: Placement,
    hop_latency: u64,
    flit_bytes: u64,
    /// busy-until time per directed link and virtual network, indexed by
    /// `(from_tile * 4 + direction) * VNETS + vnet`.
    link_busy: Vec<Cycle>,
    messages: u64,
    flits: u64,
    /// Total head-flit queueing per virtual network (diagnostics).
    wait_cycles: [u64; MessageClass::VNETS],
    /// The simulator's current event time; see [`Mesh::advance_to`].
    now: Cycle,
    /// Maximum extra per-message delivery delay (0 = exact model).
    jitter_max: u64,
    /// SplitMix64 state for the jitter stream.
    jitter_state: u64,
}

/// Direction of a mesh link leaving a tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    North,
    South,
    East,
    West,
}

impl Dir {
    fn index(self) -> usize {
        match self {
            Dir::North => 0,
            Dir::South => 1,
            Dir::East => 2,
            Dir::West => 3,
        }
    }
}

impl Mesh {
    /// Builds the mesh for a validated system configuration.
    pub fn new(cfg: &SystemConfig) -> Self {
        let placement = Placement::new(cfg);
        let tiles = placement.rows() * placement.cols();
        Mesh {
            placement,
            hop_latency: cfg.hop_latency,
            flit_bytes: cfg.flit_bytes,
            link_busy: vec![Cycle::ZERO; tiles * 4 * MessageClass::VNETS],
            messages: 0,
            flits: 0,
            wait_cycles: [0; MessageClass::VNETS],
            now: Cycle::ZERO,
            jitter_max: 0,
            jitter_state: 0,
        }
    }

    /// Enables seeded delivery jitter: every message arrives up to `max`
    /// cycles later than the exact model predicts, drawn from a
    /// deterministic SplitMix64 stream.
    ///
    /// Extra delay is always protocol-legal on an asynchronous
    /// interconnect; the schedule perturbator in `pbm-check` uses this to
    /// explore message-arrival interleavings. With `max == 0` (the
    /// default) the mesh is cycle-exact and byte-identical to the
    /// unperturbed model.
    pub fn set_jitter(&mut self, max: u64, seed: u64) {
        self.jitter_max = max;
        self.jitter_state = seed;
    }

    fn jitter(&mut self) -> Cycle {
        if self.jitter_max == 0 {
            return Cycle::ZERO;
        }
        Cycle::new(splitmix64(&mut self.jitter_state) % (self.jitter_max + 1))
    }

    /// Informs the mesh of the simulator's current event time.
    ///
    /// Messages injected *at* the current time contend for links and
    /// reserve them; messages pre-computed for a **future** instant (the
    /// ack legs of an inline flush cascade) are charged their unloaded
    /// latency instead of reserving links — otherwise a future-dated
    /// reservation would block present-time traffic, which is causally
    /// backwards.
    pub fn advance_to(&mut self, now: Cycle) {
        self.now = self.now.max(now);
    }

    /// Cumulative head-flit queueing observed per virtual network
    /// (control, data, writeback) — a congestion diagnostic.
    pub fn wait_cycles(&self) -> [u64; MessageClass::VNETS] {
        self.wait_cycles
    }

    /// The node placement in use.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Messages injected so far.
    pub fn message_count(&self) -> u64 {
        self.messages
    }

    /// Flits injected so far.
    pub fn flit_count(&self) -> u64 {
        self.flits
    }

    /// Number of flits a message of `class` occupies.
    pub fn flits_for(&self, class: MessageClass) -> u64 {
        class.bytes().div_ceil(self.flit_bytes).max(1)
    }

    /// Contention-free traversal latency from `src` to `dst`.
    ///
    /// The head flit pays `hops * hop_latency` through the route pipeline
    /// and the tail arrives `flits - 1` cycles later. A message to the
    /// local tile still pays one router traversal.
    pub fn latency_unloaded(&self, src: NodeId, dst: NodeId, class: MessageClass) -> Cycle {
        let hops = self.hops(src, dst);
        let flits = self.flits_for(class);
        Cycle::new(hops.max(1) * self.hop_latency + (flits - 1))
    }

    /// Manhattan hop distance between two nodes (0 for colocated nodes).
    pub fn hops(&self, src: NodeId, dst: NodeId) -> u64 {
        let a = self.placement.coord(src);
        let b = self.placement.coord(dst);
        a.manhattan(b)
    }

    /// Injects a message at time `now`, returning its arrival time at `dst`.
    ///
    /// Models wormhole routing with per-link occupancy: the head flit waits
    /// for each busy link along the XY route, each link is then held for the
    /// message's serialization time, and the tail flit arrives `flits - 1`
    /// cycles after the head. Calls should be made in nondecreasing `now`
    /// order (the discrete-event engine guarantees this); out-of-order calls
    /// are safe but conservatively over-estimate waiting.
    pub fn send(&mut self, src: NodeId, dst: NodeId, class: MessageClass, now: Cycle) -> Cycle {
        let flits = self.flits_for(class);
        self.messages += 1;
        self.flits += flits;
        let a = self.placement.coord(src);
        let b = self.placement.coord(dst);
        if a == b {
            // Same tile (e.g. core to its colocated bank): router-internal.
            return now + Cycle::new(self.hop_latency + (flits - 1)) + self.jitter();
        }
        if now > self.now {
            // Future-dated message (inline cascade): unloaded latency, no
            // link reservation — it must not block present-time traffic.
            return now + self.latency_unloaded(src, dst, class) + self.jitter();
        }
        let cols = self.placement.cols();
        let mut head = now;
        for (from, to) in route_xy(a, b) {
            let dir = Self::dir(from, to);
            let link = (from.index(cols) * 4 + dir.index()) * MessageClass::VNETS + class.vnet();
            // Head flit waits for the link, link is held for `flits` cycles.
            let start = head.max(self.link_busy[link]);
            self.wait_cycles[class.vnet()] += (start - head).as_u64();
            self.link_busy[link] = start + Cycle::new(flits);
            head = start + Cycle::new(self.hop_latency);
        }
        head + Cycle::new(flits - 1) + self.jitter()
    }

    fn dir(from: Coord, to: Coord) -> Dir {
        if to.col > from.col {
            Dir::East
        } else if to.col < from.col {
            Dir::West
        } else if to.row > from.row {
            Dir::South
        } else {
            Dir::North
        }
    }
}

/// One step of the SplitMix64 generator (Steele et al.), good enough for
/// latency jitter and stateless apart from the 8-byte counter.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbm_types::{BankId, CoreId, McId};

    fn mesh() -> Mesh {
        Mesh::new(&SystemConfig::micro48())
    }

    #[test]
    fn colocated_core_and_bank_are_zero_hops() {
        let m = mesh();
        assert_eq!(
            m.hops(NodeId::Core(CoreId::new(5)), NodeId::Bank(BankId::new(5))),
            0
        );
    }

    #[test]
    fn corner_to_corner_distance() {
        let m = mesh();
        // 4x8 mesh: tile 0 at (0,0), tile 31 at (3,7): 3 + 7 = 10 hops.
        assert_eq!(
            m.hops(NodeId::Core(CoreId::new(0)), NodeId::Core(CoreId::new(31))),
            10
        );
    }

    #[test]
    fn mcs_sit_on_corners() {
        let m = mesh();
        for i in 0..4 {
            let c = m.placement().coord(NodeId::Mc(McId::new(i)));
            assert!(
                (c.row == 0 || c.row == 3) && (c.col == 0 || c.col == 7),
                "MC{i} at {c:?} is not a corner"
            );
        }
    }

    #[test]
    fn unloaded_latency_scales_with_hops() {
        let m = mesh();
        let near = m.latency_unloaded(
            NodeId::Core(CoreId::new(0)),
            NodeId::Bank(BankId::new(1)),
            MessageClass::Control,
        );
        let far = m.latency_unloaded(
            NodeId::Core(CoreId::new(0)),
            NodeId::Bank(BankId::new(31)),
            MessageClass::Control,
        );
        assert!(far > near);
    }

    #[test]
    fn data_messages_take_longer_than_control() {
        let m = mesh();
        let src = NodeId::Core(CoreId::new(0));
        let dst = NodeId::Bank(BankId::new(9));
        assert!(
            m.latency_unloaded(src, dst, MessageClass::Data)
                > m.latency_unloaded(src, dst, MessageClass::Control)
        );
    }

    #[test]
    fn send_matches_unloaded_when_idle() {
        let mut m = mesh();
        let src = NodeId::Core(CoreId::new(3));
        let dst = NodeId::Bank(BankId::new(12));
        let expect = m.latency_unloaded(src, dst, MessageClass::Data);
        let arrival = m.send(src, dst, MessageClass::Data, Cycle::new(100));
        assert_eq!(arrival, Cycle::new(100) + expect);
    }

    #[test]
    fn contention_delays_second_message() {
        let mut m = mesh();
        let src = NodeId::Core(CoreId::new(0));
        let dst = NodeId::Bank(BankId::new(7)); // straight east, shared links
        let first = m.send(src, dst, MessageClass::Data, Cycle::ZERO);
        let second = m.send(src, dst, MessageClass::Data, Cycle::ZERO);
        assert!(second > first, "second message must queue behind the first");
    }

    #[test]
    fn disjoint_paths_do_not_interfere() {
        let mut m = mesh();
        let a = m.send(
            NodeId::Core(CoreId::new(0)),
            NodeId::Bank(BankId::new(1)),
            MessageClass::Control,
            Cycle::ZERO,
        );
        // Different row, different links entirely.
        let b = m.send(
            NodeId::Core(CoreId::new(16)),
            NodeId::Bank(BankId::new(17)),
            MessageClass::Control,
            Cycle::ZERO,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn counters_track_traffic() {
        let mut m = mesh();
        assert_eq!(m.message_count(), 0);
        m.send(
            NodeId::Core(CoreId::new(0)),
            NodeId::Bank(BankId::new(2)),
            MessageClass::Data,
            Cycle::ZERO,
        );
        assert_eq!(m.message_count(), 1);
        assert_eq!(m.flit_count(), m.flits_for(MessageClass::Data));
        assert!(m.flit_count() >= 4, "64B+header data message in 16B flits");
    }

    #[test]
    fn virtual_networks_are_isolated() {
        // Saturate the writeback VN on a path; a control message on the
        // same physical path must still traverse unloaded.
        let mut m = mesh();
        let src = NodeId::Core(CoreId::new(0));
        let dst = NodeId::Bank(BankId::new(7));
        for _ in 0..50 {
            m.send(src, dst, MessageClass::Writeback, Cycle::ZERO);
        }
        let expect = m.latency_unloaded(src, dst, MessageClass::Control);
        let arrival = m.send(src, dst, MessageClass::Control, Cycle::ZERO);
        assert_eq!(arrival, Cycle::ZERO + expect);
        assert!(m.wait_cycles()[MessageClass::Writeback.vnet()] > 0);
        assert_eq!(m.wait_cycles()[MessageClass::Control.vnet()], 0);
    }

    #[test]
    fn future_dated_sends_do_not_block_present_traffic() {
        let mut m = mesh();
        m.advance_to(Cycle::new(100));
        let src = NodeId::Core(CoreId::new(0));
        let dst = NodeId::Bank(BankId::new(7));
        // A burst of future-dated acks (e.g. PersistAcks at +360)...
        for _ in 0..50 {
            m.send(dst, src, MessageClass::Control, Cycle::new(460));
        }
        // ...must not delay a request sent right now.
        let expect = m.latency_unloaded(src, dst, MessageClass::Control);
        let arrival = m.send(src, dst, MessageClass::Control, Cycle::new(100));
        assert_eq!(arrival, Cycle::new(100) + expect);
    }

    #[test]
    fn jitter_delays_but_never_hastens_and_is_seed_deterministic() {
        let src = NodeId::Core(CoreId::new(3));
        let dst = NodeId::Bank(BankId::new(12));
        let mut exact = mesh();
        let base = exact.send(src, dst, MessageClass::Data, Cycle::new(100));
        let run = |seed: u64| {
            let mut m = mesh();
            m.set_jitter(6, seed);
            (0..8)
                .map(|i| m.send(src, dst, MessageClass::Data, Cycle::new(100 + i * 1_000)))
                .collect::<Vec<_>>()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, run(8), "different seed explores a different schedule");
        assert!(
            a[0] >= base && a[0] <= base + Cycle::new(6),
            "bounded delay"
        );
    }

    #[test]
    fn local_message_still_pays_router() {
        let mut m = mesh();
        let t = m.send(
            NodeId::Core(CoreId::new(4)),
            NodeId::Bank(BankId::new(4)),
            MessageClass::Control,
            Cycle::new(10),
        );
        assert_eq!(t, Cycle::new(10 + 3)); // hop_latency = 3 in Table 1 model
    }
}
