//! XY dimension-order routing.

use crate::topology::Coord;

/// Returns an iterator over the directed links `(from, to)` of the XY route
/// from `src` to `dst`: first along the row (X), then along the column (Y).
///
/// XY routing is minimal and deadlock-free on a mesh, which is why Garnet's
/// default (and this model) uses it.
///
/// # Example
///
/// ```
/// use pbm_noc::{route_xy, Coord};
/// let hops: Vec<_> = route_xy(Coord::new(0, 0), Coord::new(1, 2)).collect();
/// assert_eq!(hops.len(), 3); // 2 east + 1 south
/// assert_eq!(hops[0], (Coord::new(0, 0), Coord::new(0, 1)));
/// assert_eq!(hops[2], (Coord::new(0, 2), Coord::new(1, 2)));
/// ```
pub fn route_xy(src: Coord, dst: Coord) -> RouteIter {
    RouteIter { cur: src, dst }
}

/// Iterator over the links of an XY route; see [`route_xy`].
#[derive(Debug, Clone)]
pub struct RouteIter {
    cur: Coord,
    dst: Coord,
}

impl Iterator for RouteIter {
    type Item = (Coord, Coord);

    fn next(&mut self) -> Option<(Coord, Coord)> {
        let from = self.cur;
        let next = if self.cur.col < self.dst.col {
            Coord::new(self.cur.row, self.cur.col + 1)
        } else if self.cur.col > self.dst.col {
            Coord::new(self.cur.row, self.cur.col - 1)
        } else if self.cur.row < self.dst.row {
            Coord::new(self.cur.row + 1, self.cur.col)
        } else if self.cur.row > self.dst.row {
            Coord::new(self.cur.row - 1, self.cur.col)
        } else {
            return None;
        };
        self.cur = next;
        Some((from, next))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_route_for_same_tile() {
        assert_eq!(route_xy(Coord::new(1, 1), Coord::new(1, 1)).count(), 0);
    }

    #[test]
    fn x_before_y() {
        let hops: Vec<_> = route_xy(Coord::new(3, 0), Coord::new(0, 2)).collect();
        // East twice, then north three times.
        assert_eq!(hops[0].1, Coord::new(3, 1));
        assert_eq!(hops[1].1, Coord::new(3, 2));
        assert_eq!(hops[2].1, Coord::new(2, 2));
        assert_eq!(hops.len(), 5);
    }

    #[test]
    fn route_is_connected() {
        let hops: Vec<_> = route_xy(Coord::new(0, 5), Coord::new(3, 1)).collect();
        for pair in hops.windows(2) {
            assert_eq!(pair[0].1, pair[1].0, "links must chain");
        }
        assert_eq!(hops.last().unwrap().1, Coord::new(3, 1));
    }

    proptest! {
        #[test]
        fn prop_route_is_minimal(
            sr in 0usize..8, sc in 0usize..8,
            dr in 0usize..8, dc in 0usize..8,
        ) {
            let s = Coord::new(sr, sc);
            let d = Coord::new(dr, dc);
            let len = route_xy(s, d).count() as u64;
            prop_assert_eq!(len, s.manhattan(d));
        }

        #[test]
        fn prop_route_ends_at_destination(
            sr in 0usize..8, sc in 0usize..8,
            dr in 0usize..8, dc in 0usize..8,
        ) {
            let s = Coord::new(sr, sc);
            let d = Coord::new(dr, dc);
            let end = route_xy(s, d).last().map(|(_, to)| to).unwrap_or(s);
            prop_assert_eq!(end, d);
        }

        #[test]
        fn prop_each_hop_is_unit_length(
            sr in 0usize..8, sc in 0usize..8,
            dr in 0usize..8, dc in 0usize..8,
        ) {
            for (from, to) in route_xy(Coord::new(sr, sc), Coord::new(dr, dc)) {
                prop_assert_eq!(from.manhattan(to), 1);
            }
        }
    }
}
