//! Mesh coordinates and node placement.

use pbm_types::{NodeId, SystemConfig};
use serde::{Deserialize, Serialize};

/// A (row, column) position in the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Coord {
    /// Mesh row, 0 at the top.
    pub row: usize,
    /// Mesh column, 0 at the left.
    pub col: usize,
}

impl Coord {
    /// Creates a coordinate.
    pub const fn new(row: usize, col: usize) -> Self {
        Coord { row, col }
    }

    /// Manhattan distance to another coordinate.
    pub fn manhattan(self, other: Coord) -> u64 {
        (self.row.abs_diff(other.row) + self.col.abs_diff(other.col)) as u64
    }

    /// Row-major tile index for a mesh with `cols` columns.
    pub fn index(self, cols: usize) -> usize {
        self.row * cols + self.col
    }
}

/// Placement of cores, LLC banks and memory controllers on the mesh.
///
/// Core `i` and bank `i` share tile `i` (row-major). Memory controllers are
/// placed on the four corners, clockwise from the top-left, wrapping if
/// there are more than four (Figure 2 of the paper shows 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    rows: usize,
    cols: usize,
    mc_coords: Vec<Coord>,
}

impl Placement {
    /// Computes the placement for a configuration.
    pub fn new(cfg: &SystemConfig) -> Self {
        let rows = cfg.mesh_rows;
        let cols = cfg.mesh_cols();
        let corners = [
            Coord::new(0, 0),
            Coord::new(0, cols - 1),
            Coord::new(rows - 1, cols - 1),
            Coord::new(rows - 1, 0),
        ];
        let mc_coords = (0..cfg.mcs).map(|i| corners[i % 4]).collect();
        Placement {
            rows,
            cols,
            mc_coords,
        }
    }

    /// Mesh rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Mesh columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The mesh coordinate of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node index exceeds the configured counts (a wiring bug
    /// in the caller, not a runtime condition).
    pub fn coord(&self, node: NodeId) -> Coord {
        match node {
            NodeId::Core(c) => self.tile(c.index()),
            NodeId::Bank(b) => self.tile(b.index()),
            NodeId::Mc(m) => self.mc_coords[m.index()],
        }
    }

    fn tile(&self, index: usize) -> Coord {
        assert!(
            index < self.rows * self.cols,
            "tile {index} outside {}x{} mesh",
            self.rows,
            self.cols
        );
        Coord::new(index / self.cols, index % self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbm_types::{BankId, CoreId, McId};

    #[test]
    fn manhattan_distance() {
        assert_eq!(Coord::new(0, 0).manhattan(Coord::new(3, 7)), 10);
        assert_eq!(Coord::new(2, 5).manhattan(Coord::new(2, 5)), 0);
        assert_eq!(Coord::new(3, 1).manhattan(Coord::new(1, 4)), 5);
    }

    #[test]
    fn row_major_tiles() {
        let p = Placement::new(&SystemConfig::micro48());
        assert_eq!(p.coord(NodeId::Core(CoreId::new(0))), Coord::new(0, 0));
        assert_eq!(p.coord(NodeId::Core(CoreId::new(7))), Coord::new(0, 7));
        assert_eq!(p.coord(NodeId::Core(CoreId::new(8))), Coord::new(1, 0));
        assert_eq!(p.coord(NodeId::Bank(BankId::new(31))), Coord::new(3, 7));
    }

    #[test]
    fn four_corner_mcs() {
        let p = Placement::new(&SystemConfig::micro48());
        assert_eq!(p.coord(NodeId::Mc(McId::new(0))), Coord::new(0, 0));
        assert_eq!(p.coord(NodeId::Mc(McId::new(1))), Coord::new(0, 7));
        assert_eq!(p.coord(NodeId::Mc(McId::new(2))), Coord::new(3, 7));
        assert_eq!(p.coord(NodeId::Mc(McId::new(3))), Coord::new(3, 0));
    }

    #[test]
    fn coord_index_roundtrip() {
        let c = Coord::new(2, 3);
        assert_eq!(c.index(8), 19);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_tile_panics() {
        let p = Placement::new(&SystemConfig::small_test());
        let _ = p.coord(NodeId::Core(CoreId::new(99)));
    }
}
