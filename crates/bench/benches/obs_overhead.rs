//! Overhead of the observability layer on `run_one`.
//!
//! The contract is that a disabled observer is free: every
//! instrumentation point is one predictable branch, so `disabled` must
//! track the pre-instrumentation baseline within noise (<2%). The
//! `tracing` and `tracing+metrics` rows show the enabled cost for
//! comparison — they are allowed to be slower.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbm_bench::{run_one, run_one_instrumented};
use pbm_types::{BarrierKind, Cycle, PersistencyKind, SystemConfig};
use pbm_workloads::micro::{self, MicroParams};

fn bench_obs_overhead(c: &mut Criterion) {
    let mut params = MicroParams::paper();
    params.threads = 8;
    params.ops_per_thread = 64;
    let wl = micro::all(&params).remove(0);
    let mut cfg = SystemConfig::micro48();
    cfg.cores = 8;
    cfg.llc_banks = 8;
    cfg.mesh_rows = 2;
    cfg.persistency = PersistencyKind::BufferedEpoch;
    cfg.barrier = BarrierKind::LbPp;

    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_with_input(
        BenchmarkId::from_parameter("disabled"),
        &(cfg.clone(), wl.clone()),
        |b, (cfg, wl)| b.iter(|| run_one(cfg.clone(), wl)),
    );
    group.bench_with_input(
        BenchmarkId::from_parameter("tracing"),
        &(cfg.clone(), wl.clone()),
        |b, (cfg, wl)| b.iter(|| run_one_instrumented(cfg.clone(), wl, true, None)),
    );
    group.bench_with_input(
        BenchmarkId::from_parameter("tracing+metrics"),
        &(cfg, wl),
        |b, (cfg, wl)| {
            b.iter(|| run_one_instrumented(cfg.clone(), wl, true, Some(Cycle::new(5_000))))
        },
    );
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
