//! Criterion benches: small-scale versions of the paper's experiments,
//! one group per figure, so `cargo bench` exercises every code path the
//! figure binaries use (full-scale numbers come from the binaries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbm_bench::run_one;
use pbm_types::{BarrierKind, PersistencyKind, SystemConfig};
use pbm_workloads::apps::{self, AppParams};
use pbm_workloads::micro::{self, MicroParams};

fn small_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::micro48();
    cfg.cores = 8;
    cfg.llc_banks = 8;
    cfg.mesh_rows = 2;
    cfg
}

fn bench_fig11(c: &mut Criterion) {
    let mut params = MicroParams::paper();
    params.threads = 8;
    params.ops_per_thread = 8;
    let mut group = c.benchmark_group("fig11_bep_micro");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for wl in micro::all(&params) {
        for kind in [BarrierKind::Lb, BarrierKind::LbPp] {
            let mut cfg = small_cfg();
            cfg.persistency = PersistencyKind::BufferedEpoch;
            cfg.barrier = kind;
            group.bench_with_input(
                BenchmarkId::new(wl.name, kind),
                &(cfg, wl.clone()),
                |b, (cfg, wl)| b.iter(|| run_one(cfg.clone(), wl)),
            );
        }
    }
    group.finish();
}

fn bench_fig14(c: &mut Criterion) {
    let mut params = AppParams::paper();
    params.threads = 8;
    params.ops_per_thread = 150;
    let mut group = c.benchmark_group("fig14_bsp_apps");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for name in ["intruder", "ssca2"] {
        let wl = apps::build(apps::profile(name).unwrap(), &params);
        for kind in [BarrierKind::Lb, BarrierKind::LbPp] {
            let mut cfg = small_cfg();
            cfg.persistency = PersistencyKind::BufferedStrictBulk;
            cfg.bsp_epoch_size = 1000;
            cfg.barrier = kind;
            group.bench_with_input(
                BenchmarkId::new(name, kind),
                &(cfg, wl.clone()),
                |b, (cfg, wl)| b.iter(|| run_one(cfg.clone(), wl)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig11, bench_fig14);
criterion_main!(benches);
