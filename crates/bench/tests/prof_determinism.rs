//! The profiler's `BENCH_prof.json` must be byte-identical at any
//! `--jobs=N`: the CI regression gate diffs it with zero tolerance, so a
//! worker-count-dependent byte would fail every CI run on a different
//! machine shape.

use pbm_bench::profiling::{bench_prof_doc, fig11_jobs, profile_cells};

#[test]
fn bench_prof_doc_is_byte_identical_across_jobs() {
    // A slice of the real quick grid keeps the test fast while still
    // crossing workloads and barrier variants (truncation preserves grid
    // order, so both runs see identical cells).
    let cells: Vec<_> = fig11_jobs(true).into_iter().take(8).collect();
    let serial = profile_cells(1, cells.clone());
    let parallel = profile_cells(8, cells);
    let doc_1 = bench_prof_doc(&serial, true).to_json();
    let doc_8 = bench_prof_doc(&parallel, true).to_json();
    assert_eq!(doc_1, doc_8, "--jobs must not leak into the document");
    assert!(
        serial.iter().any(|(_, _, p)| !p.barriers.is_empty()),
        "the sliced grid still profiles real barriers"
    );
}
