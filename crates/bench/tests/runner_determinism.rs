//! Determinism of the parallel runner: the worker count must be invisible
//! in the results — identical stats grids and byte-identical per-cell
//! trace artifacts at `--jobs=1` and `--jobs=8`.

use pbm_bench::{Job, ObsOptions, Runner};
use pbm_types::{BarrierKind, PersistencyKind, SystemConfig};
use pbm_workloads::micro::{self, MicroParams};
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

fn grid() -> Vec<Job> {
    let mut params = MicroParams::paper();
    params.threads = 4;
    params.ops_per_thread = 8;
    let mut base = SystemConfig::micro48();
    base.persistency = PersistencyKind::BufferedEpoch;
    base.cores = 4;
    base.llc_banks = 4;
    base.mesh_rows = 2;
    let mut cells = Vec::new();
    for wl in [micro::queue(&params), micro::hash(&params)] {
        for kind in [BarrierKind::Lb, BarrierKind::LbPp] {
            let mut cfg = base.clone();
            cfg.barrier = kind;
            cells.push((kind.to_string(), wl.name.to_string(), cfg, wl.clone()));
        }
    }
    cells
}

#[test]
fn worker_count_does_not_change_the_result_grid() {
    let seq = Runner::new("det", 1, ObsOptions::default()).run(grid());
    let par = Runner::new("det", 8, ObsOptions::default()).run(grid());
    assert_eq!(seq.len(), par.len());
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!((&a.config, &a.workload), (&b.config, &b.workload));
        assert_eq!(a.stats, b.stats, "{}-{} diverged", a.config, a.workload);
    }
}

/// Every file the runner wrote under `dir`, keyed by file name.
fn artifact_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in fs::read_dir(dir).expect("artifact dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().into_string().expect("utf8 name");
        out.insert(name, fs::read(entry.path()).expect("artifact"));
    }
    out
}

fn obs_into(dir: &Path) -> ObsOptions {
    fs::create_dir_all(dir).expect("temp dir");
    ObsOptions {
        trace_out: Some(dir.join("trace.json")),
        metrics_csv: Some(dir.join("metrics.csv")),
        metrics_interval: 1000,
    }
}

#[test]
fn worker_count_does_not_change_the_trace_bytes() {
    let root = std::env::temp_dir().join(format!("pbm-runner-det-{}", std::process::id()));
    let dirs = [root.join("jobs1"), root.join("jobs8")];
    let seq = Runner::new("det", 1, obs_into(&dirs[0])).run(grid());
    let par = Runner::new("det", 8, obs_into(&dirs[1])).run(grid());
    assert_eq!(seq.len(), par.len());

    let a = artifact_bytes(&dirs[0]);
    let b = artifact_bytes(&dirs[1]);
    // One trace and one CSV per cell, same names from both runs.
    assert_eq!(a.len(), 2 * seq.len());
    assert_eq!(
        a.keys().collect::<Vec<_>>(),
        b.keys().collect::<Vec<_>>(),
        "artifact routing diverged"
    );
    for (name, bytes) in &a {
        assert_eq!(bytes, &b[name], "{name} diverged between jobs=1 and jobs=8");
    }
    let _ = fs::remove_dir_all(&root);
}
