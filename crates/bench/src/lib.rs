//! Experiment harness: runs (configuration x workload) matrices and prints
//! the rows/series of the paper's tables and figures.
//!
//! Every figure binary (`fig11`, `fig12`, `fig13`, `fig14`) and ablation
//! (`ablation_flush`, `ablation_writethrough`) is built on these helpers;
//! see EXPERIMENTS.md at the repository root for the paper-vs-measured
//! record they produce.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod obs;
pub mod profiling;
pub mod runner;

pub use obs::{capture_artifacts, run_one_instrumented, ObsOptions};
pub use runner::{default_jobs, jobs_from_args, Runner};

use pbm_sim::System;
use pbm_types::{MetricSample, SimStats, SystemConfig};
use pbm_workloads::Workload;
use std::time::Duration;

/// One completed run of the matrix.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Workload name.
    pub workload: String,
    /// Configuration label (barrier kind, epoch size, ...).
    pub config: String,
    /// The run's statistics.
    pub stats: SimStats,
    /// Sampled metrics series ([`Runner::run_sampled`] only; empty
    /// otherwise).
    pub samples: Vec<MetricSample>,
    /// Wall-clock of this cell's simulation on its worker thread.
    pub wall: Duration,
}

/// Runs one workload under one configuration.
///
/// # Panics
///
/// Panics if the configuration is invalid or the simulation wedges (both
/// indicate bugs, not workload conditions).
pub fn run_one(cfg: SystemConfig, wl: &Workload) -> SimStats {
    let mut sys = System::new(cfg, wl.programs.clone()).expect("valid config");
    wl.apply_preloads(&mut sys);
    sys.run()
}

/// One matrix job: `(config label, workload label, config, workload)`.
pub type Job = (String, String, SystemConfig, Workload);

/// Runs a labelled `(config, workload)` matrix, parallelizing across the
/// host's cores. Results come back in input order.
///
/// Thin wrapper over [`Runner`] for callers that don't need `--jobs=`
/// control, observability routing, or the wall-clock record.
pub fn run_matrix(jobs: Vec<Job>) -> Vec<RunResult> {
    Runner::new("matrix", default_jobs(), ObsOptions::default()).run(jobs)
}

/// Geometric mean (the paper's summary statistic for throughput and
/// execution-time ratios).
///
/// # Panics
///
/// Panics if `xs` is empty or contains a non-positive value.
pub fn gmean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "gmean of nothing");
    let log_sum: f64 = xs
        .iter()
        .map(|x| {
            assert!(*x > 0.0, "gmean needs positive values, got {x}");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

/// Arithmetic mean (used for Figure 12's conflict percentages).
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn amean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "amean of nothing");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Prints a fixed-width table: header row, one row per entry, with the
/// first column left-aligned and the rest right-aligned to 10 chars.
pub fn print_table(title: &str, headers: &[&str], rows: &[(String, Vec<f64>)]) {
    println!("\n== {title} ==");
    print!("{:<12}", headers[0]);
    for h in &headers[1..] {
        print!("{h:>10}");
    }
    println!();
    for (name, values) in rows {
        print!("{name:<12}");
        for v in values {
            print!("{v:>10.3}");
        }
        println!();
    }
}

/// Prints the epoch flush-latency distribution of each run that persisted
/// at least one epoch: count, mean, and the p50/p95/p99 tail, one row per
/// `(config, workload)` cell.
pub fn print_flush_latency(title: &str, results: &[RunResult]) {
    let rows: Vec<&RunResult> = results
        .iter()
        .filter(|r| r.stats.epoch_flush_latency.count() > 0)
        .collect();
    if rows.is_empty() {
        return;
    }
    println!("\n== {title} ==");
    for r in rows {
        println!(
            "{:<12}{:<12}{}",
            r.config, r.workload, r.stats.epoch_flush_latency
        );
    }
}

/// Prints the Table 1 header (system parameters) so every experiment's
/// output records the platform it ran on.
pub fn print_system_header(cfg: &SystemConfig) {
    println!(
        "# system: {} cores, {}KiB L1 x{}-way, {}x{}MiB LLC x{}-way, {} MCs, \
         NVRAM w/r {}/{} cycles, mesh {}x{}, barrier {}, model {}",
        cfg.cores,
        cfg.l1_size / 1024,
        cfg.l1_assoc,
        cfg.llc_banks,
        cfg.llc_bank_size / (1024 * 1024),
        cfg.llc_assoc,
        cfg.mcs,
        cfg.nvram_write_latency,
        cfg.nvram_read_latency,
        cfg.mesh_rows,
        cfg.mesh_cols(),
        cfg.barrier,
        cfg.persistency,
    );
}

/// True if `--quick` was passed (smaller scale for CI / smoke runs).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_of_constants() {
        assert!((gmean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((gmean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn amean_basic() {
        assert!((amean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gmean_rejects_zero() {
        let _ = gmean(&[0.0]);
    }

    #[test]
    fn matrix_runs_in_order() {
        use pbm_sim::ProgramBuilder;
        use pbm_types::Addr;
        let mut cfg = SystemConfig::small_test();
        cfg.cores = 1;
        let mut b = ProgramBuilder::new();
        b.store(Addr::new(0), 1).barrier();
        let wl = Workload {
            name: "t",
            programs: vec![b.build()],
            preloads: vec![],
        };
        let jobs = (0..5)
            .map(|i| (format!("c{i}"), "t".to_string(), cfg.clone(), wl.clone()))
            .collect();
        let results = run_matrix(jobs);
        assert_eq!(results.len(), 5);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.config, format!("c{i}"));
            assert_eq!(r.stats.stores, 1);
        }
    }
}
