//! The causal-profiling pipeline behind the `prof` binary: the shared
//! fig11 grid, traced per-cell runs, and the `BENCH_prof.json` document.
//!
//! Lives in the library (rather than the binary) so the grid is shared
//! with `fig11` — the profiler attributes exactly the cells the figure
//! measures — and so the `--jobs` determinism of the whole pipeline is
//! testable in-process. `quick` is an explicit parameter everywhere (not
//! re-read from the environment) for the same reason.

use crate::obs::run_one_instrumented;
use crate::Job;
use pbm_obs::json::JsonValue;
use pbm_prof::{report, Profile};
use pbm_types::{BarrierKind, PersistencyKind, SystemConfig};
use pbm_workloads::micro::{self, MicroParams};

/// The fig11 system base: micro48 under BEP, shrunk in quick mode.
pub fn fig11_base(quick: bool) -> SystemConfig {
    let mut base = SystemConfig::micro48();
    base.persistency = PersistencyKind::BufferedEpoch;
    if quick {
        base.cores = 8;
        base.llc_banks = 8;
        base.mesh_rows = 2;
    }
    base
}

/// The fig11 micro-benchmark parameters, shrunk in quick mode.
pub fn fig11_params(quick: bool) -> MicroParams {
    let mut params = MicroParams::paper();
    if quick {
        params.threads = 8;
        params.ops_per_thread = 16;
    }
    params
}

/// The fig11 cell grid — every micro-benchmark under every lazy barrier
/// variant, in figure order (workload-major, [`BarrierKind::LAZY_VARIANTS`]
/// within each workload).
pub fn fig11_jobs(quick: bool) -> Vec<Job> {
    let params = fig11_params(quick);
    let base = fig11_base(quick);
    let mut jobs = Vec::new();
    for wl in micro::all(&params) {
        for kind in BarrierKind::LAZY_VARIANTS {
            let mut cfg = base.clone();
            cfg.barrier = kind;
            jobs.push((kind.to_string(), wl.name.to_string(), cfg, wl.clone()));
        }
    }
    jobs
}

/// One profiled grid cell: `(config label, workload label, profile)`.
pub type ProfiledCell = (String, String, Profile);

/// Runs every cell with tracing enabled and analyzes its event stream on
/// the worker, returning profiles in grid order. The raw events are
/// dropped worker-side (a traced paper-scale cell is millions of events;
/// the profile is a few hundred barriers), keeping peak memory bounded by
/// one trace per worker.
///
/// Deterministic across `jobs`: results come back in input order and each
/// cell's analysis depends only on that cell's (deterministic) trace.
pub fn profile_cells(jobs: usize, cells: Vec<Job>) -> Vec<ProfiledCell> {
    pbm_check::parallel_map(jobs, cells, |(config, workload, cfg, wl)| {
        let (_, events, _) = run_one_instrumented(cfg, &wl, true, None);
        (config, workload, pbm_prof::analyze(&events))
    })
}

/// Builds the `pbm-bench-prof/v1` document from profiled cells (grid
/// order preserved).
pub fn bench_prof_doc(profiles: &[ProfiledCell], quick: bool) -> JsonValue {
    report::bench_doc(
        profiles
            .iter()
            .map(|(config, workload, profile)| report::cell_json(config, workload, profile))
            .collect(),
        quick,
    )
}

/// Filesystem slug of a cell label pair (`LB++`, `queue` → `lb___queue`):
/// lowercase alphanumerics, everything else `_` — same convention as
/// [`crate::ObsOptions::for_label`].
pub fn cell_slug(config: &str, workload: &str) -> String {
    format!("{config}_{workload}")
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_matches_fig11_shape() {
        let jobs = fig11_jobs(true);
        assert_eq!(jobs.len(), 5 * BarrierKind::LAZY_VARIANTS.len());
        // Workload-major, variants in order within each workload.
        for chunk in jobs.chunks(BarrierKind::LAZY_VARIANTS.len()) {
            for (job, kind) in chunk.iter().zip(BarrierKind::LAZY_VARIANTS) {
                assert_eq!(job.0, kind.to_string());
                assert_eq!(job.3.name, chunk[0].3.name);
            }
        }
    }

    #[test]
    fn slugs_are_filesystem_safe() {
        assert_eq!(cell_slug("LB++", "queue"), "lb___queue");
        assert_eq!(cell_slug("LB+IDT", "sps"), "lb_idt_sps");
    }
}
