//! Ablation A3: how many IDT dependence/inform register pairs per epoch
//! are enough?
//!
//! §4.3 provisions 4 pairs (64 bytes per L1); an overflow falls back to an
//! online flush. This sweep runs the BSP application proxies — where
//! inter-thread dependences dominate — with 1/2/4/8 pairs and reports the
//! overflow rate and execution time, justifying the paper's sizing.
//!
//! Run: `cargo run -p pbm-bench --release --bin ablation_idt_pairs [--quick]
//!           [--jobs=N] [--trace-out=t.json] [--metrics-csv=m.csv]`

use pbm_bench::{print_system_header, print_table, quick_mode, Runner};
use pbm_types::{BarrierKind, PersistencyKind, SystemConfig};
use pbm_workloads::apps::{self, AppParams};

fn main() {
    let mut params = AppParams::paper();
    params.ops_per_thread = if quick_mode() { 800 } else { 4000 };
    if quick_mode() {
        params.threads = 8;
    }
    let mut base = SystemConfig::micro48();
    base.persistency = PersistencyKind::BufferedStrictBulk;
    base.barrier = BarrierKind::LbPp;
    base.bsp_epoch_size = 1000;
    if quick_mode() {
        base.cores = 8;
        base.llc_banks = 8;
        base.mesh_rows = 2;
    }
    print_system_header(&base);

    let pairs = [1usize, 2, 4, 8];
    let mut jobs = Vec::new();
    for name in ["intruder", "ssca2", "vacation"] {
        let wl = apps::build(apps::profile(name).expect("known"), &params);
        for p in pairs {
            let mut cfg = base.clone();
            cfg.idt_pairs = p;
            jobs.push((format!("{p} pairs"), name.to_string(), cfg, wl.clone()));
        }
    }
    let runner = Runner::from_args("ablation_idt_pairs");
    let results = runner.run(jobs);

    let mut rows = Vec::new();
    for chunk in results.chunks(pairs.len()) {
        let base_cycles = chunk[chunk.len() - 1].stats.cycles as f64; // 8 pairs
        let mut cols = Vec::new();
        for r in chunk {
            cols.push(r.stats.cycles as f64 / base_cycles);
        }
        for r in chunk {
            let total = (r.stats.idt_recorded + r.stats.idt_overflows).max(1);
            cols.push(100.0 * r.stats.idt_overflows as f64 / total as f64);
        }
        rows.push((chunk[0].workload.clone(), cols));
    }
    print_table(
        "Ablation A3: IDT register pairs per epoch (time vs 8 pairs | overflow %)",
        &[
            "workload", "t@1", "t@2", "t@4", "t@8", "ovf%@1", "ovf%@2", "ovf%@4", "ovf%@8",
        ],
        &rows,
    );
    println!("\npaper: 4 pairs per epoch (64 B per L1) suffice");
    runner.finish();
}
