//! Ablation A5: the multi-banked flush protocol's arbiter cost.
//!
//! §4.1 argues a per-core arbiter makes the banked epoch flush O(n)
//! messages instead of O(n^2), at the price of the BankAck/PersistCMP
//! round trip per epoch. This sweep varies the LLC bank count (with the
//! same total LLC capacity) and reports throughput and NoC traffic per
//! persisted epoch, quantifying the handshake the paper designs for.
//!
//! Run: `cargo run -p pbm-bench --release --bin ablation_banks [--quick]
//!           [--jobs=N] [--trace-out=t.json] [--metrics-csv=m.csv]`

use pbm_bench::{print_system_header, print_table, quick_mode, Runner};
use pbm_types::{BarrierKind, PersistencyKind, SystemConfig};
use pbm_workloads::micro::{self, MicroParams};

fn main() {
    let mut params = MicroParams::paper();
    params.threads = 8;
    if quick_mode() {
        params.ops_per_thread = 16;
    }
    let mut base = SystemConfig::micro48();
    base.persistency = PersistencyKind::BufferedEpoch;
    base.barrier = BarrierKind::LbPp;
    base.cores = 8;
    base.mesh_rows = 2;
    print_system_header(&base);

    // Same 8 MiB of LLC, split 1 / 4 / 8 / 32 ways.
    let banks = [1usize, 4, 8, 32];
    let total_llc: u64 = 8 * 1024 * 1024;
    let mut jobs = Vec::new();
    for wl in [micro::queue(&params), micro::hash(&params)] {
        for nb in banks {
            let mut cfg = base.clone();
            cfg.llc_banks = nb;
            cfg.llc_bank_size = total_llc / nb as u64;
            cfg.mesh_rows = if nb >= 8 { 2 } else { 1 };
            jobs.push((format!("{nb} banks"), wl.name.to_string(), cfg, wl.clone()));
        }
    }
    let runner = Runner::from_args("ablation_banks");
    let results = runner.run(jobs);

    let mut rows = Vec::new();
    for chunk in results.chunks(banks.len()) {
        let mono = chunk[0].stats.throughput();
        let mut cols = Vec::new();
        for r in chunk {
            cols.push(r.stats.throughput() / mono);
        }
        for r in chunk {
            cols.push(r.stats.noc_messages as f64 / r.stats.epochs_persisted.max(1) as f64);
        }
        rows.push((chunk[0].workload.clone(), cols));
    }
    print_table(
        "Ablation A5: LLC banking (throughput vs monolithic | NoC msgs per epoch)",
        &[
            "workload", "t@1", "t@4", "t@8", "t@32", "msg@1", "msg@4", "msg@8", "msg@32",
        ],
        &rows,
    );
    println!("\npaper: arbiter keeps the banked flush at O(n) messages per epoch");
    runner.finish();
}
