//! Figure 12: percentage of epochs flushed because of a conflict, for the
//! five micro-benchmarks under LB / LB+IDT / LB+PF / LB++.
//!
//! Paper shape: amean ≈ 90 / 90 / 77 / 75 percent.
//!
//! Run: `cargo run -p pbm-bench --release --bin fig12 [--quick] [--jobs=N]`

use pbm_bench::{amean, print_system_header, print_table, quick_mode, Runner};
use pbm_types::{BarrierKind, PersistencyKind, SystemConfig};
use pbm_workloads::micro::{self, MicroParams};

fn main() {
    let mut params = MicroParams::paper();
    if quick_mode() {
        params.threads = 8;
        params.ops_per_thread = 16;
    }
    let mut base = SystemConfig::micro48();
    base.persistency = PersistencyKind::BufferedEpoch;
    if quick_mode() {
        base.cores = 8;
        base.llc_banks = 8;
        base.mesh_rows = 2;
    }
    print_system_header(&base);

    let mut jobs = Vec::new();
    for wl in micro::all(&params) {
        for kind in BarrierKind::LAZY_VARIANTS {
            let mut cfg = base.clone();
            cfg.barrier = kind;
            jobs.push((kind.to_string(), wl.name.to_string(), cfg, wl.clone()));
        }
    }
    let runner = Runner::from_args("fig12");
    let results = runner.run(jobs);

    let mut rows = Vec::new();
    let mut per_kind: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for chunk in results.chunks(4) {
        let pct: Vec<f64> = chunk
            .iter()
            .map(|r| r.stats.conflicting_epoch_pct())
            .collect();
        for (k, v) in pct.iter().enumerate() {
            per_kind[k].push(*v);
        }
        rows.push((chunk[0].workload.clone(), pct));
    }
    rows.push((
        "amean".to_string(),
        per_kind.iter().map(|v| amean(v)).collect(),
    ));
    print_table(
        "Figure 12: % conflicting epochs (BEP micro-benchmarks)",
        &["workload", "LB", "LB+IDT", "LB+PF", "LB++"],
        &rows,
    );
    println!("\npaper amean: LB 90, LB+IDT 90, LB+PF 77, LB++ 75");
    runner.finish();
}
