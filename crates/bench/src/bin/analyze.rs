//! `analyze` — the static persist-order linter over the built-in
//! workloads.
//!
//! Lints every micro-benchmark under BEP rules and every application proxy
//! under BSP rules (plus the Figure-10 commit protocol), printing the
//! ranked human report per workload and exiting nonzero if any
//! unsuppressed error remains — the CI gate.
//!
//! ```text
//! analyze [--workloads=name,...] [--suppress=SPEC]... [--json[=PATH]]
//!         [--micro-threads=N] [--micro-ops=N] [--app-ops=N]
//! ```
//!
//! `--suppress` takes the `kind=…,core=…,op=…,line=…` syntax of
//! `pbm_analyze::Suppression` and may be repeated; suppressed findings are
//! still printed, marked, and excluded from the gate. `--json` emits one
//! `pbm-analyze-report/v1` document per workload (to stdout, or to
//! `PATH/<workload>.json`).

use pbm_analyze::{analyze, AnalyzeConfig, Suppression};
use pbm_workloads::apps::{self, AppParams};
use pbm_workloads::commit;
use pbm_workloads::micro::{self, MicroParams};
use pbm_workloads::Workload;
use std::path::PathBuf;

struct Args {
    workloads: Option<Vec<String>>,
    suppressions: Vec<Suppression>,
    json: Option<Option<PathBuf>>,
    micro_threads: usize,
    micro_ops: usize,
    app_ops: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        workloads: None,
        suppressions: Vec::new(),
        json: None,
        micro_threads: 4,
        micro_ops: 16,
        app_ops: 600,
    };
    for arg in std::env::args().skip(1) {
        let bad = |what: &str| -> ! {
            eprintln!("error: bad value in {what:?}");
            std::process::exit(2);
        };
        if let Some(v) = arg.strip_prefix("--workloads=") {
            args.workloads = Some(v.split(',').map(str::to_string).collect());
        } else if let Some(v) = arg.strip_prefix("--suppress=") {
            match Suppression::parse(v) {
                Ok(s) => args.suppressions.push(s),
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            }
        } else if arg == "--json" {
            args.json = Some(None);
        } else if let Some(v) = arg.strip_prefix("--json=") {
            args.json = Some(Some(PathBuf::from(v)));
        } else if let Some(v) = arg.strip_prefix("--micro-threads=") {
            args.micro_threads = v.parse().unwrap_or_else(|_| bad(&arg));
        } else if let Some(v) = arg.strip_prefix("--micro-ops=") {
            args.micro_ops = v.parse().unwrap_or_else(|_| bad(&arg));
        } else if let Some(v) = arg.strip_prefix("--app-ops=") {
            args.app_ops = v.parse().unwrap_or_else(|_| bad(&arg));
        } else {
            eprintln!("error: unknown argument {arg:?}");
            std::process::exit(2);
        }
    }
    args
}

fn main() {
    let args = parse_args();
    // (workload, the lint configuration it targets).
    let micro_params = MicroParams {
        threads: args.micro_threads,
        ops_per_thread: args.micro_ops,
        ..MicroParams::tiny()
    };
    let app_params = AppParams {
        threads: args.micro_threads,
        ops_per_thread: args.app_ops,
        ..AppParams::tiny()
    };
    let mut targets: Vec<(Workload, AnalyzeConfig)> = Vec::new();
    for wl in micro::all(&micro_params) {
        targets.push((wl, AnalyzeConfig::bep()));
    }
    for wl in apps::all(&app_params) {
        targets.push((wl, AnalyzeConfig::bsp(7)));
    }
    targets.push((commit::publisher_consumer(4, false), AnalyzeConfig::bep()));
    if let Some(names) = &args.workloads {
        targets.retain(|(wl, _)| names.iter().any(|n| n == wl.name));
        if targets.is_empty() {
            eprintln!("error: no workload matches {names:?}");
            std::process::exit(2);
        }
    }
    let mut errors = 0usize;
    for (wl, mut cfg) in targets {
        cfg.suppressions = args.suppressions.clone();
        let report = analyze(&wl.programs, &cfg);
        print!("{}", report.render_human(wl.name));
        match &args.json {
            None => {}
            Some(None) => println!("{}", report.to_json_value(wl.name).to_json()),
            Some(Some(dir)) => {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("error: cannot create {}: {e}", dir.display());
                    std::process::exit(2);
                }
                let path = dir.join(format!("{}.json", wl.name));
                let mut text = report.to_json_value(wl.name).to_json();
                text.push('\n');
                if let Err(e) = std::fs::write(&path, text) {
                    eprintln!("error: cannot write {}: {e}", path.display());
                    std::process::exit(2);
                }
            }
        }
        errors += report.error_count();
    }
    if errors > 0 {
        eprintln!("error: {errors} unsuppressed error(s) across the lint targets");
        std::process::exit(1);
    }
    println!("# analyze: clean");
}
