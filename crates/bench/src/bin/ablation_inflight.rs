//! Ablation A4: the in-flight epoch window (the 3-bit epoch id).
//!
//! §4.3 supports 8 in-flight epochs per core. Fewer epochs mean the core
//! back-pressures at barriers sooner; more epochs cost tag bits. This sweep
//! runs the BEP micro-benchmarks with windows of 2/4/8/16 under LB (where
//! the window matters most — nothing flushes proactively).
//!
//! Run: `cargo run -p pbm-bench --release --bin ablation_inflight [--quick]
//!           [--jobs=N] [--trace-out=t.json] [--metrics-csv=m.csv]`

use pbm_bench::{gmean, print_system_header, print_table, quick_mode, Runner};
use pbm_types::{BarrierKind, PersistencyKind, SystemConfig};
use pbm_workloads::micro::{self, MicroParams};

fn main() {
    let mut params = MicroParams::paper();
    if quick_mode() {
        params.threads = 8;
        params.ops_per_thread = 16;
    }
    let mut base = SystemConfig::micro48();
    base.persistency = PersistencyKind::BufferedEpoch;
    base.barrier = BarrierKind::Lb;
    if quick_mode() {
        base.cores = 8;
        base.llc_banks = 8;
        base.mesh_rows = 2;
    }
    print_system_header(&base);

    let windows = [2usize, 4, 8, 16];
    let mut jobs = Vec::new();
    for wl in micro::all(&params) {
        for w in windows {
            let mut cfg = base.clone();
            cfg.inflight_epochs = w;
            jobs.push((format!("{w} epochs"), wl.name.to_string(), cfg, wl.clone()));
        }
    }
    let runner = Runner::from_args("ablation_inflight");
    let results = runner.run(jobs);

    let mut rows = Vec::new();
    let mut per_w: Vec<Vec<f64>> = vec![Vec::new(); windows.len()];
    for chunk in results.chunks(windows.len()) {
        // Normalize to the paper's window of 8 (index 2).
        let base_tput = chunk[2].stats.throughput();
        let normalized: Vec<f64> = chunk
            .iter()
            .map(|r| r.stats.throughput() / base_tput)
            .collect();
        for (k, v) in normalized.iter().enumerate() {
            per_w[k].push(*v);
        }
        rows.push((chunk[0].workload.clone(), normalized));
    }
    rows.push((
        "gmean".to_string(),
        per_w.iter().map(|v| gmean(v)).collect(),
    ));
    print_table(
        "Ablation A4: in-flight epoch window (throughput vs window = 8)",
        &["workload", "w=2", "w=4", "w=8", "w=16"],
        &rows,
    );
    println!("\npaper: 8 in-flight epochs (3-bit epoch id in cache tags)");
    runner.finish();
}
