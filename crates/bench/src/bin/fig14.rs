//! Figure 14: BSP-bulk execution time under LB / LB+IDT / LB++ /
//! LB++NOLOG (epoch size 10000), normalized to NP.
//!
//! Paper shape: gmean ≈ 1.5 / 1.35 / 1.3 / 1.16; ssca2 drops from 4.22x
//! to 2.62x.
//!
//! Run: `cargo run -p pbm-bench --release --bin fig14 [--quick] [--jobs=N]`

use pbm_bench::{gmean, print_flush_latency, print_system_header, print_table, quick_mode, Runner};
use pbm_types::{BarrierKind, PersistencyKind, SystemConfig};
use pbm_workloads::apps::{self, AppParams};

fn main() {
    let mut params = AppParams::paper();
    if quick_mode() {
        params.threads = 8;
        params.ops_per_thread = 800;
    }
    let mut base = SystemConfig::micro48();
    base.persistency = PersistencyKind::BufferedStrictBulk;
    base.bsp_epoch_size = 10_000;
    if quick_mode() {
        base.cores = 8;
        base.llc_banks = 8;
        base.mesh_rows = 2;
    }
    print_system_header(&base);

    let configs: Vec<(String, SystemConfig)> = {
        let mut v = Vec::new();
        let mut np = base.clone();
        np.barrier = BarrierKind::NoPersistency;
        v.push(("NP".to_string(), np));
        for (label, kind, logging) in [
            ("LB", BarrierKind::Lb, true),
            ("LB+IDT", BarrierKind::LbIdt, true),
            ("LB++", BarrierKind::LbPp, true),
            ("LB++NOLOG", BarrierKind::LbPp, false),
        ] {
            let mut c = base.clone();
            c.barrier = kind;
            c.logging = logging;
            v.push((label.to_string(), c));
        }
        v
    };

    let mut jobs = Vec::new();
    for wl in apps::all(&params) {
        for (label, cfg) in &configs {
            jobs.push((label.clone(), wl.name.to_string(), cfg.clone(), wl.clone()));
        }
    }
    let runner = Runner::from_args("fig14");
    let results = runner.run(jobs);

    let mut rows = Vec::new();
    let mut per_cfg: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for chunk in results.chunks(5) {
        let np_cycles = chunk[0].stats.cycles as f64;
        let normalized: Vec<f64> = chunk[1..]
            .iter()
            .map(|r| r.stats.cycles as f64 / np_cycles)
            .collect();
        for (k, v) in normalized.iter().enumerate() {
            per_cfg[k].push(*v);
        }
        rows.push((chunk[0].workload.clone(), normalized));
    }
    rows.push((
        "gmean".to_string(),
        per_cfg.iter().map(|v| gmean(v)).collect(),
    ));
    print_table(
        "Figure 14: execution time normalized to NP (BSP, epoch = 10K stores)",
        &["workload", "LB", "LB+IDT", "LB++", "LB++NOLOG"],
        &rows,
    );
    print_flush_latency("epoch flush latency (cycles)", &results);
    println!("\npaper gmean: LB 1.5, LB+IDT 1.35, LB++ 1.3, LB++NOLOG 1.16");
    runner.finish();
}
