//! Figure 13: BSP-bulk execution time with epoch sizes 300 / 1000 / 10000
//! dynamic stores, normalized to the no-persistency baseline (NP).
//!
//! Paper shape: gmean ≈ 1.9 / 1.5 / 1.45; LB1K beats LB10K on canneal,
//! dedup, intruder and vacation.
//!
//! Run: `cargo run -p pbm-bench --release --bin fig13 [--quick] [--jobs=N]`

use pbm_bench::{gmean, print_flush_latency, print_system_header, print_table, quick_mode, Runner};
use pbm_types::{BarrierKind, PersistencyKind, SystemConfig};
use pbm_workloads::apps::{self, AppParams};

fn main() {
    let mut params = AppParams::paper();
    if quick_mode() {
        params.threads = 8;
        params.ops_per_thread = 800;
    }
    let mut base = SystemConfig::micro48();
    base.persistency = PersistencyKind::BufferedStrictBulk;
    if quick_mode() {
        base.cores = 8;
        base.llc_banks = 8;
        base.mesh_rows = 2;
    }
    print_system_header(&base);

    let configs: Vec<(String, SystemConfig)> = {
        let mut v = Vec::new();
        let mut np = base.clone();
        np.barrier = BarrierKind::NoPersistency;
        v.push(("NP".to_string(), np));
        for size in [300u64, 1000, 10_000] {
            let mut c = base.clone();
            c.barrier = BarrierKind::Lb;
            c.bsp_epoch_size = size;
            v.push((format!("LB{size}"), c));
        }
        v
    };

    let mut jobs = Vec::new();
    for wl in apps::all(&params) {
        for (label, cfg) in &configs {
            jobs.push((label.clone(), wl.name.to_string(), cfg.clone(), wl.clone()));
        }
    }
    let runner = Runner::from_args("fig13");
    let results = runner.run(jobs);

    let mut rows = Vec::new();
    let mut per_cfg: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for chunk in results.chunks(4) {
        let np_cycles = chunk[0].stats.cycles as f64;
        let normalized: Vec<f64> = chunk[1..]
            .iter()
            .map(|r| r.stats.cycles as f64 / np_cycles)
            .collect();
        for (k, v) in normalized.iter().enumerate() {
            per_cfg[k].push(*v);
        }
        rows.push((chunk[0].workload.clone(), normalized));
    }
    rows.push((
        "gmean".to_string(),
        per_cfg.iter().map(|v| gmean(v)).collect(),
    ));
    print_table(
        "Figure 13: execution time normalized to NP (BSP epoch-size sweep)",
        &["workload", "LB300", "LB1K", "LB10K"],
        &rows,
    );
    print_flush_latency("epoch flush latency (cycles)", &results);
    println!("\npaper gmean: LB300 1.9, LB1K 1.5, LB10K ~1.45");
    runner.finish();
}
