//! BSP configuration profiler: runs one application across the barrier
//! ladder (NP, LB at three epoch sizes, IDT, LB++, no-log) with the
//! metrics sampler attached and prints, per configuration, a
//! stall-attribution breakdown (compute vs online-persist vs barrier
//! cycles), the epoch flush-latency percentiles, and the headline
//! counters the roadmap tracks.
//!
//! Run: `cargo run -p pbm-bench --release --bin profile_bsp -- \
//!           [app] [ops] [--jobs=N] [--trace-out=t.json] [--metrics-csv=m.csv]`
//!
//! The ladder's configurations run in parallel on the runner's worker
//! pool; with `--trace-out` / `--metrics-csv` the artifacts are written
//! per configuration, suffixed with the config and workload labels.

use pbm_bench::{Job, Runner};
use pbm_types::{BarrierKind, Cycle, PersistencyKind, SystemConfig};
use pbm_workloads::apps::{self, AppParams};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let app = args
        .iter()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or("ssca2".into());
    let ops: usize = args
        .iter()
        .skip(1)
        .filter(|a| !a.starts_with("--"))
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40_000);
    let runner = Runner::from_args("profile_bsp");
    let mut params = AppParams::paper();
    params.ops_per_thread = ops;
    let wl = apps::build(apps::profile(&app).unwrap(), &params);
    let base = SystemConfig::micro48();
    let configs: Vec<(String, BarrierKind, u64, bool)> = vec![
        ("NP".into(), BarrierKind::NoPersistency, 10_000, true),
        ("LB300".into(), BarrierKind::Lb, 300, true),
        ("LB1K".into(), BarrierKind::Lb, 1000, true),
        ("LB10K".into(), BarrierKind::Lb, 10_000, true),
        ("IDT10K".into(), BarrierKind::LbIdt, 10_000, true),
        ("LB++10K".into(), BarrierKind::LbPp, 10_000, true),
        ("NOLOG".into(), BarrierKind::LbPp, 10_000, false),
    ];
    let cells: Vec<Job> = configs
        .iter()
        .map(|(label, kind, size, logging)| {
            let mut cfg = base.clone();
            cfg.persistency = PersistencyKind::BufferedStrictBulk;
            cfg.barrier = *kind;
            cfg.bsp_epoch_size = *size;
            cfg.logging = *logging;
            (label.clone(), wl.name.to_string(), cfg, wl.clone())
        })
        .collect();
    let interval = Cycle::new(runner.obs().metrics_interval);
    let results = runner.run_sampled(cells, interval);

    println!(
        "{:<10}{:>12}{:>8}{:>10}{:>10}{:>10}{:>9}{:>9}{:>9}",
        "config", "cycles", "norm", "epochs", "cfl%", "splits", "comp%", "onl%", "bar%"
    );
    let np_cycles = results[0].stats.cycles as f64;
    for r in &results {
        let stats = &r.stats;
        // Stall attribution: total core-cycles split into stalled-online,
        // stalled-at-barrier, and everything else (compute + memory).
        let core_cycles = (stats.cycles * base.cores as u64).max(1) as f64;
        let onl = stats.online_persist_stall_cycles as f64 / core_cycles * 100.0;
        let bar = stats.barrier_stall_cycles as f64 / core_cycles * 100.0;
        let comp = 100.0 - onl - bar;
        println!(
            "{:<10}{:>12}{:>8.2}{:>10}{:>10.1}{:>10}{:>9.1}{:>9.1}{:>9.1}",
            r.config,
            stats.cycles,
            stats.cycles as f64 / np_cycles,
            stats.epochs_created,
            stats.conflicting_epoch_pct(),
            stats.deadlock_splits,
            comp,
            onl,
            bar,
        );
        if stats.epoch_flush_latency.count() > 0 {
            println!("           flush latency: {}", stats.epoch_flush_latency);
        }
        // Saturation sketch from the sampled series: peak MC write-queue
        // depth and peak simultaneously-stalled cores.
        let peak_q = r
            .samples
            .iter()
            .map(|s| s.mc_queue_depth)
            .max()
            .unwrap_or(0);
        let peak_stalled = r.samples.iter().map(|s| s.stalled_cores).max().unwrap_or(0);
        println!(
            "           detail: wall={:?} I={} X={} ovf={} log={} chk={} evf={} parks={} \
             peak_mcq={peak_q} peak_stalled={peak_stalled}",
            r.wall,
            stats.conflicts_intra,
            stats.conflicts_inter,
            stats.idt_overflows,
            stats.log_writes,
            stats.checkpoint_writes,
            stats.epochs_eviction_flushed,
            stats.parks,
        );
    }
    runner.finish();
}
