use pbm_bench::run_one;
use pbm_types::{BarrierKind, PersistencyKind, SystemConfig};
use pbm_workloads::apps::{self, AppParams};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let app = args.get(1).cloned().unwrap_or("ssca2".into());
    let ops: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(40_000);
    let mut params = AppParams::paper();
    params.ops_per_thread = ops;
    let wl = apps::build(apps::profile(&app).unwrap(), &params);
    let base = SystemConfig::micro48();
    let mut np_cycles = 0f64;
    let configs: Vec<(String, BarrierKind, u64, bool)> = vec![
        ("NP".into(), BarrierKind::NoPersistency, 10_000, true),
        ("LB300".into(), BarrierKind::Lb, 300, true),
        ("LB1K".into(), BarrierKind::Lb, 1000, true),
        ("LB10K".into(), BarrierKind::Lb, 10_000, true),
        ("IDT10K".into(), BarrierKind::LbIdt, 10_000, true),
        ("LB++10K".into(), BarrierKind::LbPp, 10_000, true),
        ("NOLOG".into(), BarrierKind::LbPp, 10_000, false),
    ];
    for (label, kind, size, logging) in configs {
        let mut cfg = base.clone();
        cfg.persistency = PersistencyKind::BufferedStrictBulk;
        cfg.barrier = kind;
        cfg.bsp_epoch_size = size;
        cfg.logging = logging;
        let t = Instant::now();
        let stats = run_one(cfg, &wl);
        if label == "NP" { np_cycles = stats.cycles as f64; }
        println!(
            "{app} {label}: wall={:?} cyc={} norm={:.2} epochs={} cfl%={:.1} I={} X={} stall={} bstall={} log={} chk={} ovf={} splits={} evf={} parks={}",
            t.elapsed(), stats.cycles, stats.cycles as f64 / np_cycles,
            stats.epochs_created, stats.conflicting_epoch_pct(),
            stats.conflicts_intra, stats.conflicts_inter,
            stats.online_persist_stall_cycles, stats.barrier_stall_cycles,
            stats.log_writes, stats.checkpoint_writes, stats.idt_overflows, stats.deadlock_splits, stats.epochs_eviction_flushed, stats.parks,
        );
    }
}
