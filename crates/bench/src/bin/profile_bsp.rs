//! BSP configuration profiler: runs one application across the barrier
//! ladder (NP, LB at three epoch sizes, IDT, LB++, no-log) with the
//! metrics sampler attached and prints, per configuration, a
//! stall-attribution breakdown (compute vs online-persist vs barrier
//! cycles), the epoch flush-latency percentiles, and the headline
//! counters the roadmap tracks.
//!
//! Run: `cargo run -p pbm-bench --release --bin profile_bsp -- \
//!           [app] [ops] [--jobs=N] [--json=p.json] [--trace-out=t.json] \
//!           [--metrics-csv=m.csv]`
//!
//! The ladder's configurations run in parallel on the runner's worker
//! pool; with `--trace-out` / `--metrics-csv` the artifacts are written
//! per configuration, suffixed with the config and workload labels. With
//! `--json=` the stall attribution and the full flush-latency histogram
//! (power-of-two buckets + p50/p90/p99/p99.9) are also written as a
//! machine-readable `pbm-profile-bsp/v1` document.

use pbm_bench::{Job, Runner};
use pbm_obs::json::JsonValue;
use pbm_types::{BarrierKind, Cycle, Histogram, PersistencyKind, SimStats, SystemConfig};
use pbm_workloads::apps::{self, AppParams};

/// `pbm-profile-bsp/v1`: one ladder run as integer-only JSON.
const JSON_SCHEMA: &str = "pbm-profile-bsp/v1";

/// The flush-latency distribution: nonzero power-of-two buckets plus the
/// nearest-rank tail percentiles. All integers (`Histogram::percentile`
/// returns bucket lower bounds), so the document is byte-deterministic.
fn histogram_json(h: &Histogram) -> JsonValue {
    JsonValue::Object(vec![
        ("count".into(), JsonValue::Num(h.count())),
        ("sum".into(), JsonValue::Num(h.sum())),
        ("max".into(), JsonValue::Num(h.max())),
        ("p50".into(), JsonValue::Num(h.percentile(50.0))),
        ("p90".into(), JsonValue::Num(h.percentile(90.0))),
        ("p99".into(), JsonValue::Num(h.percentile(99.0))),
        ("p99_9".into(), JsonValue::Num(h.percentile(99.9))),
        (
            "buckets".into(),
            JsonValue::Array(
                h.nonzero_buckets()
                    .into_iter()
                    .map(|(lower, upper, count)| {
                        JsonValue::Object(vec![
                            ("lower".into(), JsonValue::Num(lower)),
                            ("upper".into(), JsonValue::Num(upper)),
                            ("count".into(), JsonValue::Num(count)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// One ladder rung: the stall attribution in raw core-cycles (consumers
/// derive percentages; the integers keep the document exact) plus the
/// flush-latency histogram.
fn config_json(label: &str, stats: &SimStats, cores: usize) -> JsonValue {
    let core_cycles = stats.cycles * cores as u64;
    let stalled = stats.online_persist_stall_cycles + stats.barrier_stall_cycles;
    JsonValue::Object(vec![
        ("config".into(), JsonValue::Str(label.into())),
        ("cycles".into(), JsonValue::Num(stats.cycles)),
        (
            "epochs_created".into(),
            JsonValue::Num(stats.epochs_created),
        ),
        (
            "deadlock_splits".into(),
            JsonValue::Num(stats.deadlock_splits),
        ),
        (
            "stall_attribution".into(),
            JsonValue::Object(vec![
                ("core_cycles".into(), JsonValue::Num(core_cycles)),
                (
                    "online_persist".into(),
                    JsonValue::Num(stats.online_persist_stall_cycles),
                ),
                ("barrier".into(), JsonValue::Num(stats.barrier_stall_cycles)),
                (
                    "compute".into(),
                    JsonValue::Num(core_cycles.saturating_sub(stalled)),
                ),
            ]),
        ),
        (
            "flush_latency".into(),
            histogram_json(&stats.epoch_flush_latency),
        ),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_out = args
        .iter()
        .find_map(|a| a.strip_prefix("--json="))
        .map(String::from);
    let app = args
        .iter()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or("ssca2".into());
    let ops: usize = args
        .iter()
        .skip(1)
        .filter(|a| !a.starts_with("--"))
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40_000);
    let runner = Runner::from_args("profile_bsp");
    let mut params = AppParams::paper();
    params.ops_per_thread = ops;
    let wl = apps::build(apps::profile(&app).unwrap(), &params);
    let base = SystemConfig::micro48();
    let configs: Vec<(String, BarrierKind, u64, bool)> = vec![
        ("NP".into(), BarrierKind::NoPersistency, 10_000, true),
        ("LB300".into(), BarrierKind::Lb, 300, true),
        ("LB1K".into(), BarrierKind::Lb, 1000, true),
        ("LB10K".into(), BarrierKind::Lb, 10_000, true),
        ("IDT10K".into(), BarrierKind::LbIdt, 10_000, true),
        ("LB++10K".into(), BarrierKind::LbPp, 10_000, true),
        ("NOLOG".into(), BarrierKind::LbPp, 10_000, false),
    ];
    let cells: Vec<Job> = configs
        .iter()
        .map(|(label, kind, size, logging)| {
            let mut cfg = base.clone();
            cfg.persistency = PersistencyKind::BufferedStrictBulk;
            cfg.barrier = *kind;
            cfg.bsp_epoch_size = *size;
            cfg.logging = *logging;
            (label.clone(), wl.name.to_string(), cfg, wl.clone())
        })
        .collect();
    let interval = Cycle::new(runner.obs().metrics_interval);
    let results = runner.run_sampled(cells, interval);

    println!(
        "{:<10}{:>12}{:>8}{:>10}{:>10}{:>10}{:>9}{:>9}{:>9}",
        "config", "cycles", "norm", "epochs", "cfl%", "splits", "comp%", "onl%", "bar%"
    );
    let np_cycles = results[0].stats.cycles as f64;
    for r in &results {
        let stats = &r.stats;
        // Stall attribution: total core-cycles split into stalled-online,
        // stalled-at-barrier, and everything else (compute + memory).
        let core_cycles = (stats.cycles * base.cores as u64).max(1) as f64;
        let onl = stats.online_persist_stall_cycles as f64 / core_cycles * 100.0;
        let bar = stats.barrier_stall_cycles as f64 / core_cycles * 100.0;
        let comp = 100.0 - onl - bar;
        println!(
            "{:<10}{:>12}{:>8.2}{:>10}{:>10.1}{:>10}{:>9.1}{:>9.1}{:>9.1}",
            r.config,
            stats.cycles,
            stats.cycles as f64 / np_cycles,
            stats.epochs_created,
            stats.conflicting_epoch_pct(),
            stats.deadlock_splits,
            comp,
            onl,
            bar,
        );
        if stats.epoch_flush_latency.count() > 0 {
            println!("           flush latency: {}", stats.epoch_flush_latency);
        }
        // Saturation sketch from the sampled series: peak MC write-queue
        // depth and peak simultaneously-stalled cores.
        let peak_q = r
            .samples
            .iter()
            .map(|s| s.mc_queue_depth)
            .max()
            .unwrap_or(0);
        let peak_stalled = r.samples.iter().map(|s| s.stalled_cores).max().unwrap_or(0);
        println!(
            "           detail: wall={:?} I={} X={} ovf={} log={} chk={} evf={} parks={} \
             peak_mcq={peak_q} peak_stalled={peak_stalled}",
            r.wall,
            stats.conflicts_intra,
            stats.conflicts_inter,
            stats.idt_overflows,
            stats.log_writes,
            stats.checkpoint_writes,
            stats.epochs_eviction_flushed,
            stats.parks,
        );
    }
    if let Some(path) = json_out {
        let doc = JsonValue::Object(vec![
            ("schema".into(), JsonValue::Str(JSON_SCHEMA.into())),
            ("app".into(), JsonValue::Str(app.clone())),
            ("ops_per_thread".into(), JsonValue::Num(ops as u64)),
            (
                "configs".into(),
                JsonValue::Array(
                    results
                        .iter()
                        .map(|r| config_json(&r.config, &r.stats, base.cores))
                        .collect(),
                ),
            ),
        ]);
        let mut text = doc.to_json();
        text.push('\n');
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("# profile_bsp: {} configs -> {path}", results.len());
    }
    runner.finish();
}
