//! `check` — the crash-consistency fuzzing campaign driver.
//!
//! Default mode fuzzes (program, schedule-seed, barrier, persistency)
//! tuples through `pbm_check::run_campaign` under a wall-clock budget and
//! exits nonzero if the real design ever fails; any failing tuple is
//! shrunk and written to the corpus directory as a replayable artifact.
//!
//! ```text
//! check [--budget=60s] [--jobs=2] [--seed=1] [--max-cases=N] [--ops=40]
//!       [--corpus-dir=tests/corpus] [--bugs=all|name,...] [--write-corpus]
//! ```
//!
//! `--bugs` (requires building with `--features bug-inject`) instead hunts
//! the deliberately broken protocol variants and exits nonzero unless
//! every one is detected — the harness's own end-to-end test. With
//! `--write-corpus` each shrunk reproducer is (re)written into the corpus
//! directory, which is how `tests/corpus/*.json` are minted.

use pbm_bench::runner::jobs_from_args;
use pbm_check::shrink::{shrink, DEFAULT_MAX_RUNS};
use pbm_check::{encode_case, run_campaign, CampaignConfig};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn parse_budget(text: &str) -> Option<Duration> {
    if let Some(m) = text.strip_suffix('m') {
        return m.parse::<u64>().ok().map(|v| Duration::from_secs(v * 60));
    }
    let secs = text.strip_suffix('s').unwrap_or(text);
    secs.parse::<u64>().ok().map(Duration::from_secs)
}

#[derive(Debug)]
struct Args {
    campaign: CampaignConfig,
    corpus_dir: PathBuf,
    bugs: Option<String>,
    write_corpus: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        campaign: CampaignConfig {
            jobs: jobs_from_args(),
            ..CampaignConfig::default()
        },
        corpus_dir: PathBuf::from("tests/corpus"),
        bugs: None,
        write_corpus: false,
    };
    for arg in std::env::args().skip(1) {
        let bad = |what: &str| -> ! {
            eprintln!("error: bad value in {what:?}");
            std::process::exit(2);
        };
        if let Some(v) = arg.strip_prefix("--budget=") {
            args.campaign.budget = parse_budget(v).unwrap_or_else(|| bad(&arg));
        } else if let Some(v) = arg.strip_prefix("--seed=") {
            args.campaign.seed = v.parse().unwrap_or_else(|_| bad(&arg));
        } else if let Some(v) = arg.strip_prefix("--max-cases=") {
            args.campaign.max_cases = Some(v.parse().unwrap_or_else(|_| bad(&arg)));
        } else if let Some(v) = arg.strip_prefix("--ops=") {
            args.campaign.ops_per_core = v.parse().unwrap_or_else(|_| bad(&arg));
        } else if let Some(v) = arg.strip_prefix("--corpus-dir=") {
            args.corpus_dir = PathBuf::from(v);
        } else if let Some(v) = arg.strip_prefix("--bugs=") {
            args.bugs = Some(v.to_string());
        } else if arg == "--write-corpus" {
            args.write_corpus = true;
        } else if !arg.starts_with("--jobs=") {
            eprintln!("error: unknown argument {arg:?}");
            std::process::exit(2);
        }
    }
    args
}

fn write_artifact(dir: &Path, name: &str, text: &str) -> PathBuf {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("error: cannot create {}: {e}", dir.display());
        std::process::exit(2);
    }
    let path = dir.join(format!("{name}.json"));
    if let Err(e) = std::fs::write(&path, text) {
        eprintln!("error: cannot write {}: {e}", path.display());
        std::process::exit(2);
    }
    path
}

fn slug(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                'p'
            }
        })
        .collect()
}

fn main() {
    let args = parse_args();
    if let Some(spec) = &args.bugs {
        run_bugs(&args, spec);
        return;
    }
    let t0 = Instant::now();
    let report = run_campaign(&args.campaign);
    println!(
        "# check: {} cases, {} crash points, {} differential pairs in {:.1}s ({} jobs)",
        report.cases,
        report.crash_points,
        report.differential_pairs,
        t0.elapsed().as_secs_f64(),
        args.campaign.jobs,
    );
    let mut dirty = false;
    for msg in &report.differential_failures {
        dirty = true;
        println!("DIFFERENTIAL FAILURE: {msg}");
    }
    for failing in &report.failures {
        dirty = true;
        println!(
            "FAILURE: seed {} {} {}: {}",
            failing.spec.seed, failing.spec.barrier, failing.spec.persistency, failing.failure
        );
        let (small, small_failure) = shrink(&failing.spec, DEFAULT_MAX_RUNS);
        let name = format!(
            "fail-{}-{}-{}",
            small.seed,
            slug(&small.barrier.to_string()),
            slug(&small.persistency.to_string())
        );
        let text = encode_case(&small, None, Some(&small_failure));
        let path = write_artifact(&args.corpus_dir, &name, &text);
        println!(
            "  shrunk to {} ops -> {} ({small_failure})",
            small.total_ops(),
            path.display()
        );
    }
    if dirty {
        std::process::exit(1);
    }
    println!("# check: clean");
}

#[cfg(feature = "bug-inject")]
fn run_bugs(args: &Args, spec: &str) {
    use pbm_check::campaign::bugs::run_bug_campaign;
    use pbm_types::bug::InjectedBug;

    let bugs: Vec<InjectedBug> = if spec == "all" {
        InjectedBug::ALL.to_vec()
    } else {
        spec.split(',')
            .map(|name| {
                InjectedBug::from_name(name).unwrap_or_else(|| {
                    eprintln!("error: unknown bug {name:?}");
                    std::process::exit(2);
                })
            })
            .collect()
    };
    let mut missed = Vec::new();
    for bug in bugs {
        let outcome = run_bug_campaign(bug, args.campaign.seed.wrapping_add(9_000), 20);
        match &outcome.shrunk {
            Some((small, failure)) => {
                println!(
                    "# bug {bug}: detected (case {} of {}), shrunk to {} ops: {failure}",
                    outcome.cases_tried,
                    20,
                    small.total_ops()
                );
                if args.write_corpus {
                    let text = encode_case(small, Some(bug.name()), Some(failure));
                    let path =
                        write_artifact(&args.corpus_dir, &format!("bug-{}", bug.name()), &text);
                    println!("  -> {}", path.display());
                }
            }
            None => {
                println!("# bug {bug}: NOT DETECTED in {} cases", outcome.cases_tried);
                missed.push(bug);
            }
        }
    }
    if !missed.is_empty() {
        eprintln!(
            "error: {} injected bug(s) went undetected: {missed:?}",
            missed.len()
        );
        std::process::exit(1);
    }
    println!("# check: all injected bugs detected");
}

#[cfg(not(feature = "bug-inject"))]
fn run_bugs(_args: &Args, _spec: &str) {
    eprintln!("error: --bugs requires building with --features bug-inject");
    std::process::exit(2);
}
