//! Causal critical-path profiler over the fig11 grid: runs every
//! micro-benchmark under every lazy barrier variant with tracing enabled,
//! attributes each barrier's persist latency with `pbm-prof`, and writes
//!
//! * `BENCH_prof.json` — the `pbm-bench-prof/v1` summary the `regress`
//!   gate diffs against `results/baselines/` (byte-identical at any
//!   `--jobs=N`);
//! * per-cell `flame-<cell>.folded` + `report-<cell>.json` under
//!   `--out-dir=` (folded stacks render with `inferno-flamegraph` or
//!   `flamegraph.pl`).
//!
//! Run: `cargo run -p pbm-bench --release --bin prof [--quick] [--jobs=N]
//! [--bench-json=PATH] [--out-dir=DIR] [--top=K]`

use pbm_bench::profiling::{bench_prof_doc, cell_slug, fig11_base, fig11_jobs, profile_cells};
use pbm_bench::{jobs_from_args, print_system_header, quick_mode};
use pbm_prof::{flame, report};
use std::path::PathBuf;

struct Options {
    bench_json: PathBuf,
    out_dir: Option<PathBuf>,
    top: usize,
}

fn options() -> Options {
    let mut opts = Options {
        bench_json: PathBuf::from("BENCH_prof.json"),
        out_dir: None,
        top: 5,
    };
    for arg in std::env::args().skip(1) {
        if let Some(p) = arg.strip_prefix("--bench-json=") {
            opts.bench_json = PathBuf::from(p);
        } else if let Some(p) = arg.strip_prefix("--out-dir=") {
            opts.out_dir = Some(PathBuf::from(p));
        } else if let Some(k) = arg.strip_prefix("--top=") {
            match k.parse() {
                Ok(v) => opts.top = v,
                Err(_) => die(&format!("--top takes a count, got {k:?}")),
            }
        } else if arg == "--quick" || arg.starts_with("--jobs=") {
            // Parsed elsewhere.
        } else {
            die(&format!("unknown argument {arg:?}"));
        }
    }
    opts
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn write(path: &PathBuf, text: &str) {
    if let Err(e) = std::fs::write(path, text) {
        die(&format!("cannot write {}: {e}", path.display()));
    }
}

fn main() {
    let opts = options();
    let quick = quick_mode();
    print_system_header(&fig11_base(quick));
    let profiles = profile_cells(jobs_from_args(), fig11_jobs(quick));

    println!("\n== persist-latency attribution (fig11 grid) ==");
    println!(
        "{:<8}{:<10}{:>9}{:>10}{:>10}{:>10}  dominant",
        "config", "workload", "barriers", "mean", "p50", "p99"
    );
    for (config, workload, profile) in &profiles {
        let lat = profile.sorted_latencies();
        let count = lat.len() as u64;
        let mean = lat.iter().sum::<u64>().checked_div(count).unwrap_or(0);
        let dominant = profile.totals.dominant().map_or("-".to_string(), |(c, n)| {
            let total = profile.totals.total().max(1);
            format!("{c} ({}%)", n * 100 / total)
        });
        println!(
            "{:<8}{:<10}{:>9}{:>10}{:>10}{:>10}  {dominant}",
            config,
            workload,
            count,
            mean,
            report::percentile(&lat, 50),
            report::percentile(&lat, 99),
        );
    }

    if let Some(dir) = &opts.out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            die(&format!("cannot create {}: {e}", dir.display()));
        }
        for (config, workload, profile) in &profiles {
            let slug = cell_slug(config, workload);
            write(
                &dir.join(format!("flame-{slug}.folded")),
                &flame::profile_stacks(&format!("{config};{workload}"), profile),
            );
            let mut text = report::report_json(profile, opts.top).to_json();
            text.push('\n');
            write(&dir.join(format!("report-{slug}.json")), &text);
        }
        eprintln!(
            "# prof: {} flame graphs + reports -> {}",
            profiles.len(),
            dir.display()
        );
    }

    let mut text = bench_prof_doc(&profiles, quick).to_json();
    text.push('\n');
    write(&opts.bench_json, &text);
    eprintln!(
        "# prof: {} cells -> {}",
        profiles.len(),
        opts.bench_json.display()
    );
}
