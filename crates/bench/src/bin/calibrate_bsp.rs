//! BSP calibration sweep: every application proxy across the barrier
//! ladder, normalized to NP — a quick way to eyeball whether the proxies
//! still land in the paper's Figure 13/14 range after a model change.
//!
//! Run: `cargo run -p pbm-bench --release --bin calibrate_bsp -- \
//!           [ops] [--jobs=N]`

use pbm_bench::{Job, Runner};
use pbm_types::{BarrierKind, PersistencyKind, SystemConfig};
use pbm_workloads::apps::{self, AppParams};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ops: usize = args
        .iter()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(8000);
    let mut params = AppParams::paper();
    params.ops_per_thread = ops;
    let base = SystemConfig::micro48();
    let ladder: [(&str, BarrierKind, u64, bool); 7] = [
        ("NP", BarrierKind::NoPersistency, 10_000, true),
        ("LB300", BarrierKind::Lb, 300, true),
        ("LB1K", BarrierKind::Lb, 1000, true),
        ("LB10K", BarrierKind::Lb, 10_000, true),
        ("IDT", BarrierKind::LbIdt, 10_000, true),
        ("LB++", BarrierKind::LbPp, 10_000, true),
        ("NOLOG", BarrierKind::LbPp, 10_000, false),
    ];
    let mut cells: Vec<Job> = Vec::new();
    for prof in apps::PROFILES.iter() {
        let wl = apps::build(prof, &params);
        for (label, kind, size, logging) in ladder {
            let mut c = base.clone();
            c.persistency = PersistencyKind::BufferedStrictBulk;
            c.barrier = kind;
            c.bsp_epoch_size = size;
            c.logging = logging;
            cells.push((label.to_string(), prof.name.to_string(), c, wl.clone()));
        }
    }
    let runner = Runner::from_args("calibrate_bsp");
    let results = runner.run(cells);

    println!(
        "{:<9} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "app", "LB300", "LB1K", "LB10K", "IDT", "LB++", "NOLOG"
    );
    for chunk in results.chunks(ladder.len()) {
        let np_c = chunk[0].stats.cycles as f64;
        let row: Vec<f64> = chunk[1..]
            .iter()
            .map(|r| r.stats.cycles as f64 / np_c)
            .collect();
        println!(
            "{:<9} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>7.2}",
            chunk[0].workload, row[0], row[1], row[2], row[3], row[4], row[5]
        );
    }
    runner.finish();
}
