use pbm_bench::run_one;
use pbm_types::{BarrierKind, PersistencyKind, SystemConfig};
use pbm_workloads::apps::{self, AppParams};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ops: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8000);
    let mut params = AppParams::paper();
    params.ops_per_thread = ops;
    let base = SystemConfig::micro48();
    println!(
        "{:<9} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "app", "LB300", "LB1K", "LB10K", "IDT", "LB++", "NOLOG"
    );
    for prof in apps::PROFILES.iter() {
        let wl = apps::build(prof, &params);
        let mut np = base.clone();
        np.barrier = BarrierKind::NoPersistency;
        np.persistency = PersistencyKind::BufferedStrictBulk;
        let np_c = run_one(np, &wl).cycles as f64;
        let mut row = vec![];
        for (kind, size, logging) in [
            (BarrierKind::Lb, 300, true),
            (BarrierKind::Lb, 1000, true),
            (BarrierKind::Lb, 10_000, true),
            (BarrierKind::LbIdt, 10_000, true),
            (BarrierKind::LbPp, 10_000, true),
            (BarrierKind::LbPp, 10_000, false),
        ] {
            let mut c = base.clone();
            c.persistency = PersistencyKind::BufferedStrictBulk;
            c.barrier = kind;
            c.bsp_epoch_size = size;
            c.logging = logging;
            row.push(run_one(c, &wl).cycles as f64 / np_c);
        }
        println!(
            "{:<9} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>7.2}",
            prof.name, row[0], row[1], row[2], row[3], row[4], row[5]
        );
    }
}
