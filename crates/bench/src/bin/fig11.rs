//! Figure 11: BEP transaction throughput of the five micro-benchmarks
//! under LB / LB+IDT / LB+PF / LB++, normalized to LB.
//!
//! Paper shape: gmean ≈ 1.00 / 1.03 / 1.17 / 1.22.
//!
//! Run: `cargo run -p pbm-bench --release --bin fig11 [--quick] [--jobs=N]`

use pbm_bench::profiling::{fig11_base, fig11_jobs};
use pbm_bench::{gmean, print_flush_latency, print_system_header, print_table, quick_mode, Runner};

fn main() {
    print_system_header(&fig11_base(quick_mode()));
    let jobs = fig11_jobs(quick_mode());
    let runner = Runner::from_args("fig11");
    let results = runner.run(jobs);

    let mut rows = Vec::new();
    let mut per_kind: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for chunk in results.chunks(4) {
        let lb_tput = chunk[0].stats.throughput();
        let normalized: Vec<f64> = chunk
            .iter()
            .map(|r| r.stats.throughput() / lb_tput)
            .collect();
        for (k, v) in normalized.iter().enumerate() {
            per_kind[k].push(*v);
        }
        rows.push((chunk[0].workload.clone(), normalized));
    }
    rows.push((
        "gmean".to_string(),
        per_kind.iter().map(|v| gmean(v)).collect(),
    ));
    print_table(
        "Figure 11: normalized transaction throughput (BEP micro-benchmarks)",
        &["workload", "LB", "LB+IDT", "LB+PF", "LB++"],
        &rows,
    );
    print_flush_latency("epoch flush latency (cycles)", &results);
    println!("\npaper gmean: LB 1.00, LB+IDT 1.03, LB+PF 1.17, LB++ 1.22");
    runner.finish();
}
