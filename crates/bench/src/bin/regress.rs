//! CI perf-regression gate: diffs freshly produced `BENCH_prof.json` /
//! `BENCH_runner.json` against the committed baselines.
//!
//! Policy (see `pbm_prof::regress`): simulated-cycle metrics are
//! deterministic, so any divergence beyond `--tol-cycles-pct` (default
//! **0**) hard-fails — in either direction, golden-file style; wall-clock
//! is machine-dependent, so `BENCH_runner.json` drift only warns.
//!
//! Run: `cargo run -p pbm-bench --release --bin regress
//! [--baselines=DIR] [--current=DIR] [--tol-cycles-pct=N]
//! [--tol-wall-pct=N] [--json=PATH]`
//!
//! Exit status: 0 clean (warnings allowed), 1 regression, 2 usage/IO
//! error (including a missing `BENCH_prof.json` on either side — seed
//! baselines by copying a fresh run into `results/baselines/`).

use pbm_obs::json::{self, JsonValue};
use pbm_prof::regress::{compare_prof, compare_runner, render_table, verdict_json, Comparison};
use std::path::{Path, PathBuf};

struct Options {
    baselines: PathBuf,
    current: PathBuf,
    tol_cycles_pct: u64,
    tol_wall_pct: u64,
    json: Option<PathBuf>,
}

fn options() -> Options {
    let mut opts = Options {
        baselines: PathBuf::from("results/baselines"),
        current: PathBuf::from("."),
        tol_cycles_pct: 0,
        tol_wall_pct: 50,
        json: None,
    };
    for arg in std::env::args().skip(1) {
        if let Some(p) = arg.strip_prefix("--baselines=") {
            opts.baselines = PathBuf::from(p);
        } else if let Some(p) = arg.strip_prefix("--current=") {
            opts.current = PathBuf::from(p);
        } else if let Some(n) = arg.strip_prefix("--tol-cycles-pct=") {
            opts.tol_cycles_pct = parse_pct("--tol-cycles-pct", n);
        } else if let Some(n) = arg.strip_prefix("--tol-wall-pct=") {
            opts.tol_wall_pct = parse_pct("--tol-wall-pct", n);
        } else if let Some(p) = arg.strip_prefix("--json=") {
            opts.json = Some(PathBuf::from(p));
        } else {
            die(&format!("unknown argument {arg:?}"));
        }
    }
    opts
}

fn parse_pct(flag: &str, value: &str) -> u64 {
    value.parse().unwrap_or_else(|_| {
        die(&format!("{flag} takes a percentage, got {value:?}"));
    })
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn load(path: &Path) -> Option<JsonValue> {
    let text = std::fs::read_to_string(path).ok()?;
    match json::parse(&text) {
        Ok(doc) => Some(doc),
        Err(e) => die(&format!("{} is not valid JSON: {e}", path.display())),
    }
}

fn main() {
    let opts = options();
    let mut comparisons: Vec<Comparison> = Vec::new();

    // BENCH_prof.json is the gate's core document: both sides must exist.
    let prof_base = opts.baselines.join("BENCH_prof.json");
    let prof_cur = opts.current.join("BENCH_prof.json");
    match (load(&prof_base), load(&prof_cur)) {
        (Some(base), Some(cur)) => comparisons.push(compare_prof(&base, &cur, opts.tol_cycles_pct)),
        (None, _) => die(&format!(
            "no baseline {} — run `prof` and commit its BENCH_prof.json there",
            prof_base.display()
        )),
        (_, None) => die(&format!(
            "no current {} — run the `prof` binary first",
            prof_cur.display()
        )),
    }

    // BENCH_runner.json is advisory; compare when both sides exist.
    let runner_base = opts.baselines.join("BENCH_runner.json");
    let runner_cur = opts.current.join("BENCH_runner.json");
    match (load(&runner_base), load(&runner_cur)) {
        (Some(base), Some(cur)) => comparisons.push(compare_runner(&base, &cur, opts.tol_wall_pct)),
        (None, _) => eprintln!(
            "# regress: no {} baseline, skipping wall-clock check",
            runner_base.display()
        ),
        (_, None) => eprintln!(
            "# regress: no current {}, skipping wall-clock check",
            runner_cur.display()
        ),
    }

    print!("{}", render_table(&comparisons));
    if let Some(path) = &opts.json {
        let mut text = verdict_json(&comparisons).to_json();
        text.push('\n');
        if let Err(e) = std::fs::write(path, text) {
            die(&format!("cannot write {}: {e}", path.display()));
        }
    }
    if comparisons.iter().any(|c| !c.pass()) {
        std::process::exit(1);
    }
}
