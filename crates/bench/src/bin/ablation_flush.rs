//! Ablation A1 (§7 text): invalidating (`clflush`-style) vs
//! non-invalidating (`clwb`-style) epoch flushes on the BEP
//! micro-benchmarks.
//!
//! Paper claim: non-invalidating flushes are ~30% faster, because
//! invalidating flushes evict the working set and later accesses re-fetch
//! from NVRAM.
//!
//! Run: `cargo run -p pbm-bench --release --bin ablation_flush [--quick]
//!           [--jobs=N] [--trace-out=t.json] [--metrics-csv=m.csv]`

use pbm_bench::{gmean, print_system_header, print_table, quick_mode, Runner};
use pbm_types::{BarrierKind, FlushMode, PersistencyKind, SystemConfig};
use pbm_workloads::micro::{self, MicroParams};

fn main() {
    let mut params = MicroParams::paper();
    if quick_mode() {
        params.threads = 8;
        params.ops_per_thread = 16;
    }
    let mut base = SystemConfig::micro48();
    base.persistency = PersistencyKind::BufferedEpoch;
    base.barrier = BarrierKind::LbPp;
    if quick_mode() {
        base.cores = 8;
        base.llc_banks = 8;
        base.mesh_rows = 2;
    }
    print_system_header(&base);

    let mut jobs = Vec::new();
    for wl in micro::all(&params) {
        for (label, mode) in [
            ("clwb", FlushMode::NonInvalidating),
            ("clflush", FlushMode::Invalidating),
        ] {
            let mut cfg = base.clone();
            cfg.flush_mode = mode;
            jobs.push((label.to_string(), wl.name.to_string(), cfg, wl.clone()));
        }
    }
    let runner = Runner::from_args("ablation_flush");
    let results = runner.run(jobs);

    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for chunk in results.chunks(2) {
        let clwb = chunk[0].stats.throughput();
        let clflush = chunk[1].stats.throughput();
        let speedup = clwb / clflush;
        speedups.push(speedup);
        rows.push((chunk[0].workload.clone(), vec![clwb, clflush, speedup]));
    }
    rows.push((
        "gmean".to_string(),
        vec![f64::NAN, f64::NAN, gmean(&speedups)],
    ));
    print_table(
        "Ablation A1: clwb vs clflush flush mode (LB++, BEP micros)",
        &["workload", "clwb", "clflush", "speedup"],
        &rows,
    );
    println!("\npaper: non-invalidating flush ~30% faster (speedup ~1.3)");
    runner.finish();
}
