//! Ablation A2 (§7.2 text): the naive write-through implementation of
//! strict persistency vs the NP baseline.
//!
//! Paper claim: ~8x slower than NP, which is why the paper implements BSP
//! in bulk mode instead.
//!
//! Run: `cargo run -p pbm-bench --release --bin ablation_writethrough
//!           [--quick] [--jobs=N] [--trace-out=t.json] [--metrics-csv=m.csv]`

use pbm_bench::{gmean, print_system_header, print_table, quick_mode, Runner};
use pbm_types::{BarrierKind, PersistencyKind, SystemConfig};
use pbm_workloads::apps::{self, AppParams};

fn main() {
    let mut params = AppParams::paper();
    if quick_mode() {
        params.threads = 8;
        params.ops_per_thread = 400;
    } else {
        // Write-through runs ~8x longer; keep the matrix affordable.
        params.ops_per_thread = 2000;
    }
    let mut base = SystemConfig::micro48();
    if quick_mode() {
        base.cores = 8;
        base.llc_banks = 8;
        base.mesh_rows = 2;
    }
    print_system_header(&base);

    let mut jobs = Vec::new();
    for wl in apps::all(&params) {
        let mut np = base.clone();
        np.barrier = BarrierKind::NoPersistency;
        np.persistency = PersistencyKind::BufferedEpoch;
        jobs.push(("NP".to_string(), wl.name.to_string(), np, wl.clone()));
        let mut wt = base.clone();
        wt.barrier = BarrierKind::WriteThrough;
        wt.persistency = PersistencyKind::Strict;
        jobs.push(("WT".to_string(), wl.name.to_string(), wt, wl.clone()));
    }
    let runner = Runner::from_args("ablation_writethrough");
    let results = runner.run(jobs);

    let mut rows = Vec::new();
    let mut slowdowns = Vec::new();
    for chunk in results.chunks(2) {
        let np = chunk[0].stats.cycles as f64;
        let wt = chunk[1].stats.cycles as f64;
        let slowdown = wt / np;
        slowdowns.push(slowdown);
        rows.push((chunk[0].workload.clone(), vec![slowdown]));
    }
    rows.push(("gmean".to_string(), vec![gmean(&slowdowns)]));
    print_table(
        "Ablation A2: naive write-through strict persistency vs NP",
        &["workload", "slowdown"],
        &rows,
    );
    println!("\npaper: write-through is ~8x slower than NP");
    runner.finish();
}
