//! Parallel experiment runner: executes independent (workload, barrier,
//! config) grid cells on a scoped worker pool.
//!
//! Every figure and ablation binary builds its cell grid, hands it to a
//! [`Runner`], and prints from the returned results — which always come
//! back in grid order, regardless of worker count, so the tables are
//! byte-identical at any `--jobs=N`. Flags understood by every runner
//! binary:
//!
//! * `--jobs=N` — worker threads (default: available parallelism).
//! * `--trace-out=` / `--metrics-csv=` / `--metrics-interval=` — per-cell
//!   observability artifacts (see [`crate::obs::ObsOptions`]); each cell's
//!   outputs go to a distinct `-<config>-<workload>`-suffixed path so
//!   concurrent cells never interleave into one file.
//! * `--runner-json=<path>` / `--no-runner-json` — where (whether) to
//!   record wall-clock in `BENCH_runner.json` (see [`Runner::finish`]).

use crate::obs::{self, ObsOptions};
use crate::{run_one, Job, RunResult};
use pbm_obs::json::{self, JsonValue};
use pbm_types::Cycle;
use std::cell::Cell;
use std::path::PathBuf;
use std::thread;
use std::time::Instant;

/// Default destination of the wall-clock record, relative to the CWD.
pub const DEFAULT_RUNNER_JSON: &str = "BENCH_runner.json";

/// Schema tag stamped into `BENCH_runner.json`.
pub const RUNNER_JSON_SCHEMA: &str = "pbm-bench-runner/v1";

/// Parses `--jobs=N` from the process arguments; defaults to the host's
/// available parallelism. Exits with a diagnostic on a malformed value.
pub fn jobs_from_args() -> usize {
    for arg in std::env::args() {
        if let Some(n) = arg.strip_prefix("--jobs=") {
            match n.parse::<usize>() {
                Ok(v) if v > 0 => return v,
                _ => {
                    eprintln!("error: --jobs takes a positive worker count, got {n:?}");
                    std::process::exit(2);
                }
            }
        }
    }
    default_jobs()
}

/// The default worker count: the host's available parallelism.
pub fn default_jobs() -> usize {
    thread::available_parallelism().map_or(4, usize::from)
}

fn report_path_from_args() -> Option<PathBuf> {
    let mut path = Some(PathBuf::from(DEFAULT_RUNNER_JSON));
    for arg in std::env::args() {
        if arg == "--no-runner-json" {
            path = None;
        } else if let Some(p) = arg.strip_prefix("--runner-json=") {
            if p.is_empty() {
                eprintln!("error: --runner-json requires a file path");
                std::process::exit(2);
            }
            path = Some(PathBuf::from(p));
        }
    }
    path
}

/// A worker pool that runs experiment cells in parallel and records the
/// binary's wall-clock.
///
/// Results are collected in deterministic grid order (input order), so
/// callers can keep indexing result chunks exactly as with a sequential
/// loop. When observability flags are active, every cell gets its own
/// artifact set at a label-suffixed path.
#[derive(Debug)]
pub struct Runner {
    binary: String,
    jobs: usize,
    obs: ObsOptions,
    report: Option<PathBuf>,
    started: Instant,
    cells: Cell<usize>,
}

impl Runner {
    /// A runner configured from the process arguments (`--jobs=`, the
    /// observability flags, `--runner-json=`), recording under `binary`'s
    /// name in `BENCH_runner.json`.
    pub fn from_args(binary: &str) -> Self {
        let mut r = Self::new(binary, jobs_from_args(), ObsOptions::from_args());
        r.report = report_path_from_args();
        r
    }

    /// A runner with explicit worker count and observability options and
    /// no wall-clock record (library/test use).
    pub fn new(binary: &str, jobs: usize, obs: ObsOptions) -> Self {
        assert!(jobs > 0, "need at least one worker");
        Runner {
            binary: binary.to_string(),
            jobs,
            obs,
            report: None,
            started: Instant::now(),
            cells: Cell::new(0),
        }
    }

    /// The worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The observability options the runner applies per cell.
    pub fn obs(&self) -> &ObsOptions {
        &self.obs
    }

    /// Runs the cell grid on the worker pool; results in grid order.
    pub fn run(&self, cells: Vec<Job>) -> Vec<RunResult> {
        self.run_cells(cells, None)
    }

    /// Like [`Runner::run`], but with the metrics sampler attached at
    /// `interval`, so each result carries its sampled time series (used by
    /// `profile_bsp` for saturation sketches).
    pub fn run_sampled(&self, cells: Vec<Job>, interval: Cycle) -> Vec<RunResult> {
        self.run_cells(cells, Some(interval))
    }

    fn run_cells(&self, cells: Vec<Job>, sample: Option<Cycle>) -> Vec<RunResult> {
        self.cells.set(self.cells.get() + cells.len());
        let obs = &self.obs;
        pbm_check::parallel_map(self.jobs, cells, |(config, workload, cfg, wl)| {
            let t0 = Instant::now();
            let (stats, samples) = match sample {
                Some(interval) => {
                    let (stats, _, samples) =
                        obs::run_one_instrumented(cfg.clone(), &wl, false, Some(interval));
                    (stats, samples)
                }
                None => (run_one(cfg.clone(), &wl), Vec::new()),
            };
            if obs.is_active() {
                let cell_obs = obs.for_label(&format!("{config}-{workload}"));
                obs::capture_artifacts(&cell_obs, cfg, &wl, &format!("{workload}/{config}"));
            }
            RunResult {
                workload,
                config,
                stats,
                samples,
                wall: t0.elapsed(),
            }
        })
    }

    /// Records the binary's total wall-clock in `BENCH_runner.json`
    /// (merging with — and replacing — any previous entry for the same
    /// `(binary, jobs, quick)` identity) and notes it on stderr. No-op
    /// under `--no-runner-json` or when the runner was built without a
    /// report path.
    ///
    /// The file is a deterministic JSON document:
    ///
    /// ```json
    /// {"schema": "pbm-bench-runner/v1",
    ///  "runs": [{"binary": "fig11", "jobs": 8, "cells": 20,
    ///            "quick": true, "wall_ms": 1234}]}
    /// ```
    pub fn finish(&self) {
        let Some(path) = &self.report else {
            return;
        };
        let wall_ms = u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX);
        let entry = JsonValue::Object(vec![
            ("binary".into(), JsonValue::Str(self.binary.clone())),
            ("jobs".into(), JsonValue::Num(self.jobs as u64)),
            ("cells".into(), JsonValue::Num(self.cells.get() as u64)),
            ("quick".into(), JsonValue::Bool(crate::quick_mode())),
            ("wall_ms".into(), JsonValue::Num(wall_ms)),
        ]);
        let runs: Vec<JsonValue> = std::fs::read_to_string(path)
            .ok()
            .and_then(|text| json::parse(&text).ok())
            .and_then(|doc| {
                doc.get("runs")
                    .and_then(|r| r.as_array().map(<[_]>::to_vec))
            })
            .unwrap_or_default();
        let runs = merge_run_entry(runs, entry);
        let doc = JsonValue::Object(vec![
            ("schema".into(), JsonValue::Str(RUNNER_JSON_SCHEMA.into())),
            ("runs".into(), JsonValue::Array(runs)),
        ]);
        let mut text = doc.to_json();
        text.push('\n');
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(2);
        }
        eprintln!(
            "# runner: {} cells in {wall_ms} ms with {} jobs -> {}",
            self.cells.get(),
            self.jobs,
            path.display()
        );
    }
}

/// Merges a fresh run entry into the `runs` array, replacing only a
/// previous entry with the same `(binary, jobs, quick)` identity. A quick
/// CI smoke run and a full-scale run of the same binary therefore coexist
/// instead of clobbering each other's wall-clock record.
fn merge_run_entry(mut runs: Vec<JsonValue>, entry: JsonValue) -> Vec<JsonValue> {
    let key = |r: &JsonValue| {
        (
            r.get("binary")
                .and_then(JsonValue::as_str)
                .map(String::from),
            r.get("jobs").and_then(JsonValue::as_u64),
            r.get("quick").cloned(),
        )
    };
    let entry_key = key(&entry);
    runs.retain(|r| key(r) != entry_key);
    runs.push(entry);
    runs
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbm_sim::ProgramBuilder;
    use pbm_types::{Addr, SystemConfig};
    use pbm_workloads::Workload;

    fn tiny_grid(n: usize) -> Vec<Job> {
        let mut cfg = SystemConfig::small_test();
        cfg.cores = 1;
        let mut b = ProgramBuilder::new();
        b.store(Addr::new(0), 1).barrier();
        let wl = Workload {
            name: "t",
            programs: vec![b.build()],
            preloads: vec![],
        };
        (0..n)
            .map(|i| (format!("c{i}"), "t".to_string(), cfg.clone(), wl.clone()))
            .collect()
    }

    #[test]
    fn results_come_back_in_grid_order() {
        let runner = Runner::new("test", 3, ObsOptions::default());
        let results = runner.run(tiny_grid(7));
        assert_eq!(results.len(), 7);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.config, format!("c{i}"));
            assert_eq!(r.stats.stores, 1);
            assert!(r.samples.is_empty());
        }
    }

    #[test]
    fn sampled_runs_carry_the_series() {
        let runner = Runner::new("test", 2, ObsOptions::default());
        let results = runner.run_sampled(tiny_grid(2), Cycle::new(10));
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(!r.samples.is_empty(), "sampler attached");
        }
    }

    fn run_entry(binary: &str, jobs: u64, quick: bool, wall_ms: u64) -> JsonValue {
        JsonValue::Object(vec![
            ("binary".into(), JsonValue::Str(binary.into())),
            ("jobs".into(), JsonValue::Num(jobs)),
            ("cells".into(), JsonValue::Num(20)),
            ("quick".into(), JsonValue::Bool(quick)),
            ("wall_ms".into(), JsonValue::Num(wall_ms)),
        ])
    }

    #[test]
    fn merge_replaces_only_matching_identity() {
        let runs = vec![
            run_entry("fig11", 2, true, 100),
            run_entry("fig11", 2, false, 90_000),
            run_entry("fig11", 8, true, 40),
            run_entry("prof", 2, true, 200),
        ];
        let merged = merge_run_entry(runs, run_entry("fig11", 2, true, 150));
        assert_eq!(
            merged.len(),
            4,
            "only the same (binary, jobs, quick) entry is replaced"
        );
        let wall = |b: &str, j: u64, q: bool| {
            merged
                .iter()
                .find(|r| {
                    r.get("binary").and_then(JsonValue::as_str) == Some(b)
                        && r.get("jobs").and_then(JsonValue::as_u64) == Some(j)
                        && r.get("quick") == Some(&JsonValue::Bool(q))
                })
                .and_then(|r| r.get("wall_ms").and_then(JsonValue::as_u64))
        };
        assert_eq!(wall("fig11", 2, true), Some(150), "replaced");
        assert_eq!(
            wall("fig11", 2, false),
            Some(90_000),
            "full-scale run survives"
        );
        assert_eq!(wall("fig11", 8, true), Some(40), "other job count survives");
        assert_eq!(wall("prof", 2, true), Some(200), "other binary survives");
        assert_eq!(
            merged
                .last()
                .unwrap()
                .get("wall_ms")
                .and_then(JsonValue::as_u64),
            Some(150),
            "fresh entry appends at the end"
        );
    }

    #[test]
    fn worker_counts_agree_on_stats() {
        let one = Runner::new("test", 1, ObsOptions::default()).run(tiny_grid(5));
        let many = Runner::new("test", 8, ObsOptions::default()).run(tiny_grid(5));
        for (a, b) in one.iter().zip(&many) {
            assert_eq!(a.config, b.config);
            assert_eq!(a.stats, b.stats);
        }
    }
}
