//! Observability plumbing for the experiment binaries: `--trace-out=` /
//! `--metrics-csv=` flag parsing, instrumented runs, and artifact export.

use pbm_obs::{chrome, metrics_csv};
use pbm_sim::System;
use pbm_types::{Cycle, MetricSample, SimStats, SystemConfig, TraceEvent};
use pbm_workloads::Workload;
use std::path::{Path, PathBuf};

/// Default sampling cadence when `--metrics-csv` is given without
/// `--metrics-interval` (cycles).
pub const DEFAULT_METRICS_INTERVAL: u64 = 5_000;

/// Observability knobs shared by every figure binary.
///
/// * `--trace-out=<path>` — write a Chrome trace-event JSON (open in
///   Perfetto / `chrome://tracing`) for one representative cell.
/// * `--metrics-csv=<path>` — write the periodic metrics time-series.
/// * `--metrics-interval=<cycles>` — sampling cadence (default
///   [`DEFAULT_METRICS_INTERVAL`]).
#[derive(Debug, Clone, Default)]
pub struct ObsOptions {
    /// Destination for the Chrome trace-event JSON, if requested.
    pub trace_out: Option<PathBuf>,
    /// Destination for the metrics CSV, if requested.
    pub metrics_csv: Option<PathBuf>,
    /// Sampling cadence in cycles (used only when `metrics_csv` is set).
    pub metrics_interval: u64,
}

impl ObsOptions {
    /// Parses the observability flags out of the process arguments.
    /// Unknown arguments are ignored (the binaries have their own).
    pub fn from_args() -> Self {
        let mut opts = ObsOptions {
            metrics_interval: DEFAULT_METRICS_INTERVAL,
            ..ObsOptions::default()
        };
        for arg in std::env::args() {
            if let Some(p) = arg.strip_prefix("--trace-out=") {
                opts.trace_out = Some(require_path("--trace-out", p));
            } else if let Some(p) = arg.strip_prefix("--metrics-csv=") {
                opts.metrics_csv = Some(require_path("--metrics-csv", p));
            } else if let Some(n) = arg.strip_prefix("--metrics-interval=") {
                match n.parse() {
                    Ok(v) if v > 0 => opts.metrics_interval = v,
                    _ => die(&format!(
                        "--metrics-interval takes a positive cycle count, got {n:?}"
                    )),
                }
            }
        }
        opts
    }

    /// True if any artifact was requested.
    pub fn is_active(&self) -> bool {
        self.trace_out.is_some() || self.metrics_csv.is_some()
    }

    /// A copy whose output paths carry `-<label>` before the extension, so
    /// multi-config binaries can emit one artifact set per configuration.
    pub fn for_label(&self, label: &str) -> Self {
        let slug: String = label
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect();
        ObsOptions {
            trace_out: self.trace_out.as_deref().map(|p| suffixed(p, &slug)),
            metrics_csv: self.metrics_csv.as_deref().map(|p| suffixed(p, &slug)),
            metrics_interval: self.metrics_interval,
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn require_path(flag: &str, value: &str) -> PathBuf {
    if value.is_empty() {
        die(&format!("{flag} requires a file path"));
    }
    PathBuf::from(value)
}

fn suffixed(path: &Path, slug: &str) -> PathBuf {
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("out");
    let ext = path.extension().and_then(|s| s.to_str()).unwrap_or("json");
    path.with_file_name(format!("{stem}-{slug}.{ext}"))
}

/// Runs one workload with the requested instrumentation attached,
/// returning the statistics plus everything the observer collected.
pub fn run_one_instrumented(
    cfg: SystemConfig,
    wl: &Workload,
    tracing: bool,
    metrics_interval: Option<Cycle>,
) -> (SimStats, Vec<TraceEvent>, Vec<MetricSample>) {
    let mut sys = System::new(cfg, wl.programs.clone()).expect("valid config");
    wl.apply_preloads(&mut sys);
    if tracing {
        sys.enable_tracing();
    }
    if let Some(interval) = metrics_interval {
        sys.enable_metrics(interval);
    }
    let stats = sys.run();
    let events = sys.take_trace_events();
    let samples = sys.take_metric_samples();
    (stats, events, samples)
}

/// Runs `(cfg, wl)` once with the instrumentation `opts` request and
/// writes the artifacts. No-op (and no extra run) when `opts` is inactive.
/// Exits the process with a diagnostic if an artifact cannot be written.
pub fn capture_artifacts(opts: &ObsOptions, cfg: SystemConfig, wl: &Workload, label: &str) {
    if !opts.is_active() {
        return;
    }
    let interval = opts
        .metrics_csv
        .as_ref()
        .map(|_| Cycle::new(opts.metrics_interval));
    let (_, events, samples) = run_one_instrumented(cfg, wl, opts.trace_out.is_some(), interval);
    if let Some(path) = &opts.trace_out {
        let json = chrome::export_chrome_trace(&events, &samples);
        if let Err(e) = std::fs::write(path, json) {
            die(&format!("cannot write trace JSON {}: {e}", path.display()));
        }
        eprintln!(
            "# trace: {} events for {label} -> {}",
            events.len(),
            path.display()
        );
    }
    if let Some(path) = &opts.metrics_csv {
        if let Err(e) = std::fs::write(path, metrics_csv(&samples)) {
            die(&format!("cannot write metrics CSV {}: {e}", path.display()));
        }
        eprintln!(
            "# metrics: {} samples for {label} -> {}",
            samples.len(),
            path.display()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_suffixing() {
        let opts = ObsOptions {
            trace_out: Some(PathBuf::from("/tmp/trace.json")),
            metrics_csv: Some(PathBuf::from("/tmp/metrics.csv")),
            metrics_interval: 100,
        };
        let per = opts.for_label("LB++10K");
        assert_eq!(
            per.trace_out.unwrap(),
            PathBuf::from("/tmp/trace-lb__10k.json")
        );
        assert_eq!(
            per.metrics_csv.unwrap(),
            PathBuf::from("/tmp/metrics-lb__10k.csv")
        );
    }

    #[test]
    fn inactive_by_default() {
        assert!(!ObsOptions::default().is_active());
    }
}
