//! Cache data structures with epoch tagging for the `pbm` simulator.
//!
//! Implements the hardware extensions of §4.3 of the paper as plain,
//! timing-free data structures: set-associative arrays whose dirty lines
//! carry an `EpochID + CoreID` tag ([`pbm_types::EpochTag`]), an
//! epoch-aware victim-selection policy, the flush engine's per-epoch
//! set-bitmap bookkeeping (1 bit per 64 sets), an exact per-epoch line
//! index, and the LLC directory used to detect inter-thread conflicts.
//!
//! The cache *controllers* (what happens on a miss, when to flush, the
//! epoch flush handshake) live in `pbm-sim`; this crate only answers
//! questions like "which line should be evicted" and "which lines belong to
//! epoch E" — and answers them exactly the way the paper's hardware would.
//!
//! # Example
//!
//! ```
//! use pbm_cache::{CacheArray, CacheLine, LineState, VictimChoice};
//! use pbm_types::{CoreId, EpochId, EpochTag, LineAddr};
//!
//! let mut l1 = CacheArray::new(128, 4, 0); // 128 sets, 4-way, no bank shift
//! let tag = EpochTag::new(CoreId::new(0), EpochId::new(0));
//! l1.install(CacheLine::dirty(LineAddr::new(7), 42, Some(tag)));
//! assert_eq!(l1.lines_of_epoch(tag), vec![LineAddr::new(7)]);
//! assert!(matches!(l1.victim_for(LineAddr::new(7 + 128)), VictimChoice::Room));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod array;
mod bitmap;
mod directory;
mod index;
mod line;
mod set;

pub use array::{CacheArray, VictimChoice};
pub use bitmap::EpochBitmap;
pub use directory::{DirEntry, Directory};
pub use index::EpochIndex;
pub use line::{CacheLine, LineState};
pub use set::CacheSet;
