//! LLC-side coherence directory.
//!
//! The paper's system (Figure 2) is a directory-based inclusive-LLC
//! multicore; the epoch machinery needs coherence only to (a) route a
//! request to the L1 that owns a dirty copy and (b) know which core last
//! modified a line (the `CoreID` cache-tag extension). This directory
//! tracks a sharer bitmask and an optional exclusive owner per LLC-resident
//! line — the minimal state for those two jobs.

use pbm_types::{CoreId, LineAddr};
use std::collections::HashMap;

/// Directory state for one line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirEntry {
    /// Bitmask of cores that may hold a (shared, clean) copy.
    pub sharers: u64,
    /// Core holding the line exclusively (possibly dirty) in its L1.
    pub owner: Option<CoreId>,
}

impl DirEntry {
    /// True if no core holds the line.
    pub fn is_idle(&self) -> bool {
        self.sharers == 0 && self.owner.is_none()
    }

    /// Cores in the sharer mask.
    pub fn sharer_list(&self) -> Vec<CoreId> {
        let mut list = Vec::new();
        self.sharers_into(&mut list);
        list
    }

    /// Appends the cores in the sharer mask to `out`, in core order.
    pub fn sharers_into(&self, out: &mut Vec<CoreId>) {
        let mut mask = self.sharers;
        while mask != 0 {
            let i = mask.trailing_zeros();
            out.push(CoreId::new(i));
            mask &= mask - 1;
        }
    }
}

/// Per-bank coherence directory (inclusive with the bank's array: entries
/// exist only for lines the controller chooses to track).
#[derive(Debug, Clone, Default)]
pub struct Directory {
    entries: HashMap<LineAddr, DirEntry>,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// The entry for `line` (idle default if untracked).
    pub fn entry(&self, line: LineAddr) -> DirEntry {
        self.entries.get(&line).copied().unwrap_or_default()
    }

    /// Records that `core` obtained a shared copy.
    pub fn add_sharer(&mut self, line: LineAddr, core: CoreId) {
        let e = self.entries.entry(line).or_default();
        e.sharers |= 1 << core.index();
    }

    /// Records that `core` obtained the line exclusively (for a store):
    /// clears all sharers and sets the owner.
    pub fn set_owner(&mut self, line: LineAddr, core: CoreId) {
        let e = self.entries.entry(line).or_default();
        e.sharers = 1 << core.index();
        e.owner = Some(core);
    }

    /// The current exclusive owner, if any.
    pub fn owner(&self, line: LineAddr) -> Option<CoreId> {
        self.entries.get(&line).and_then(|e| e.owner)
    }

    /// Sharers other than `requestor` that must be invalidated for an
    /// exclusive request.
    pub fn invalidation_targets(&self, line: LineAddr, requestor: CoreId) -> Vec<CoreId> {
        let mut list = Vec::new();
        self.invalidation_targets_into(line, requestor, &mut list);
        list
    }

    /// Appends the invalidation targets to `out` (allocation-free variant
    /// of [`Directory::invalidation_targets`] for hot-path callers with a
    /// scratch buffer).
    pub fn invalidation_targets_into(
        &self,
        line: LineAddr,
        requestor: CoreId,
        out: &mut Vec<CoreId>,
    ) {
        let mut entry = self.entry(line);
        entry.sharers &= !(1u64 << requestor.index());
        entry.sharers_into(out);
    }

    /// Downgrades the owner to a sharer (a remote read hit a dirty copy:
    /// the owner writes back and keeps a shared copy).
    pub fn downgrade_owner(&mut self, line: LineAddr) {
        if let Some(e) = self.entries.get_mut(&line) {
            e.owner = None;
        }
    }

    /// Removes `core` from the line's sharers/owner (L1 eviction or
    /// invalidation).
    pub fn drop_core(&mut self, line: LineAddr, core: CoreId) {
        if let Some(e) = self.entries.get_mut(&line) {
            e.sharers &= !(1 << core.index());
            if e.owner == Some(core) {
                e.owner = None;
            }
            if e.is_idle() {
                self.entries.remove(&line);
            }
        }
    }

    /// Forgets the line entirely (LLC eviction; the controller must have
    /// recalled L1 copies first — asserted here).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if a core still holds the line.
    pub fn forget(&mut self, line: LineAddr) {
        if let Some(e) = self.entries.remove(&line) {
            debug_assert!(e.is_idle(), "forgetting {line} still held: {e:?}");
        }
    }

    /// Cores holding any copy (for inclusive-LLC eviction recalls).
    pub fn holders(&self, line: LineAddr) -> Vec<CoreId> {
        let mut list = Vec::new();
        self.holders_into(line, &mut list);
        list
    }

    /// Appends the cores holding any copy of `line` to `out`
    /// (allocation-free variant of [`Directory::holders`]).
    pub fn holders_into(&self, line: LineAddr, out: &mut Vec<CoreId>) {
        let e = self.entry(line);
        let before = out.len();
        e.sharers_into(out);
        if let Some(o) = e.owner {
            if !out[before..].contains(&o) {
                out.push(o);
            }
        }
    }

    /// Number of tracked lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no lines are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> CoreId {
        CoreId::new(i)
    }

    #[test]
    fn sharers_accumulate() {
        let mut d = Directory::new();
        d.add_sharer(LineAddr::new(1), c(0));
        d.add_sharer(LineAddr::new(1), c(3));
        assert_eq!(d.entry(LineAddr::new(1)).sharer_list(), vec![c(0), c(3)]);
        assert_eq!(d.owner(LineAddr::new(1)), None);
    }

    #[test]
    fn exclusive_clears_sharers() {
        let mut d = Directory::new();
        d.add_sharer(LineAddr::new(1), c(0));
        d.add_sharer(LineAddr::new(1), c(1));
        d.set_owner(LineAddr::new(1), c(2));
        assert_eq!(d.owner(LineAddr::new(1)), Some(c(2)));
        assert_eq!(d.entry(LineAddr::new(1)).sharer_list(), vec![c(2)]);
    }

    #[test]
    fn invalidation_targets_exclude_requestor() {
        let mut d = Directory::new();
        d.add_sharer(LineAddr::new(1), c(0));
        d.add_sharer(LineAddr::new(1), c(1));
        d.add_sharer(LineAddr::new(1), c(2));
        assert_eq!(
            d.invalidation_targets(LineAddr::new(1), c(1)),
            vec![c(0), c(2)]
        );
    }

    #[test]
    fn downgrade_keeps_sharer() {
        let mut d = Directory::new();
        d.set_owner(LineAddr::new(1), c(5));
        d.downgrade_owner(LineAddr::new(1));
        assert_eq!(d.owner(LineAddr::new(1)), None);
        assert_eq!(d.entry(LineAddr::new(1)).sharer_list(), vec![c(5)]);
    }

    #[test]
    fn drop_core_cleans_up() {
        let mut d = Directory::new();
        d.set_owner(LineAddr::new(1), c(5));
        d.drop_core(LineAddr::new(1), c(5));
        assert!(d.is_empty());
    }

    #[test]
    fn holders_union_owner_and_sharers() {
        let mut d = Directory::new();
        d.add_sharer(LineAddr::new(1), c(0));
        // Manually craft owner not in sharers (post-downgrade edge).
        d.set_owner(LineAddr::new(1), c(2));
        d.add_sharer(LineAddr::new(1), c(0));
        let mut h = d.holders(LineAddr::new(1));
        h.sort();
        assert_eq!(h, vec![c(0), c(2)]);
    }

    #[test]
    fn idle_entry_defaults() {
        let d = Directory::new();
        assert!(d.entry(LineAddr::new(9)).is_idle());
        assert_eq!(d.holders(LineAddr::new(9)), vec![]);
        assert_eq!(d.len(), 0);
    }
}
