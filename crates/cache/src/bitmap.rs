//! The flush engine's per-epoch set bitmap (§4.3).
//!
//! The paper's flush engine keeps, per in-flight epoch, a bitmap with one
//! bit per 64 cache sets (512 bytes for a 16-way 1 MiB bank): when an epoch
//! dirties a line, the bit covering that line's set is raised, and an epoch
//! flush only walks the covered set groups. This module models that
//! structure exactly, so the hardware cost (bits) and the scan savings can
//! be reported, even though the simulator enumerates lines through the
//! exact [`EpochIndex`](crate::EpochIndex).

/// Sets covered by one bitmap bit.
pub const SETS_PER_BIT: usize = 64;

/// Per-epoch bitmap over cache sets, one bit per [`SETS_PER_BIT`] sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochBitmap {
    bits: Vec<u64>,
    sets: usize,
}

impl EpochBitmap {
    /// Creates a bitmap for a cache with `sets` sets.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is zero.
    pub fn new(sets: usize) -> Self {
        assert!(sets > 0, "sets must be nonzero");
        let groups = sets.div_ceil(SETS_PER_BIT);
        EpochBitmap {
            bits: vec![0; groups.div_ceil(64)],
            sets,
        }
    }

    /// Raises the bit covering `set`.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    pub fn mark(&mut self, set: usize) {
        assert!(set < self.sets, "set {set} out of range");
        let group = set / SETS_PER_BIT;
        self.bits[group / 64] |= 1 << (group % 64);
    }

    /// True if the bit covering `set` is raised.
    pub fn covers(&self, set: usize) -> bool {
        let group = set / SETS_PER_BIT;
        self.bits[group / 64] & (1 << (group % 64)) != 0
    }

    /// Iterates the covered set-group ranges as `(first_set, last_set_excl)`.
    pub fn covered_ranges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let sets = self.sets;
        (0..sets.div_ceil(SETS_PER_BIT))
            .filter(move |g| self.bits[g / 64] & (1 << (g % 64)) != 0)
            .map(move |g| (g * SETS_PER_BIT, ((g + 1) * SETS_PER_BIT).min(sets)))
    }

    /// Number of sets a flush scan must walk (covered groups only).
    pub fn scan_sets(&self) -> usize {
        self.covered_ranges().map(|(a, b)| b - a).sum()
    }

    /// Clears all bits (epoch flushed).
    pub fn clear(&mut self) {
        self.bits.fill(0);
    }

    /// Storage cost of this bitmap in bits (the §4.3 hardware overhead).
    pub fn storage_bits(&self) -> usize {
        self.sets.div_ceil(SETS_PER_BIT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_llc_bank_overhead() {
        // 16-way 1 MiB bank = 1024 sets -> 16 bits per epoch bitmap; the
        // paper's quoted 512 B covers the full bookkeeping of 8 epochs x
        // multiple structures; per-bitmap cost must be 1024/64 bits.
        let bm = EpochBitmap::new(1024);
        assert_eq!(bm.storage_bits(), 16);
    }

    #[test]
    fn mark_and_cover() {
        let mut bm = EpochBitmap::new(256);
        assert!(!bm.covers(0));
        bm.mark(5);
        assert!(bm.covers(0), "bit covers the whole 64-set group");
        assert!(bm.covers(63));
        assert!(!bm.covers(64));
        bm.mark(200);
        assert!(bm.covers(200));
    }

    #[test]
    fn covered_ranges_and_scan() {
        let mut bm = EpochBitmap::new(256);
        bm.mark(0);
        bm.mark(130);
        let ranges: Vec<_> = bm.covered_ranges().collect();
        assert_eq!(ranges, vec![(0, 64), (128, 192)]);
        assert_eq!(bm.scan_sets(), 128);
    }

    #[test]
    fn ragged_tail_group() {
        let mut bm = EpochBitmap::new(100); // groups: [0,64), [64,100)
        bm.mark(99);
        assert_eq!(bm.covered_ranges().collect::<Vec<_>>(), vec![(64, 100)]);
        assert_eq!(bm.scan_sets(), 36);
        assert_eq!(bm.storage_bits(), 2);
    }

    #[test]
    fn clear_resets() {
        let mut bm = EpochBitmap::new(128);
        bm.mark(1);
        bm.clear();
        assert_eq!(bm.scan_sets(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_mark_panics() {
        EpochBitmap::new(64).mark(64);
    }
}
