//! Exact per-epoch line index.

use pbm_types::{EpochTag, LineAddr};
use std::collections::{BTreeSet, HashMap};

/// Tracks, per epoch, exactly which resident lines it dirtied.
///
/// The paper's flush engine keeps a per-epoch bitmap over cache sets
/// (modelled in [`EpochBitmap`](crate::EpochBitmap)) and scans the marked
/// sets when flushing. The simulator uses this exact index for the actual
/// line enumeration — same answer as the hardware's scan, without the
/// simulation cost of walking sets. Lines are kept sorted so flush order is
/// deterministic.
#[derive(Debug, Clone, Default)]
pub struct EpochIndex {
    by_epoch: HashMap<EpochTag, BTreeSet<LineAddr>>,
}

impl EpochIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `tag` dirtied `line`.
    pub fn add(&mut self, tag: EpochTag, line: LineAddr) {
        self.by_epoch.entry(tag).or_default().insert(line);
    }

    /// Removes `line` from `tag` (written back or retagged). No-op if
    /// absent.
    pub fn remove(&mut self, tag: EpochTag, line: LineAddr) {
        if let Some(set) = self.by_epoch.get_mut(&tag) {
            set.remove(&line);
            if set.is_empty() {
                self.by_epoch.remove(&tag);
            }
        }
    }

    /// The lines currently attributed to `tag`, in address order.
    pub fn lines(&self, tag: EpochTag) -> Vec<LineAddr> {
        self.by_epoch
            .get(&tag)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Appends the lines attributed to `tag` to `out`, in address order.
    /// Allocation-free when `out` has capacity — the flush hot path reuses
    /// one scratch buffer across epochs instead of building a fresh `Vec`
    /// per enumeration.
    pub fn lines_into(&self, tag: EpochTag, out: &mut Vec<LineAddr>) {
        if let Some(set) = self.by_epoch.get(&tag) {
            out.extend(set.iter().copied());
        }
    }

    /// Number of lines attributed to `tag`.
    pub fn len(&self, tag: EpochTag) -> usize {
        self.by_epoch.get(&tag).map_or(0, BTreeSet::len)
    }

    /// True if no line is attributed to `tag`.
    pub fn is_empty(&self, tag: EpochTag) -> bool {
        self.len(tag) == 0
    }

    /// Drops all bookkeeping for `tag` (epoch fully persisted).
    pub fn clear_epoch(&mut self, tag: EpochTag) {
        self.by_epoch.remove(&tag);
    }

    /// Moves every line of `from` to `to` — used by deadlock-avoidance
    /// epoch splitting, where the completed prefix keeps the old id and the
    /// remainder is retagged (§3.3). Returns how many lines moved.
    pub fn retag(&mut self, from: EpochTag, to: EpochTag) -> usize {
        match self.by_epoch.remove(&from) {
            None => 0,
            Some(lines) => {
                let n = lines.len();
                self.by_epoch.entry(to).or_default().extend(lines);
                n
            }
        }
    }

    /// All epochs with at least one resident line.
    pub fn epochs(&self) -> impl Iterator<Item = EpochTag> + '_ {
        self.by_epoch.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbm_types::{CoreId, EpochId};

    fn tag(c: u32, e: u64) -> EpochTag {
        EpochTag::new(CoreId::new(c), EpochId::new(e))
    }

    #[test]
    fn add_remove_lines() {
        let mut ix = EpochIndex::new();
        ix.add(tag(0, 0), LineAddr::new(3));
        ix.add(tag(0, 0), LineAddr::new(1));
        ix.add(tag(0, 1), LineAddr::new(9));
        assert_eq!(
            ix.lines(tag(0, 0)),
            vec![LineAddr::new(1), LineAddr::new(3)]
        );
        assert_eq!(ix.len(tag(0, 0)), 2);
        ix.remove(tag(0, 0), LineAddr::new(1));
        assert_eq!(ix.lines(tag(0, 0)), vec![LineAddr::new(3)]);
        ix.remove(tag(0, 0), LineAddr::new(3));
        assert!(ix.is_empty(tag(0, 0)));
        assert_eq!(ix.len(tag(0, 1)), 1);
    }

    #[test]
    fn duplicate_add_is_idempotent() {
        let mut ix = EpochIndex::new();
        ix.add(tag(0, 0), LineAddr::new(5));
        ix.add(tag(0, 0), LineAddr::new(5));
        assert_eq!(ix.len(tag(0, 0)), 1);
    }

    #[test]
    fn clear_epoch() {
        let mut ix = EpochIndex::new();
        ix.add(tag(2, 7), LineAddr::new(1));
        ix.clear_epoch(tag(2, 7));
        assert!(ix.is_empty(tag(2, 7)));
        assert_eq!(ix.epochs().count(), 0);
    }

    #[test]
    fn retag_moves_all_lines() {
        let mut ix = EpochIndex::new();
        ix.add(tag(0, 5), LineAddr::new(1));
        ix.add(tag(0, 5), LineAddr::new(2));
        ix.add(tag(0, 6), LineAddr::new(3));
        assert_eq!(ix.retag(tag(0, 5), tag(0, 6)), 2);
        assert!(ix.is_empty(tag(0, 5)));
        assert_eq!(ix.len(tag(0, 6)), 3);
        assert_eq!(ix.retag(tag(0, 5), tag(0, 6)), 0, "empty source is a no-op");
    }

    #[test]
    fn lines_are_sorted_for_determinism() {
        let mut ix = EpochIndex::new();
        for n in [9u64, 2, 7, 1] {
            ix.add(tag(0, 0), LineAddr::new(n));
        }
        let lines = ix.lines(tag(0, 0));
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted);
    }
}
