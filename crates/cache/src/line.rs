//! A single cache line with the paper's epoch-tag extension.

use pbm_nvram::LineValue;
use pbm_types::{EpochTag, LineAddr};

/// Validity/dirtiness of a resident cache line.
///
/// `Invalid` is represented by absence from the [`CacheSet`](crate::CacheSet)
/// rather than a state, so a resident line is always `Clean` or `Dirty`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineState {
    /// Matches memory; can be silently dropped.
    Clean,
    /// Modified; must be written back before being dropped.
    Dirty,
}

/// A resident cache line.
///
/// Per §4.3, dirty lines in a persistency-enforcing configuration carry an
/// [`EpochTag`] (`CoreID` + `EpochID`) identifying the epoch that last
/// modified them; clean lines never carry a tag. The `value` is the modelled
/// 64-byte content (see [`pbm_nvram::LineValue`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLine {
    /// The line's address.
    pub addr: LineAddr,
    /// Clean or dirty.
    pub state: LineState,
    /// Modelled content token.
    pub value: LineValue,
    /// Epoch that last modified the line (dirty lines under a lazy barrier).
    pub tag: Option<EpochTag>,
}

impl CacheLine {
    /// A clean line holding `value`.
    pub fn clean(addr: LineAddr, value: LineValue) -> Self {
        CacheLine {
            addr,
            state: LineState::Clean,
            value,
            tag: None,
        }
    }

    /// A dirty line holding `value`, optionally epoch-tagged.
    pub fn dirty(addr: LineAddr, value: LineValue, tag: Option<EpochTag>) -> Self {
        CacheLine {
            addr,
            state: LineState::Dirty,
            value,
            tag,
        }
    }

    /// True if the line is dirty.
    pub fn is_dirty(&self) -> bool {
        self.state == LineState::Dirty
    }

    /// True if the line is dirty and belongs to an un-persisted epoch.
    pub fn is_epoch_tagged(&self) -> bool {
        self.is_dirty() && self.tag.is_some()
    }

    /// Marks the line written back: clean, tag dropped. The value stays
    /// (non-invalidating `clwb`-style flush keeps the line resident).
    pub fn mark_written_back(&mut self) {
        self.state = LineState::Clean;
        self.tag = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbm_types::{CoreId, EpochId};

    fn tag() -> EpochTag {
        EpochTag::new(CoreId::new(1), EpochId::new(2))
    }

    #[test]
    fn constructors() {
        let c = CacheLine::clean(LineAddr::new(1), 5);
        assert!(!c.is_dirty());
        assert!(!c.is_epoch_tagged());
        assert_eq!(c.tag, None);

        let d = CacheLine::dirty(LineAddr::new(1), 5, Some(tag()));
        assert!(d.is_dirty());
        assert!(d.is_epoch_tagged());
    }

    #[test]
    fn untagged_dirty_is_not_epoch_tagged() {
        let d = CacheLine::dirty(LineAddr::new(1), 5, None);
        assert!(d.is_dirty());
        assert!(!d.is_epoch_tagged());
    }

    #[test]
    fn writeback_cleans_and_unties() {
        let mut d = CacheLine::dirty(LineAddr::new(1), 5, Some(tag()));
        d.mark_written_back();
        assert_eq!(d.state, LineState::Clean);
        assert_eq!(d.tag, None);
        assert_eq!(d.value, 5, "clwb keeps the data resident");
    }
}
