//! One associative set with true-LRU replacement.

use crate::line::CacheLine;
use pbm_types::LineAddr;

/// A cache set: up to `assoc` resident lines ordered by recency.
///
/// Index 0 is the most-recently-used way. True LRU is cheap at the
/// associativities in Table 1 (4 and 16 ways) and deterministic, which the
/// simulator requires.
#[derive(Debug, Clone, Default)]
pub struct CacheSet {
    /// Lines ordered MRU-first.
    ways: Vec<CacheLine>,
}

impl CacheSet {
    /// Creates an empty set (capacity enforced by [`CacheArray`]).
    ///
    /// [`CacheArray`]: crate::CacheArray
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.ways.len()
    }

    /// True if no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.ways.is_empty()
    }

    /// Looks up a line without changing recency.
    pub fn peek(&self, addr: LineAddr) -> Option<&CacheLine> {
        self.ways.iter().find(|l| l.addr == addr)
    }

    /// Mutable lookup without changing recency.
    pub fn peek_mut(&mut self, addr: LineAddr) -> Option<&mut CacheLine> {
        self.ways.iter_mut().find(|l| l.addr == addr)
    }

    /// Looks up a line and promotes it to MRU on hit.
    pub fn touch(&mut self, addr: LineAddr) -> Option<&mut CacheLine> {
        let pos = self.ways.iter().position(|l| l.addr == addr)?;
        let line = self.ways.remove(pos);
        self.ways.insert(0, line);
        Some(&mut self.ways[0])
    }

    /// Inserts a line at MRU. The caller must have made room (asserted in
    /// debug builds by [`CacheArray`](crate::CacheArray)).
    pub fn insert_mru(&mut self, line: CacheLine) {
        debug_assert!(
            self.peek(line.addr).is_none(),
            "line {} already resident",
            line.addr
        );
        self.ways.insert(0, line);
    }

    /// Removes and returns a line.
    pub fn remove(&mut self, addr: LineAddr) -> Option<CacheLine> {
        let pos = self.ways.iter().position(|l| l.addr == addr)?;
        Some(self.ways.remove(pos))
    }

    /// Iterates lines MRU-first.
    pub fn iter(&self) -> impl Iterator<Item = &CacheLine> {
        self.ways.iter()
    }

    /// Iterates lines LRU-first (eviction-candidate order).
    pub fn iter_lru(&self) -> impl Iterator<Item = &CacheLine> {
        self.ways.iter().rev()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> CacheLine {
        CacheLine::clean(LineAddr::new(n), n)
    }

    #[test]
    fn insert_peek_remove() {
        let mut s = CacheSet::new();
        assert!(s.is_empty());
        s.insert_mru(line(1));
        s.insert_mru(line(2));
        assert_eq!(s.len(), 2);
        assert_eq!(s.peek(LineAddr::new(1)).unwrap().value, 1);
        assert_eq!(s.remove(LineAddr::new(1)).unwrap().value, 1);
        assert_eq!(s.len(), 1);
        assert!(s.remove(LineAddr::new(1)).is_none());
    }

    #[test]
    fn touch_promotes_to_mru() {
        let mut s = CacheSet::new();
        s.insert_mru(line(1));
        s.insert_mru(line(2));
        s.insert_mru(line(3)); // order: 3,2,1
        assert!(s.touch(LineAddr::new(1)).is_some()); // order: 1,3,2
        let order: Vec<u64> = s.iter().map(|l| l.addr.as_u64()).collect();
        assert_eq!(order, vec![1, 3, 2]);
        let lru: Vec<u64> = s.iter_lru().map(|l| l.addr.as_u64()).collect();
        assert_eq!(lru, vec![2, 3, 1]);
    }

    #[test]
    fn touch_miss_returns_none() {
        let mut s = CacheSet::new();
        s.insert_mru(line(1));
        assert!(s.touch(LineAddr::new(9)).is_none());
        // Order unchanged.
        assert_eq!(s.iter().next().unwrap().addr, LineAddr::new(1));
    }

    #[test]
    fn peek_does_not_promote() {
        let mut s = CacheSet::new();
        s.insert_mru(line(1));
        s.insert_mru(line(2));
        let _ = s.peek(LineAddr::new(1));
        let order: Vec<u64> = s.iter().map(|l| l.addr.as_u64()).collect();
        assert_eq!(order, vec![2, 1]);
    }
}
