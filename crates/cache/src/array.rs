//! Set-associative cache array with epoch-aware victim selection.

use crate::index::EpochIndex;
use crate::line::{CacheLine, LineState};
use crate::set::CacheSet;
use pbm_nvram::LineValue;
use pbm_types::{EpochTag, LineAddr};

/// What [`CacheArray::victim_for`] decided about making room for a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VictimChoice {
    /// The line is already resident or the set has a free way.
    Room,
    /// Evict this line (clean, or dirty with no un-persisted epoch tag).
    /// The caller removes it and writes it back if dirty.
    Evict(CacheLine),
    /// Every candidate belongs to an un-persisted epoch; the best victim is
    /// this line of this epoch. The caller must flush epochs up to and
    /// including `tag` before retrying (LB's "natural replacement" online
    /// persist path).
    EpochBlocked {
        /// Epoch owning the best victim.
        tag: EpochTag,
        /// The victim line.
        line: LineAddr,
    },
}

/// A set-associative cache array with the §4.3 tag extensions.
///
/// Timing-free: controllers in `pbm-sim` decide *when* things happen; the
/// array answers *what* is resident, what to evict, and which lines belong
/// to which epoch (via an internal [`EpochIndex`] kept exactly in sync).
#[derive(Debug, Clone)]
pub struct CacheArray {
    sets: Vec<CacheSet>,
    assoc: usize,
    set_shift: u32,
    index: EpochIndex,
}

impl CacheArray {
    /// Creates an array with `sets` sets of `assoc` ways. `set_shift` is
    /// the number of low line-address bits consumed by bank interleaving
    /// before set selection (0 for an L1, log2(banks) for an LLC bank).
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `assoc` is zero.
    pub fn new(sets: usize, assoc: usize, set_shift: u32) -> Self {
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        assert!(assoc > 0, "assoc must be nonzero");
        CacheArray {
            sets: vec![CacheSet::new(); sets],
            assoc,
            set_shift,
            index: EpochIndex::new(),
        }
    }

    /// The set index of a line.
    pub fn set_index(&self, line: LineAddr) -> usize {
        ((line.as_u64() >> self.set_shift) as usize) & (self.sets.len() - 1)
    }

    /// Associativity.
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// True if the line is resident.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.peek(line).is_some()
    }

    /// Looks up without updating recency.
    pub fn peek(&self, line: LineAddr) -> Option<&CacheLine> {
        self.sets[self.set_index(line)].peek(line)
    }

    /// Looks up and promotes to MRU (a demand access).
    pub fn access(&mut self, line: LineAddr) -> Option<&CacheLine> {
        let set = self.set_index(line);
        self.sets[set].touch(line).map(|l| &*l)
    }

    /// Decides how to make room for `line`.
    ///
    /// Preference order (LRU within each class): free way / already
    /// resident, then clean lines (silent drop), then dirty lines with no
    /// epoch tag (plain writeback), then — only if every way is pinned by
    /// an un-persisted epoch — [`VictimChoice::EpochBlocked`] naming the
    /// LRU epoch-tagged victim.
    pub fn victim_for(&self, line: LineAddr) -> VictimChoice {
        let set = &self.sets[self.set_index(line)];
        if set.peek(line).is_some() || set.len() < self.assoc {
            return VictimChoice::Room;
        }
        let mut best_clean = None;
        let mut best_dirty = None;
        let mut best_tagged = None;
        for cand in set.iter_lru() {
            match (cand.state, cand.tag) {
                (LineState::Clean, _) => {
                    if best_clean.is_none() {
                        best_clean = Some(*cand);
                    }
                }
                (LineState::Dirty, None) => {
                    if best_dirty.is_none() {
                        best_dirty = Some(*cand);
                    }
                }
                (LineState::Dirty, Some(tag)) => {
                    if best_tagged.is_none() {
                        best_tagged = Some((tag, cand.addr));
                    }
                }
            }
        }
        if let Some(v) = best_clean {
            VictimChoice::Evict(v)
        } else if let Some(v) = best_dirty {
            VictimChoice::Evict(v)
        } else {
            let (tag, line) = best_tagged.expect("full set has a victim");
            VictimChoice::EpochBlocked { tag, line }
        }
    }

    /// Installs a line. The caller must have made room.
    ///
    /// # Panics
    ///
    /// Panics if the set is full or the line is already resident.
    pub fn install(&mut self, line: CacheLine) {
        let set = self.set_index(line.addr);
        assert!(
            self.sets[set].len() < self.assoc,
            "install into full set {set}"
        );
        if let Some(tag) = line.tag {
            self.index.add(tag, line.addr);
        }
        self.sets[set].insert_mru(line);
    }

    /// Removes a line (eviction or invalidating flush), returning it.
    pub fn remove(&mut self, line: LineAddr) -> Option<CacheLine> {
        let set = self.set_index(line);
        let removed = self.sets[set].remove(line)?;
        if let Some(tag) = removed.tag {
            self.index.remove(tag, line);
        }
        Some(removed)
    }

    /// Applies a store to a resident line: marks it dirty with `tag` and
    /// the new value, promotes it to MRU, and fixes the epoch index.
    /// Returns `false` if the line is not resident.
    pub fn write(&mut self, line: LineAddr, value: LineValue, tag: Option<EpochTag>) -> bool {
        let set = self.set_index(line);
        let Some(l) = self.sets[set].touch(line) else {
            return false;
        };
        let old_tag = l.tag;
        l.state = LineState::Dirty;
        l.value = value;
        l.tag = tag;
        if old_tag != tag {
            if let Some(old) = old_tag {
                self.index.remove(old, line);
            }
            if let Some(new) = tag {
                self.index.add(new, line);
            }
        }
        true
    }

    /// Marks a line written back: clean, tag dropped, data kept (`clwb`).
    /// Returns the value written back, or `None` if not resident or clean.
    pub fn mark_written_back(&mut self, line: LineAddr) -> Option<LineValue> {
        let set = self.set_index(line);
        let l = self.sets[set].peek_mut(line)?;
        if l.state != LineState::Dirty {
            return None;
        }
        let value = l.value;
        if let Some(tag) = l.tag {
            self.index.remove(tag, line);
        }
        l.mark_written_back();
        Some(value)
    }

    /// Lines currently attributed to `tag`, in address order.
    pub fn lines_of_epoch(&self, tag: EpochTag) -> Vec<LineAddr> {
        self.index.lines(tag)
    }

    /// Appends the lines attributed to `tag` to `out`, in address order.
    /// The allocation-free variant of [`CacheArray::lines_of_epoch`] for
    /// callers that reuse a scratch buffer across enumerations.
    pub fn lines_of_epoch_into(&self, tag: EpochTag, out: &mut Vec<LineAddr>) {
        self.index.lines_into(tag, out);
    }

    /// Number of resident lines attributed to `tag`.
    pub fn epoch_len(&self, tag: EpochTag) -> usize {
        self.index.len(tag)
    }

    /// Retags every resident line of `from` to `to` (epoch splitting,
    /// §3.3). Returns how many lines were retagged.
    pub fn retag_epoch(&mut self, from: EpochTag, to: EpochTag) -> usize {
        let lines = self.index.lines(from);
        for &line in &lines {
            let set = self.set_index(line);
            if let Some(l) = self.sets[set].peek_mut(line) {
                debug_assert_eq!(l.tag, Some(from));
                l.tag = Some(to);
            }
        }
        self.index.retag(from, to)
    }

    /// All dirty resident lines, in deterministic (set, recency) order —
    /// used for end-of-run drains.
    pub fn dirty_lines(&self) -> Vec<LineAddr> {
        self.sets
            .iter()
            .flat_map(|s| s.iter().filter(|l| l.is_dirty()).map(|l| l.addr))
            .collect()
    }

    /// Total resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(CacheSet::len).sum()
    }

    /// True if nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Epochs with at least one resident line.
    pub fn resident_epochs(&self) -> Vec<EpochTag> {
        self.index.epochs().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbm_types::{CoreId, EpochId};

    fn tag(c: u32, e: u64) -> EpochTag {
        EpochTag::new(CoreId::new(c), EpochId::new(e))
    }

    /// 2 sets, 2 ways: lines 0,2,4.. map to set 0; 1,3,5.. to set 1.
    fn tiny() -> CacheArray {
        CacheArray::new(2, 2, 0)
    }

    #[test]
    fn set_mapping_with_shift() {
        let a = CacheArray::new(4, 1, 2);
        assert_eq!(a.set_index(LineAddr::new(0)), 0);
        assert_eq!(a.set_index(LineAddr::new(3)), 0, "bank bits ignored");
        assert_eq!(a.set_index(LineAddr::new(4)), 1);
    }

    #[test]
    fn fill_then_room_decision() {
        let mut a = tiny();
        assert_eq!(a.victim_for(LineAddr::new(0)), VictimChoice::Room);
        a.install(CacheLine::clean(LineAddr::new(0), 0));
        assert_eq!(
            a.victim_for(LineAddr::new(0)),
            VictimChoice::Room,
            "already resident"
        );
        a.install(CacheLine::clean(LineAddr::new(2), 0));
        // Set 0 now full; LRU is line 0.
        match a.victim_for(LineAddr::new(4)) {
            VictimChoice::Evict(v) => assert_eq!(v.addr, LineAddr::new(0)),
            other => panic!("expected eviction, got {other:?}"),
        }
    }

    #[test]
    fn victim_prefers_clean_over_dirty() {
        let mut a = tiny();
        a.install(CacheLine::dirty(LineAddr::new(0), 1, None));
        a.install(CacheLine::clean(LineAddr::new(2), 2));
        // Clean line 2 is MRU but still preferred over dirty line 0.
        match a.victim_for(LineAddr::new(4)) {
            VictimChoice::Evict(v) => assert_eq!(v.addr, LineAddr::new(2)),
            other => panic!("expected clean eviction, got {other:?}"),
        }
    }

    #[test]
    fn victim_prefers_untagged_dirty_over_epoch_tagged() {
        let mut a = tiny();
        a.install(CacheLine::dirty(LineAddr::new(0), 1, Some(tag(0, 0))));
        a.install(CacheLine::dirty(LineAddr::new(2), 2, None));
        match a.victim_for(LineAddr::new(4)) {
            VictimChoice::Evict(v) => assert_eq!(v.addr, LineAddr::new(2)),
            other => panic!("expected untagged dirty eviction, got {other:?}"),
        }
    }

    #[test]
    fn all_tagged_set_blocks_on_lru_epoch() {
        let mut a = tiny();
        a.install(CacheLine::dirty(LineAddr::new(0), 1, Some(tag(0, 0))));
        a.install(CacheLine::dirty(LineAddr::new(2), 2, Some(tag(0, 1))));
        assert_eq!(
            a.victim_for(LineAddr::new(4)),
            VictimChoice::EpochBlocked {
                tag: tag(0, 0),
                line: LineAddr::new(0)
            },
            "LRU (line 0, epoch 0) is the blocking victim"
        );
    }

    #[test]
    fn write_retags_and_index_follows() {
        let mut a = tiny();
        a.install(CacheLine::clean(LineAddr::new(0), 0));
        assert!(a.write(LineAddr::new(0), 42, Some(tag(0, 3))));
        assert_eq!(a.lines_of_epoch(tag(0, 3)), vec![LineAddr::new(0)]);
        // Re-write in a later epoch moves the index entry.
        assert!(a.write(LineAddr::new(0), 43, Some(tag(0, 4))));
        assert!(a.lines_of_epoch(tag(0, 3)).is_empty());
        assert_eq!(a.lines_of_epoch(tag(0, 4)), vec![LineAddr::new(0)]);
        assert!(!a.write(LineAddr::new(9), 1, None), "miss returns false");
    }

    #[test]
    fn writeback_clears_tag_and_keeps_data() {
        let mut a = tiny();
        a.install(CacheLine::dirty(LineAddr::new(0), 7, Some(tag(1, 1))));
        assert_eq!(a.mark_written_back(LineAddr::new(0)), Some(7));
        assert!(a.lines_of_epoch(tag(1, 1)).is_empty());
        let l = a.peek(LineAddr::new(0)).unwrap();
        assert_eq!(l.state, LineState::Clean);
        assert_eq!(l.value, 7);
        assert_eq!(a.mark_written_back(LineAddr::new(0)), None, "already clean");
    }

    #[test]
    fn remove_updates_index() {
        let mut a = tiny();
        a.install(CacheLine::dirty(LineAddr::new(0), 7, Some(tag(1, 1))));
        let removed = a.remove(LineAddr::new(0)).unwrap();
        assert_eq!(removed.value, 7);
        assert!(a.lines_of_epoch(tag(1, 1)).is_empty());
        assert!(a.is_empty());
    }

    #[test]
    fn retag_epoch_rewrites_tags() {
        let mut a = tiny();
        a.install(CacheLine::dirty(LineAddr::new(0), 1, Some(tag(0, 5))));
        a.install(CacheLine::dirty(LineAddr::new(1), 2, Some(tag(0, 5))));
        assert_eq!(a.retag_epoch(tag(0, 5), tag(0, 6)), 2);
        assert_eq!(a.peek(LineAddr::new(0)).unwrap().tag, Some(tag(0, 6)));
        assert_eq!(a.epoch_len(tag(0, 6)), 2);
        assert_eq!(a.epoch_len(tag(0, 5)), 0);
    }

    #[test]
    fn dirty_lines_enumerates_all_dirty() {
        let mut a = tiny();
        a.install(CacheLine::dirty(LineAddr::new(0), 1, None));
        a.install(CacheLine::clean(LineAddr::new(1), 2));
        a.install(CacheLine::dirty(LineAddr::new(3), 3, Some(tag(0, 0))));
        let mut dirty = a.dirty_lines();
        dirty.sort();
        assert_eq!(dirty, vec![LineAddr::new(0), LineAddr::new(3)]);
        assert_eq!(a.len(), 3);
        assert_eq!(a.resident_epochs(), vec![tag(0, 0)]);
    }

    #[test]
    #[should_panic(expected = "full set")]
    fn install_into_full_set_panics() {
        let mut a = tiny();
        a.install(CacheLine::clean(LineAddr::new(0), 0));
        a.install(CacheLine::clean(LineAddr::new(2), 0));
        a.install(CacheLine::clean(LineAddr::new(4), 0));
    }

    #[test]
    fn access_promotes_recency() {
        let mut a = tiny();
        a.install(CacheLine::clean(LineAddr::new(0), 0));
        a.install(CacheLine::clean(LineAddr::new(2), 0));
        assert!(a.access(LineAddr::new(0)).is_some());
        match a.victim_for(LineAddr::new(4)) {
            VictimChoice::Evict(v) => {
                assert_eq!(v.addr, LineAddr::new(2), "line 0 was re-touched")
            }
            other => panic!("expected eviction, got {other:?}"),
        }
    }
}
