//! Model-based property test: `CacheArray` against a naive reference
//! model. The reference keeps plain per-set vectors in MRU order and
//! recomputes everything by scanning; the array must agree after every
//! operation, including its internal epoch index.

use pbm_cache::{CacheArray, CacheLine, LineState, VictimChoice};
use pbm_types::{CoreId, EpochId, EpochTag, LineAddr};
use proptest::prelude::*;
use std::collections::HashMap;

const SETS: usize = 4;
const ASSOC: usize = 2;

#[derive(Debug, Clone)]
enum Op {
    Access(u64),
    InstallClean(u64),
    InstallDirty(u64, Option<(u32, u64)>),
    Write(u64, Option<(u32, u64)>),
    Remove(u64),
    Writeback(u64),
    Retag((u32, u64), (u32, u64)),
}

fn tag(t: (u32, u64)) -> EpochTag {
    EpochTag::new(CoreId::new(t.0), EpochId::new(t.1))
}

/// The reference model: per-set MRU-ordered vectors.
#[derive(Debug, Default)]
struct Model {
    sets: HashMap<usize, Vec<CacheLine>>,
}

impl Model {
    fn set_of(line: u64) -> usize {
        (line as usize) % SETS
    }

    fn peek(&self, line: u64) -> Option<&CacheLine> {
        self.sets
            .get(&Self::set_of(line))?
            .iter()
            .find(|l| l.addr == LineAddr::new(line))
    }

    fn touch(&mut self, line: u64) {
        let set = self.sets.entry(Self::set_of(line)).or_default();
        if let Some(pos) = set.iter().position(|l| l.addr == LineAddr::new(line)) {
            let l = set.remove(pos);
            set.insert(0, l);
        }
    }

    fn install(&mut self, l: CacheLine) -> bool {
        let set = self.sets.entry(Self::set_of(l.addr.as_u64())).or_default();
        if set.len() >= ASSOC || set.iter().any(|x| x.addr == l.addr) {
            return false;
        }
        set.insert(0, l);
        true
    }

    fn remove(&mut self, line: u64) -> Option<CacheLine> {
        let set = self.sets.get_mut(&Self::set_of(line))?;
        let pos = set.iter().position(|l| l.addr == LineAddr::new(line))?;
        Some(set.remove(pos))
    }

    fn lines_of_epoch(&self, t: EpochTag) -> Vec<LineAddr> {
        let mut v: Vec<LineAddr> = self
            .sets
            .values()
            .flatten()
            .filter(|l| l.tag == Some(t))
            .map(|l| l.addr)
            .collect();
        v.sort();
        v
    }

    fn len(&self) -> usize {
        self.sets.values().map(Vec::len).sum()
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let line = 0u64..16;
    let t = (0u32..2, 0u64..3);
    prop_oneof![
        line.clone().prop_map(Op::Access),
        line.clone().prop_map(Op::InstallClean),
        (line.clone(), proptest::option::of(t.clone())).prop_map(|(l, t)| Op::InstallDirty(l, t)),
        (line.clone(), proptest::option::of(t.clone())).prop_map(|(l, t)| Op::Write(l, t)),
        line.clone().prop_map(Op::Remove),
        line.prop_map(Op::Writeback),
        (t.clone(), t).prop_map(|(a, b)| Op::Retag(a, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn array_agrees_with_reference(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let mut array = CacheArray::new(SETS, ASSOC, 0);
        let mut model = Model::default();
        let mut value_counter = 1u64;

        for op in ops {
            match op {
                Op::Access(l) => {
                    let got = array.access(LineAddr::new(l)).copied();
                    let want = model.peek(l).copied();
                    prop_assert_eq!(got, want);
                    model.touch(l);
                }
                Op::InstallClean(l) => {
                    if matches!(array.victim_for(LineAddr::new(l)), VictimChoice::Room)
                        && !array.contains(LineAddr::new(l))
                    {
                        value_counter += 1;
                        let line = CacheLine::clean(LineAddr::new(l), value_counter);
                        array.install(line);
                        prop_assert!(model.install(line));
                    }
                }
                Op::InstallDirty(l, t) => {
                    if matches!(array.victim_for(LineAddr::new(l)), VictimChoice::Room)
                        && !array.contains(LineAddr::new(l))
                    {
                        value_counter += 1;
                        let line =
                            CacheLine::dirty(LineAddr::new(l), value_counter, t.map(tag));
                        array.install(line);
                        prop_assert!(model.install(line));
                    }
                }
                Op::Write(l, t) => {
                    value_counter += 1;
                    let hit = array.write(LineAddr::new(l), value_counter, t.map(tag));
                    prop_assert_eq!(hit, model.peek(l).is_some());
                    if hit {
                        model.touch(l);
                        let set = model.sets.get_mut(&Model::set_of(l)).unwrap();
                        let entry = set
                            .iter_mut()
                            .find(|x| x.addr == LineAddr::new(l))
                            .unwrap();
                        entry.state = LineState::Dirty;
                        entry.value = value_counter;
                        entry.tag = t.map(tag);
                    }
                }
                Op::Remove(l) => {
                    let got = array.remove(LineAddr::new(l));
                    let want = model.remove(l);
                    prop_assert_eq!(got, want);
                }
                Op::Writeback(l) => {
                    let got = array.mark_written_back(LineAddr::new(l));
                    let want = model.peek(l).filter(|x| x.is_dirty()).map(|x| x.value);
                    prop_assert_eq!(got, want);
                    if want.is_some() {
                        let set = model.sets.get_mut(&Model::set_of(l)).unwrap();
                        let entry = set
                            .iter_mut()
                            .find(|x| x.addr == LineAddr::new(l))
                            .unwrap();
                        entry.mark_written_back();
                    }
                }
                Op::Retag(a, b) => {
                    if a != b {
                        let n = array.retag_epoch(tag(a), tag(b));
                        let expected = model.lines_of_epoch(tag(a)).len();
                        prop_assert_eq!(n, expected);
                        for set in model.sets.values_mut() {
                            for entry in set.iter_mut() {
                                if entry.tag == Some(tag(a)) {
                                    entry.tag = Some(tag(b));
                                }
                            }
                        }
                    }
                }
            }
            // Global invariants after every step.
            prop_assert_eq!(array.len(), model.len());
            for c in 0..2u32 {
                for e in 0..3u64 {
                    let t = tag((c, e));
                    prop_assert_eq!(
                        array.lines_of_epoch(t),
                        model.lines_of_epoch(t),
                        "epoch index diverged for {}",
                        t
                    );
                }
            }
            // Victim policy sanity: EpochBlocked only when every way in the
            // set is dirty-tagged.
            for probe in 0..16u64 {
                if let VictimChoice::EpochBlocked { .. } =
                    array.victim_for(LineAddr::new(probe))
                {
                    let set = model.sets.get(&Model::set_of(probe));
                    let all_tagged = set
                        .map(|s| s.len() == ASSOC && s.iter().all(|l| l.is_epoch_tagged()))
                        .unwrap_or(false);
                    prop_assert!(all_tagged, "EpochBlocked with evictable ways");
                }
            }
        }
    }
}
