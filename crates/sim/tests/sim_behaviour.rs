//! Behavioural tests of the full simulator: epoch lifecycle, conflicts,
//! barrier variants, durability, and determinism.

use pbm_sim::{Program, ProgramBuilder, System};
use pbm_types::{Addr, BarrierKind, Cycle, PersistencyKind, SystemConfig};

fn cfg(barrier: BarrierKind) -> SystemConfig {
    let mut c = SystemConfig::small_test();
    c.barrier = barrier;
    c.persistency = PersistencyKind::BufferedEpoch;
    c
}

/// A single-threaded program: two epochs of two stores each.
fn two_epochs() -> Program {
    let mut b = ProgramBuilder::new();
    b.store(Addr::new(0), 1)
        .store(Addr::new(64), 2)
        .barrier()
        .store(Addr::new(128), 3)
        .store(Addr::new(192), 4)
        .barrier();
    b.build()
}

#[test]
fn counts_ops() {
    let mut sys = System::new(cfg(BarrierKind::LbPp), vec![two_epochs()]).unwrap();
    let stats = sys.run();
    assert_eq!(stats.stores, 4);
    assert_eq!(stats.barriers, 2);
    assert_eq!(stats.loads, 0);
    assert!(stats.cycles > 0);
}

#[test]
fn epochs_persist_under_every_lazy_barrier() {
    for kind in BarrierKind::LAZY_VARIANTS {
        let mut sys = System::new(cfg(kind), vec![two_epochs()]).unwrap();
        let stats = sys.run();
        assert_eq!(stats.epochs_created, 2, "{kind}");
        assert_eq!(stats.epochs_persisted, 2, "{kind}");
        // All four lines must be durable after the run (drain included).
        for l in 0..4u64 {
            assert!(
                sys.durable_line(pbm_types::LineAddr::new(l)).is_some(),
                "{kind}: line {l} not durable"
            );
        }
    }
}

#[test]
fn np_persists_nothing_eagerly() {
    let mut sys = System::new(cfg(BarrierKind::NoPersistency), vec![two_epochs()]).unwrap();
    let stats = sys.run();
    assert_eq!(stats.epochs_persisted, 0);
    assert_eq!(stats.barriers, 2, "barriers retire as no-ops");
    // Small working set: nothing evicted, nothing written to NVRAM.
    assert_eq!(stats.nvram_writes, 0);
}

#[test]
fn write_through_persists_every_store() {
    let mut c = cfg(BarrierKind::WriteThrough);
    c.persistency = PersistencyKind::Strict;
    let mut sys = System::new(c, vec![two_epochs()]).unwrap();
    let stats = sys.run();
    assert_eq!(stats.nvram_writes, 4);
    for l in 0..4u64 {
        assert!(sys.durable_line(pbm_types::LineAddr::new(l)).is_some());
    }
}

#[test]
fn write_through_is_much_slower_than_np() {
    let prog = {
        let mut b = ProgramBuilder::new();
        for i in 0..64u64 {
            b.store(Addr::new(i * 64), i as u32);
        }
        b.build()
    };
    let mut np = System::new(cfg(BarrierKind::NoPersistency), vec![prog.clone()]).unwrap();
    let mut c = cfg(BarrierKind::WriteThrough);
    c.persistency = PersistencyKind::Strict;
    let mut wt = System::new(c, vec![prog]).unwrap();
    let t_np = np.run().cycles;
    let t_wt = wt.run().cycles;
    assert!(
        t_wt > 4 * t_np,
        "write-through ({t_wt}) should be far slower than NP ({t_np})"
    );
}

#[test]
fn intra_thread_conflict_detected_and_resolved() {
    // Write line 0 in epoch 0, then again in epoch 1 -> intra conflict
    // under LB (epoch 0 not yet persisted when the second store issues).
    let mut b = ProgramBuilder::new();
    b.store(Addr::new(0), 1).barrier().store(Addr::new(0), 2);
    let mut sys = System::new(cfg(BarrierKind::Lb), vec![b.build()]).unwrap();
    let stats = sys.run();
    assert_eq!(stats.conflicts_intra, 1);
    assert!(stats.online_persist_stall_cycles > 0);
    assert_eq!(stats.epochs_conflict_flushed, 1);
    // Final value durable.
    let tok = sys.durable_line(pbm_types::LineAddr::new(0)).unwrap();
    assert_eq!(System::token_value(tok), 2);
}

#[test]
fn proactive_flush_avoids_the_intra_conflict() {
    // Same program, but with compute between the epochs so PF has time to
    // finish persisting epoch 0 before the second store.
    let mut b = ProgramBuilder::new();
    b.store(Addr::new(0), 1)
        .barrier()
        .compute(20_000)
        .store(Addr::new(0), 2);
    let prog = b.build();

    let mut lb = System::new(cfg(BarrierKind::Lb), vec![prog.clone()]).unwrap();
    let lb_stats = lb.run();
    assert_eq!(
        lb_stats.conflicts_intra, 1,
        "LB flushes only on the conflict"
    );

    let mut pf = System::new(cfg(BarrierKind::LbPf), vec![prog]).unwrap();
    let pf_stats = pf.run();
    assert_eq!(pf_stats.conflicts_intra, 0, "PF persisted epoch 0 already");
    // Epoch 0 flushed proactively; the trailing (never-closed) epoch is
    // flushed by the end-of-run drain.
    assert_eq!(pf_stats.epochs_proactive_flushed, 1);
    assert_eq!(pf_stats.epochs_persisted, 2);
}

#[test]
fn inter_thread_conflict_load() {
    // Core 0 writes line 0 and closes the epoch; core 1 reads line 0 much
    // later (after compute delay) -> inter-thread conflict under LB.
    let mut p0 = ProgramBuilder::new();
    p0.store(Addr::new(0), 7).barrier().compute(200_000);
    let mut p1 = ProgramBuilder::new();
    p1.compute(50_000).load(Addr::new(0));
    let mut sys = System::new(cfg(BarrierKind::Lb), vec![p0.build(), p1.build()]).unwrap();
    let stats = sys.run();
    assert_eq!(stats.conflicts_inter, 1);
    assert_eq!(stats.idt_recorded, 0, "LB has no IDT registers");
}

#[test]
fn idt_records_instead_of_flushing() {
    let mut p0 = ProgramBuilder::new();
    p0.store(Addr::new(0), 7).barrier().compute(200_000);
    let mut p1 = ProgramBuilder::new();
    p1.compute(50_000)
        .load(Addr::new(0))
        .store(Addr::new(64), 1);
    let mut sys = System::new(cfg(BarrierKind::LbIdt), vec![p0.build(), p1.build()]).unwrap();
    sys.enable_checking();
    let stats = sys.run();
    assert_eq!(stats.conflicts_inter, 1, "one conflict, counted once");
    assert!(stats.idt_recorded >= 1, "dependence recorded in registers");
    // The recorded dependence reaches the checker's happens-before graph.
    let hb = sys.checker().unwrap().hb_graph();
    assert_eq!(hb.edge_count(), 1);
    assert!(hb.is_acyclic());
}

#[test]
fn dependence_on_ongoing_epoch_splits_it() {
    // Core 0 writes line 0 and keeps its epoch ongoing (no barrier).
    // Core 1 reads line 0 -> source epoch is ongoing -> split (§3.3).
    let mut p0 = ProgramBuilder::new();
    p0.store(Addr::new(0), 7).compute(300_000);
    let mut p1 = ProgramBuilder::new();
    p1.compute(50_000).load(Addr::new(0));
    let mut sys = System::new(cfg(BarrierKind::LbPp), vec![p0.build(), p1.build()]).unwrap();
    let stats = sys.run();
    assert_eq!(stats.conflicts_inter, 1);
    assert_eq!(stats.deadlock_splits, 1);
}

#[test]
fn backpressure_limits_inflight_epochs() {
    // More barriers than the 8-epoch window without any flush demand: the
    // 9th epoch must wait for the frontier to persist.
    let mut b = ProgramBuilder::new();
    for i in 0..12u64 {
        b.store(Addr::new(i * 64), i as u32).barrier();
    }
    let mut sys = System::new(cfg(BarrierKind::Lb), vec![b.build()]).unwrap();
    let stats = sys.run();
    assert_eq!(stats.epochs_created, 12);
    assert_eq!(stats.epochs_persisted, 12);
    assert!(
        stats.barrier_stall_cycles > 0,
        "window back-pressure must stall at least one barrier"
    );
}

#[test]
fn epoch_persistency_stalls_at_barriers() {
    let mut c = cfg(BarrierKind::LbPp);
    c.persistency = PersistencyKind::Epoch;
    let mut sys = System::new(c, vec![two_epochs()]).unwrap();
    let stats = sys.run();
    assert!(stats.barrier_stall_cycles > 0, "EP rule E2 stalls the core");
    // And the barriers make everything durable before the program ends.
    assert_eq!(stats.epochs_persisted, 2);
}

#[test]
fn bep_barrier_does_not_stall_without_pressure() {
    let mut sys = System::new(cfg(BarrierKind::LbPp), vec![two_epochs()]).unwrap();
    let stats = sys.run();
    assert_eq!(stats.barrier_stall_cycles, 0, "BEP barriers are buffered");
}

#[test]
fn bsp_hardware_cuts_epochs() {
    let mut c = cfg(BarrierKind::LbPp);
    c.persistency = PersistencyKind::BufferedStrictBulk;
    c.bsp_epoch_size = 4;
    let mut b = ProgramBuilder::new();
    for i in 0..16u64 {
        b.store(Addr::new(i * 64), i as u32);
    }
    let mut sys = System::new(c, vec![b.build()]).unwrap();
    let stats = sys.run();
    // 16 stores / 4 per epoch = 4 hardware barriers.
    assert_eq!(stats.barriers, 4);
    assert!(stats.log_writes > 0, "undo logging active");
    assert!(stats.checkpoint_writes > 0, "checkpointing active");
}

#[test]
fn bsp_nolog_skips_log_traffic() {
    let mut c = cfg(BarrierKind::LbPp);
    c.persistency = PersistencyKind::BufferedStrictBulk;
    c.bsp_epoch_size = 4;
    c.logging = false;
    let mut b = ProgramBuilder::new();
    for i in 0..16u64 {
        b.store(Addr::new(i * 64), i as u32);
    }
    let mut sys = System::new(c, vec![b.build()]).unwrap();
    let stats = sys.run();
    assert_eq!(stats.log_writes, 0);
    assert!(stats.checkpoint_writes > 0, "checkpointing is independent");
}

#[test]
fn locks_provide_mutual_exclusion_and_cost() {
    use pbm_sim::VOLATILE_BASE;
    let lock = Addr::new(VOLATILE_BASE);
    let mk = |val: u32| {
        let mut b = ProgramBuilder::new();
        for _ in 0..10 {
            b.lock(lock)
                .store(Addr::new(0), val)
                .unlock(lock)
                .compute(100);
        }
        b.build()
    };
    let mut sys = System::new(cfg(BarrierKind::LbPp), vec![mk(1), mk(2)]).unwrap();
    let stats = sys.run();
    // 2 cores x 10 critical sections x (lock store + data store + unlock).
    assert_eq!(stats.stores, 60);
    assert!(stats.cycles > 0);
}

#[test]
fn deterministic_across_runs() {
    let progs = || vec![two_epochs(), two_epochs()];
    let mut a = System::new(cfg(BarrierKind::LbPp), progs()).unwrap();
    let mut b = System::new(cfg(BarrierKind::LbPp), progs()).unwrap();
    let sa = a.run();
    let sb = b.run();
    assert_eq!(sa, sb, "identical inputs must give identical statistics");
}

#[test]
fn crash_snapshots_respect_epoch_order() {
    // Under LB++ with checking on, the BEP invariant must hold at *every*
    // crash cycle.
    let mut p0 = ProgramBuilder::new();
    for i in 0..6u64 {
        p0.store(Addr::new(i * 64), i as u32)
            .store(Addr::new((i + 8) * 64), i as u32)
            .barrier();
    }
    let mut p1 = ProgramBuilder::new();
    for i in 16..20u64 {
        p1.store(Addr::new(i * 64), i as u32).barrier();
        p1.load(Addr::new(0)); // pulls in cross-thread dependences
    }
    let mut sys = System::new(cfg(BarrierKind::LbPp), vec![p0.build(), p1.build()]).unwrap();
    sys.enable_checking();
    let stats = sys.run();
    let ck = sys.checker().unwrap();
    // Scan a spread of crash points across the run (and past the drain).
    let horizon = stats.cycles + 20_000;
    for k in 0..60 {
        let at = Cycle::new(horizon * k / 59);
        let snap = sys.persistent_snapshot_at(at);
        ck.check_bep(&snap)
            .unwrap_or_else(|v| panic!("violation at {at}: {v}"));
    }
}

#[test]
fn bsp_crash_recovery_is_atomic() {
    let mut c = cfg(BarrierKind::LbPp);
    c.persistency = PersistencyKind::BufferedStrictBulk;
    c.bsp_epoch_size = 3;
    let mut b = ProgramBuilder::new();
    for i in 0..12u64 {
        b.store(Addr::new(i * 64), i as u32);
    }
    let mut sys = System::new(c, vec![b.build()]).unwrap();
    sys.enable_checking();
    let stats = sys.run();
    let ck = sys.checker().unwrap();
    let horizon = stats.cycles + 20_000;
    for k in 0..60 {
        let at = Cycle::new(horizon * k / 59);
        let snap = sys.persistent_snapshot_at(at);
        let (recovered, _) = snap.recover_with(sys.undo_log());
        ck.check_bsp_recovered(&recovered)
            .unwrap_or_else(|v| panic!("violation at {at}: {v}"));
    }
}

#[test]
fn invalidating_flush_is_slower() {
    // Repeated reuse of flushed lines: clflush-style flushes evict them, so
    // the re-accesses (loads, which block the core) go back to NVRAM.
    let prog = {
        let mut b = ProgramBuilder::new();
        for round in 0..8 {
            for i in 0..8u64 {
                b.store(Addr::new(i * 64), round as u32);
            }
            b.barrier();
            b.compute(20_000); // let PF finish
            for i in 0..8u64 {
                b.load(Addr::new(i * 64));
            }
        }
        b.build()
    };
    let mut fast_cfg = cfg(BarrierKind::LbPp);
    fast_cfg.flush_mode = pbm_types::FlushMode::NonInvalidating;
    let mut slow_cfg = cfg(BarrierKind::LbPp);
    slow_cfg.flush_mode = pbm_types::FlushMode::Invalidating;
    let t_fast = System::new(fast_cfg, vec![prog.clone()])
        .unwrap()
        .run()
        .cycles;
    let t_slow = System::new(slow_cfg, vec![prog]).unwrap().run().cycles;
    assert!(
        t_slow > t_fast,
        "clflush-style ({t_slow}) must be slower than clwb-style ({t_fast})"
    );
}

#[test]
fn preloaded_state_is_readable_and_checkable() {
    let mut sys = System::new(cfg(BarrierKind::LbPp), vec![Program::empty()]).unwrap();
    sys.enable_checking();
    sys.preload(Addr::new(0), 42);
    let stats = sys.run();
    assert_eq!(stats.stores, 0);
    let tok = sys.durable_line(pbm_types::LineAddr::new(0)).unwrap();
    assert_eq!(System::token_value(tok), 42);
    // Preloaded lines must not be phantom values.
    let snap = sys.persistent_snapshot_at(Cycle::new(1_000_000));
    sys.checker().unwrap().check_bep(&snap).unwrap();
}
