//! Model-based property test: the bucketed timing-wheel [`EventQueue`]
//! against the straightforward `BinaryHeap` reference
//! ([`HeapEventQueue`]). Under any interleaving of schedules and pops —
//! including deltas past the wheel window, which take the overflow heap —
//! both queues must dequeue the exact same `(cycle, event)` sequence,
//! because the simulator's determinism rests on the (cycle, seq) total
//! order alone.

use pbm_sim::{Event, EventQueue, HeapEventQueue};
use pbm_types::{BankId, CoreId, Cycle, EpochId};
use proptest::prelude::*;

fn event_for(core: u32, delta: u64) -> Event {
    if core.is_multiple_of(2) {
        Event::Step(CoreId::new(core))
    } else {
        Event::BankAck(CoreId::new(core), EpochId::new(delta), BankId::new(core))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn wheel_dequeues_in_heap_reference_order(
        // Deltas reach past the 4096-slot wheel window so the far-future
        // overflow path is exercised, not just the fast path.
        actions in proptest::collection::vec((0u8..4, 0u64..6000, 0u32..8), 1..400),
    ) {
        let mut wheel = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        let mut now = 0u64;
        for (op, delta, core) in actions {
            if op < 3 {
                let at = Cycle::new(now + delta);
                let ev = event_for(core, delta);
                wheel.schedule(at, ev);
                heap.schedule(at, ev);
                prop_assert_eq!(wheel.len(), heap.len());
            } else {
                let got = wheel.pop();
                let want = heap.pop();
                prop_assert_eq!(got, want);
                if let Some((t, _)) = want {
                    // The simulator never schedules in the past: pops
                    // advance the clock that later schedules build on.
                    now = t.as_u64();
                }
            }
        }
        // Drain: the tails must agree element for element.
        while let Some(want) = heap.pop() {
            prop_assert_eq!(wheel.pop(), Some(want));
        }
        prop_assert_eq!(wheel.pop(), None);
        prop_assert!(wheel.is_empty());
    }
}
