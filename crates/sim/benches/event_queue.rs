//! Wheel vs heap on synthetic event streams.
//!
//! The workload is hold-model churn — the steady state of a discrete-event
//! simulator: keep `n` events pending, repeatedly pop the earliest and
//! schedule a replacement a short (LCG-drawn) delta into the future. The
//! bucketed wheel must beat the `BinaryHeap` reference here; if it ever
//! stops doing so, the Layer-2 overhaul has regressed and `pop`/`schedule`
//! deserve a profile.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbm_sim::{Event, EventQueue, HeapEventQueue};
use pbm_types::{CoreId, Cycle};

/// Deterministic delta stream; mostly short deltas (within the wheel
/// window) with an occasional far-future one, like BankAck round trips.
struct Lcg(u64);

impl Lcg {
    fn next_delta(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let r = self.0 >> 33;
        if r.is_multiple_of(64) {
            1 + r % 20_000 // past the 4096-slot window: overflow path
        } else {
            1 + r % 256
        }
    }
}

fn churn_wheel(n: usize, steps: usize) -> u64 {
    let mut q = EventQueue::new();
    let mut lcg = Lcg(0x9e3779b97f4a7c15);
    for i in 0..n {
        q.schedule(
            Cycle::new(lcg.next_delta()),
            Event::Step(CoreId::new(i as u32)),
        );
    }
    let mut acc = 0u64;
    for _ in 0..steps {
        let (t, ev) = q.pop().expect("queue stays full");
        acc = acc.wrapping_add(t.as_u64());
        q.schedule(t + lcg.next_delta(), ev);
    }
    acc
}

fn churn_heap(n: usize, steps: usize) -> u64 {
    let mut q = HeapEventQueue::new();
    let mut lcg = Lcg(0x9e3779b97f4a7c15);
    for i in 0..n {
        q.schedule(
            Cycle::new(lcg.next_delta()),
            Event::Step(CoreId::new(i as u32)),
        );
    }
    let mut acc = 0u64;
    for _ in 0..steps {
        let (t, ev) = q.pop().expect("queue stays full");
        acc = acc.wrapping_add(t.as_u64());
        q.schedule(t + lcg.next_delta(), ev);
    }
    acc
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    const STEPS: usize = 100_000;
    for &n in &[48usize, 512, 4096] {
        group.bench_with_input(BenchmarkId::new("wheel", n), &n, |b, &n| {
            b.iter(|| churn_wheel(n, STEPS))
        });
        group.bench_with_input(BenchmarkId::new("heap", n), &n, |b, &n| {
            b.iter(|| churn_heap(n, STEPS))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_event_queue);
criterion_main!(benches);
