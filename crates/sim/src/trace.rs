//! A plain-text trace format for programs: one operation per line.
//!
//! Lets users capture, edit and replay per-core traces without pulling in
//! a serialization framework:
//!
//! ```text
//! # comment
//! L 0x40        # load
//! S 0x80 7      # store value 7
//! B             # persist barrier
//! C 120         # compute 120 cycles
//! K 0x10000000000   # lock
//! U 0x10000000000   # unlock
//! T             # transaction end
//! ```
//!
//! # Example
//!
//! ```
//! use pbm_sim::{Program, ProgramBuilder};
//! use pbm_types::Addr;
//!
//! let mut b = ProgramBuilder::new();
//! b.store(Addr::new(64), 7).barrier();
//! let p = b.build();
//! let text = p.to_trace_string();
//! let back = Program::from_trace_str(&text)?;
//! assert_eq!(p.ops(), back.ops());
//! # Ok::<(), pbm_sim::TraceParseError>(())
//! ```

use crate::op::{Op, Program};
use pbm_types::Addr;
use std::error::Error;
use std::fmt;

/// A trace line could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl Error for TraceParseError {}

impl Program {
    /// Renders the program in the line-per-op trace format.
    pub fn to_trace_string(&self) -> String {
        let mut out = String::new();
        for op in self.ops() {
            match op {
                Op::Load(a) => out.push_str(&format!("L {:#x}\n", a.as_u64())),
                Op::Store(a, v) => out.push_str(&format!("S {:#x} {v}\n", a.as_u64())),
                Op::Barrier => out.push_str("B\n"),
                Op::Compute(c) => out.push_str(&format!("C {c}\n")),
                Op::Lock(a) => out.push_str(&format!("K {:#x}\n", a.as_u64())),
                Op::Unlock(a) => out.push_str(&format!("U {:#x}\n", a.as_u64())),
                Op::TxEnd => out.push_str("T\n"),
            }
        }
        out
    }

    /// Parses a trace. Blank lines and `#` comments are ignored.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceParseError`] naming the offending line.
    pub fn from_trace_str(text: &str) -> Result<Program, TraceParseError> {
        let mut ops = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let mut parts = content.split_whitespace();
            let kind = parts.next().expect("nonempty");
            let err = |message: String| TraceParseError { line, message };
            let parse_addr = |s: Option<&str>| -> Result<Addr, TraceParseError> {
                let s = s.ok_or_else(|| err("missing address".into()))?;
                let v = if let Some(hex) = s.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16)
                } else {
                    s.parse()
                };
                v.map(Addr::new)
                    .map_err(|e| err(format!("bad address {s}: {e}")))
            };
            let op = match kind {
                "L" => Op::Load(parse_addr(parts.next())?),
                "S" => {
                    let a = parse_addr(parts.next())?;
                    let v = parts
                        .next()
                        .ok_or_else(|| err("missing store value".into()))?
                        .parse()
                        .map_err(|e| err(format!("bad store value: {e}")))?;
                    Op::Store(a, v)
                }
                "B" => Op::Barrier,
                "C" => Op::Compute(
                    parts
                        .next()
                        .ok_or_else(|| err("missing cycle count".into()))?
                        .parse()
                        .map_err(|e| err(format!("bad cycle count: {e}")))?,
                ),
                "K" => Op::Lock(parse_addr(parts.next())?),
                "U" => Op::Unlock(parse_addr(parts.next())?),
                "T" => Op::TxEnd,
                other => return Err(err(format!("unknown op kind {other:?}"))),
            };
            if let Some(junk) = parts.next() {
                return Err(err(format!("trailing token {junk:?}")));
            }
            ops.push(op);
        }
        Ok(ops.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_every_op_kind() {
        let text = "\
# a queue insert
K 0x10000000000
L 0x1000
S 0x0 7
S 0x40 8
B
S 0x1000 1   # head pointer
B
U 0x10000000000
C 100
T
";
        let p = Program::from_trace_str(text).expect("parses");
        assert_eq!(p.len(), 10);
        let round = Program::from_trace_str(&p.to_trace_string()).expect("parses");
        assert_eq!(p.ops(), round.ops());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = Program::from_trace_str("B\nX 12\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("unknown op kind"));
        let e = Program::from_trace_str("S 0x40\n").unwrap_err();
        assert!(e.message.contains("missing store value"));
        let e = Program::from_trace_str("L 0x40 junk\n").unwrap_err();
        assert!(e.message.contains("trailing token"));
        let e = Program::from_trace_str("C notanumber\n").unwrap_err();
        assert!(e.message.contains("bad cycle count"));
    }

    #[test]
    fn decimal_addresses_accepted() {
        let p = Program::from_trace_str("L 64\n").expect("parses");
        assert_eq!(p.ops()[0], Op::Load(Addr::new(64)));
    }

    proptest! {
        #[test]
        fn prop_round_trip(ops in proptest::collection::vec(
            prop_oneof![
                (0u64..1 << 41).prop_map(|a| Op::Load(Addr::new(a))),
                ((0u64..1 << 41), any::<u32>()).prop_map(|(a, v)| Op::Store(Addr::new(a), v)),
                Just(Op::Barrier),
                any::<u32>().prop_map(Op::Compute),
                (0u64..1 << 41).prop_map(|a| Op::Lock(Addr::new(a))),
                (0u64..1 << 41).prop_map(|a| Op::Unlock(Addr::new(a))),
                Just(Op::TxEnd),
            ],
            0..60,
        )) {
            let p: Program = ops.into_iter().collect();
            let round = Program::from_trace_str(&p.to_trace_string()).expect("parses");
            prop_assert_eq!(p.ops(), round.ops());
        }
    }
}
