//! Per-core programs: the operations a core executes.

use pbm_types::Addr;

/// One operation in a core's program.
///
/// Programs are straight-line (no data-dependent control flow) except for
/// [`Op::Lock`], which spins until it wins the named lock — enough to
/// express the paper's workloads (persistent data-structure transactions
/// under locks, and barrier-free BSP applications) while keeping traces
/// replayable and deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Load the line containing `addr`; the core blocks until data returns.
    Load(Addr),
    /// Store `value` to the line containing `addr`; retires into the write
    /// buffer (the core continues unless the buffer is full or the store
    /// conflicts).
    Store(Addr, u32),
    /// A persist barrier (programmer-inserted; BEP/EP semantics).
    Barrier,
    /// Local computation for the given number of cycles.
    Compute(u32),
    /// Acquire a spin lock at `addr` (architecturally atomic; the line is
    /// in the volatile region by convention).
    Lock(Addr),
    /// Release the lock at `addr`.
    Unlock(Addr),
    /// Marks the completion of one application-level transaction
    /// (throughput accounting for the micro-benchmarks).
    TxEnd,
}

/// An immutable per-core operation sequence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    ops: Vec<Op>,
}

impl Program {
    /// An empty program (the core finishes immediately).
    pub fn empty() -> Self {
        Self::default()
    }

    /// The operations.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if there are no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Count of store operations (useful for sizing expectations in tests).
    pub fn store_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, Op::Store(_, _)))
            .count()
    }
}

impl FromIterator<Op> for Program {
    fn from_iter<T: IntoIterator<Item = Op>>(iter: T) -> Self {
        Program {
            ops: iter.into_iter().collect(),
        }
    }
}

/// Non-consuming builder for [`Program`]s.
///
/// # Example
///
/// ```
/// use pbm_sim::ProgramBuilder;
/// use pbm_types::Addr;
///
/// let mut b = ProgramBuilder::new();
/// b.lock(Addr::new(4096))
///     .store(Addr::new(0), 7)
///     .barrier()
///     .unlock(Addr::new(4096))
///     .tx_end();
/// let p = b.build();
/// assert_eq!(p.len(), 5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    ops: Vec<Op>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a load.
    pub fn load(&mut self, addr: Addr) -> &mut Self {
        self.ops.push(Op::Load(addr));
        self
    }

    /// Appends a store of `value`.
    pub fn store(&mut self, addr: Addr, value: u32) -> &mut Self {
        self.ops.push(Op::Store(addr, value));
        self
    }

    /// Appends a persist barrier.
    pub fn barrier(&mut self) -> &mut Self {
        self.ops.push(Op::Barrier);
        self
    }

    /// Appends `cycles` of local compute.
    pub fn compute(&mut self, cycles: u32) -> &mut Self {
        self.ops.push(Op::Compute(cycles));
        self
    }

    /// Appends a lock acquire.
    pub fn lock(&mut self, addr: Addr) -> &mut Self {
        self.ops.push(Op::Lock(addr));
        self
    }

    /// Appends a lock release.
    pub fn unlock(&mut self, addr: Addr) -> &mut Self {
        self.ops.push(Op::Unlock(addr));
        self
    }

    /// Appends a transaction-end marker.
    pub fn tx_end(&mut self) -> &mut Self {
        self.ops.push(Op::TxEnd);
        self
    }

    /// Appends stores covering `bytes` bytes starting at `addr` (one store
    /// per 64-byte line), all with `value` — the shape of the paper's
    /// 512-byte entry copies.
    pub fn store_span(&mut self, addr: Addr, bytes: u64, value: u32) -> &mut Self {
        let lines = pbm_types::LineAddr::lines_for(bytes);
        for l in addr.line().span(lines) {
            self.store(l.base(), value);
        }
        self
    }

    /// Appends a raw op.
    pub fn push(&mut self, op: Op) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// Number of ops so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if no ops have been added.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Finalizes the program.
    pub fn build(&self) -> Program {
        Program {
            ops: self.ops.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trip() {
        let mut b = ProgramBuilder::new();
        assert!(b.is_empty());
        b.load(Addr::new(0))
            .store(Addr::new(64), 1)
            .barrier()
            .compute(10)
            .tx_end();
        let p = b.build();
        assert_eq!(p.len(), 5);
        assert_eq!(p.store_count(), 1);
        assert_eq!(p.ops()[0], Op::Load(Addr::new(0)));
        assert_eq!(p.ops()[2], Op::Barrier);
    }

    #[test]
    fn store_span_covers_lines() {
        let mut b = ProgramBuilder::new();
        b.store_span(Addr::new(0), 512, 9);
        let p = b.build();
        assert_eq!(p.store_count(), 8);
        assert_eq!(p.ops()[7], Op::Store(Addr::new(7 * 64), 9));
    }

    #[test]
    fn empty_program() {
        let p = Program::empty();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn from_iterator() {
        let p: Program = vec![Op::Barrier, Op::TxEnd].into_iter().collect();
        assert_eq!(p.len(), 2);
    }
}
