//! Per-core programs: the operations a core executes.
//!
//! [`Op`] and [`Program`] are the IR every downstream consumer shares: the
//! simulator executes them, the static analyzer (`pbm-analyze`) partitions
//! them into epochs, and the fuzzing corpus serializes them. The canonical
//! serialized form lives here too ([`Op::to_json_value`] /
//! [`Op::from_json_value`] and the [`Program`] equivalents) so corpus
//! artifacts and analyzer reports reference ops through one encoding.

use pbm_obs::json::JsonValue;
use pbm_types::Addr;
use serde::{Deserialize, Serialize};

/// One operation in a core's program.
///
/// Programs are straight-line (no data-dependent control flow) except for
/// [`Op::Lock`], which spins until it wins the named lock — enough to
/// express the paper's workloads (persistent data-structure transactions
/// under locks, and barrier-free BSP applications) while keeping traces
/// replayable and deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Load the line containing `addr`; the core blocks until data returns.
    Load(Addr),
    /// Store `value` to the line containing `addr`; retires into the write
    /// buffer (the core continues unless the buffer is full or the store
    /// conflicts).
    Store(Addr, u32),
    /// A persist barrier (programmer-inserted; BEP/EP semantics).
    Barrier,
    /// Local computation for the given number of cycles.
    Compute(u32),
    /// Acquire a spin lock at `addr` (architecturally atomic; the line is
    /// in the volatile region by convention).
    Lock(Addr),
    /// Release the lock at `addr`.
    Unlock(Addr),
    /// Marks the completion of one application-level transaction
    /// (throughput accounting for the micro-benchmarks).
    TxEnd,
}

/// An immutable per-core operation sequence.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    ops: Vec<Op>,
}

impl Program {
    /// An empty program (the core finishes immediately).
    pub fn empty() -> Self {
        Self::default()
    }

    /// The operations.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if there are no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Count of store operations (useful for sizing expectations in tests).
    pub fn store_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, Op::Store(_, _)))
            .count()
    }
}

impl Op {
    /// True for memory accesses (loads and stores; locks spin on volatile
    /// lines and are not accesses in the persistence sense).
    pub const fn is_access(self) -> bool {
        matches!(self, Op::Load(_) | Op::Store(_, _))
    }

    /// The canonical JSON encoding used by corpus artifacts and analyzer
    /// reports, e.g. `{"op":"store","addr":64,"value":3}`.
    pub fn to_json_value(self) -> JsonValue {
        let f = |name: &str, rest: Vec<(String, JsonValue)>| {
            let mut fields = vec![("op".to_string(), JsonValue::Str(name.to_string()))];
            fields.extend(rest);
            JsonValue::Object(fields)
        };
        match self {
            Op::Load(a) => f("load", vec![("addr".into(), JsonValue::Num(a.as_u64()))]),
            Op::Store(a, v) => f(
                "store",
                vec![
                    ("addr".into(), JsonValue::Num(a.as_u64())),
                    ("value".into(), JsonValue::Num(u64::from(v))),
                ],
            ),
            Op::Barrier => f("barrier", vec![]),
            Op::Compute(c) => f(
                "compute",
                vec![("cycles".into(), JsonValue::Num(u64::from(c)))],
            ),
            Op::Lock(a) => f("lock", vec![("addr".into(), JsonValue::Num(a.as_u64()))]),
            Op::Unlock(a) => f("unlock", vec![("addr".into(), JsonValue::Num(a.as_u64()))]),
            Op::TxEnd => f("txend", vec![]),
        }
    }

    /// Parses the [`Self::to_json_value`] encoding.
    pub fn from_json_value(v: &JsonValue) -> Result<Op, String> {
        let name = v
            .get("op")
            .and_then(JsonValue::as_str)
            .ok_or("op object without \"op\" field")?;
        let addr = || {
            v.get("addr")
                .and_then(JsonValue::as_u64)
                .map(Addr::new)
                .ok_or(format!("op {name:?} without \"addr\""))
        };
        Ok(match name {
            "load" => Op::Load(addr()?),
            "store" => Op::Store(
                addr()?,
                v.get("value")
                    .and_then(JsonValue::as_u64)
                    .ok_or("store without \"value\"")? as u32,
            ),
            "barrier" => Op::Barrier,
            "compute" => Op::Compute(
                v.get("cycles")
                    .and_then(JsonValue::as_u64)
                    .ok_or("compute without \"cycles\"")? as u32,
            ),
            "lock" => Op::Lock(addr()?),
            "unlock" => Op::Unlock(addr()?),
            "txend" => Op::TxEnd,
            other => return Err(format!("unknown op {other:?}")),
        })
    }
}

impl Program {
    /// The program as a JSON array of [`Op::to_json_value`] objects.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::Array(self.ops.iter().map(|&op| op.to_json_value()).collect())
    }

    /// Parses the [`Self::to_json_value`] encoding.
    pub fn from_json_value(v: &JsonValue) -> Result<Program, String> {
        v.as_array()
            .ok_or_else(|| "program is not an array".to_string())?
            .iter()
            .map(Op::from_json_value)
            .collect()
    }
}

impl FromIterator<Op> for Program {
    fn from_iter<T: IntoIterator<Item = Op>>(iter: T) -> Self {
        Program {
            ops: iter.into_iter().collect(),
        }
    }
}

/// Non-consuming builder for [`Program`]s.
///
/// # Example
///
/// ```
/// use pbm_sim::ProgramBuilder;
/// use pbm_types::Addr;
///
/// let mut b = ProgramBuilder::new();
/// b.lock(Addr::new(4096))
///     .store(Addr::new(0), 7)
///     .barrier()
///     .unlock(Addr::new(4096))
///     .tx_end();
/// let p = b.build();
/// assert_eq!(p.len(), 5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    ops: Vec<Op>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a load.
    pub fn load(&mut self, addr: Addr) -> &mut Self {
        self.ops.push(Op::Load(addr));
        self
    }

    /// Appends a store of `value`.
    pub fn store(&mut self, addr: Addr, value: u32) -> &mut Self {
        self.ops.push(Op::Store(addr, value));
        self
    }

    /// Appends a persist barrier.
    pub fn barrier(&mut self) -> &mut Self {
        self.ops.push(Op::Barrier);
        self
    }

    /// Appends `cycles` of local compute.
    pub fn compute(&mut self, cycles: u32) -> &mut Self {
        self.ops.push(Op::Compute(cycles));
        self
    }

    /// Appends a lock acquire.
    pub fn lock(&mut self, addr: Addr) -> &mut Self {
        self.ops.push(Op::Lock(addr));
        self
    }

    /// Appends a lock release.
    pub fn unlock(&mut self, addr: Addr) -> &mut Self {
        self.ops.push(Op::Unlock(addr));
        self
    }

    /// Appends a transaction-end marker.
    pub fn tx_end(&mut self) -> &mut Self {
        self.ops.push(Op::TxEnd);
        self
    }

    /// Appends stores covering `bytes` bytes starting at `addr` (one store
    /// per 64-byte line), all with `value` — the shape of the paper's
    /// 512-byte entry copies.
    pub fn store_span(&mut self, addr: Addr, bytes: u64, value: u32) -> &mut Self {
        let lines = pbm_types::LineAddr::lines_for(bytes);
        for l in addr.line().span(lines) {
            self.store(l.base(), value);
        }
        self
    }

    /// Appends a raw op.
    pub fn push(&mut self, op: Op) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// Number of ops so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if no ops have been added.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Finalizes the program.
    pub fn build(&self) -> Program {
        Program {
            ops: self.ops.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trip() {
        let mut b = ProgramBuilder::new();
        assert!(b.is_empty());
        b.load(Addr::new(0))
            .store(Addr::new(64), 1)
            .barrier()
            .compute(10)
            .tx_end();
        let p = b.build();
        assert_eq!(p.len(), 5);
        assert_eq!(p.store_count(), 1);
        assert_eq!(p.ops()[0], Op::Load(Addr::new(0)));
        assert_eq!(p.ops()[2], Op::Barrier);
    }

    #[test]
    fn store_span_covers_lines() {
        let mut b = ProgramBuilder::new();
        b.store_span(Addr::new(0), 512, 9);
        let p = b.build();
        assert_eq!(p.store_count(), 8);
        assert_eq!(p.ops()[7], Op::Store(Addr::new(7 * 64), 9));
    }

    #[test]
    fn empty_program() {
        let p = Program::empty();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn from_iterator() {
        let p: Program = vec![Op::Barrier, Op::TxEnd].into_iter().collect();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn json_round_trip_covers_every_op() {
        let mut b = ProgramBuilder::new();
        b.load(Addr::new(0))
            .store(Addr::new(64), 7)
            .barrier()
            .compute(12)
            .lock(Addr::new(1 << 41))
            .unlock(Addr::new(1 << 41))
            .tx_end();
        let p = b.build();
        let back = Program::from_json_value(&p.to_json_value()).expect("parses");
        assert_eq!(back, p);
        assert_eq!(
            Op::Store(Addr::new(64), 7).to_json_value().to_json(),
            r#"{"op":"store","addr":64,"value":7}"#
        );
        assert!(Op::from_json_value(&JsonValue::Null).is_err());
        assert!(Op::from_json_value(&JsonValue::Object(vec![(
            "op".into(),
            JsonValue::Str("jmp".into())
        )]))
        .is_err());
    }

    #[test]
    fn op_access_classification() {
        assert!(Op::Load(Addr::new(0)).is_access());
        assert!(Op::Store(Addr::new(0), 1).is_access());
        for op in [
            Op::Barrier,
            Op::Compute(3),
            Op::Lock(Addr::new(0)),
            Op::Unlock(Addr::new(0)),
            Op::TxEnd,
        ] {
            assert!(!op.is_access());
        }
    }
}
