//! The simulated system: construction, the event loop, and core stepping.

use crate::event::{Event, EventQueue};
use crate::op::{Op, Program};
use pbm_cache::CacheArray;
use pbm_core::recovery::ConsistencyChecker;
use pbm_core::{BarrierSemantics, EpochArbiter};
use pbm_noc::{Mesh, MessageClass};
use pbm_nvram::{DurableSnapshot, LineValue, McTiming, NvramDevice, UndoLog};
use pbm_obs::{Observer, Sampler};
use pbm_types::{
    Addr, BankId, BarrierKind, ConfigError, CoreId, Cycle, EpochId, EpochPhase, EpochTag, LineAddr,
    MetricSample, NodeId, SimStats, SystemConfig, TraceEvent, TraceEventKind,
};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap, HashSet};

/// Byte addresses at or above this boundary are *volatile*: never epoch
/// tagged, never logged, excluded from persistence checking. Workloads put
/// locks and scratch data here. Under BSP bulk mode (whole-execution
/// persistence) the boundary is ignored and everything is tagged.
pub const VOLATILE_BASE: u64 = 1 << 40;

pub use pbm_types::{FlushReason, StallKind};

#[derive(Debug)]
pub(crate) struct CoreState {
    pub program: Program,
    pub pc: usize,
    /// Outstanding store completion times (write buffer occupancy).
    pub wb: BinaryHeap<Reverse<u64>>,
    /// Dynamic stores since the last (hardware) epoch cut.
    pub epoch_stores: u64,
    /// A hardware epoch cut is due before the next op executes.
    pub pending_auto_barrier: bool,
    /// A barrier already closed this epoch and is now waiting for it to
    /// persist (EP rule E2); retries must not close another epoch.
    pub barrier_wait: Option<EpochId>,
    pub finish: Option<Cycle>,
    /// Set while parked on an epoch persist: (since, kind).
    pub stalled: Option<(Cycle, StallKind)>,
}

impl CoreState {
    fn new(program: Program) -> Self {
        CoreState {
            program,
            pc: 0,
            wb: BinaryHeap::new(),
            epoch_stores: 0,
            pending_auto_barrier: false,
            barrier_wait: None,
            finish: None,
            stalled: None,
        }
    }
}

/// Reusable scratch buffers for the access/flush hot paths. Every buffer
/// is taken (`std::mem::take` or pool pop) for the duration of one
/// operation and returned cleared, so steady-state simulation does no
/// per-event allocation for these temporaries. Pools (rather than single
/// buffers) back the paths that nest: eviction recalls inside writebacks,
/// and transitive dependence-demand propagation.
#[derive(Debug, Default)]
pub(crate) struct Scratch {
    /// Per-bank `(line, value)` gather lists for the epoch-flush cascade.
    pub per_bank: Vec<Vec<(LineAddr, pbm_nvram::LineValue)>>,
    /// Per-bank last-writeback-arrival times.
    pub arrivals: Vec<Cycle>,
    /// Epoch line enumeration (L1 side; stays sorted, doubles as the
    /// dedup set via binary search).
    pub l1_lines: Vec<LineAddr>,
    /// Epoch line enumeration (bank side / tag clearing).
    pub lines: Vec<LineAddr>,
    /// Pool of core-list buffers (directory holders, invalidation targets).
    pub core_bufs: Vec<Vec<CoreId>>,
    /// Pool of epoch-tag buffers (dependence-demand propagation recurses).
    pub tag_bufs: Vec<Vec<EpochTag>>,
}

#[derive(Debug)]
pub(crate) struct L1State {
    pub array: CacheArray,
    /// Lines this L1 holds with write permission.
    pub exclusive: HashSet<LineAddr>,
}

#[derive(Debug)]
pub(crate) struct BankState {
    pub array: CacheArray,
    pub dir: pbm_cache::Directory,
}

/// The full simulated multicore (Figure 2) plus instrumentation.
///
/// Build one with [`System::new`], run it to completion with
/// [`System::run`], then inspect [`SimStats`] and (in checking mode) the
/// durable state at arbitrary crash points.
#[derive(Debug)]
pub struct System {
    pub(crate) cfg: SystemConfig,
    pub(crate) sem: BarrierSemantics,
    pub(crate) mesh: Mesh,
    pub(crate) mcs: Vec<McTiming>,
    pub(crate) nvram: NvramDevice,
    pub(crate) log: UndoLog,
    pub(crate) cores: Vec<CoreState>,
    pub(crate) l1s: Vec<L1State>,
    pub(crate) banks: Vec<BankState>,
    pub(crate) arbiters: Vec<EpochArbiter>,
    /// Architecturally-atomic spin locks: line -> holder.
    pub(crate) locks: HashMap<LineAddr, CoreId>,
    /// Cores parked until the given epoch persists.
    pub(crate) waiters: HashMap<EpochTag, Vec<CoreId>>,
    /// Pending flush-trigger attribution per core.
    pub(crate) flush_reasons: Vec<BTreeMap<EpochId, FlushReason>>,
    /// Flush start time per in-flight epoch (for the latency histogram).
    pub(crate) flush_started: HashMap<EpochTag, Cycle>,
    /// BSP: cycle by which an epoch's undo-log records are durable.
    pub(crate) log_ready: HashMap<EpochTag, Cycle>,
    pub(crate) queue: EventQueue,
    pub(crate) scratch: Scratch,
    pub(crate) now: Cycle,
    pub(crate) token_seq: u64,
    pub(crate) checker: Option<ConsistencyChecker>,
    pub(crate) stats: SimStats,
    /// Observability hook: cycle-stamped event tracing and periodic
    /// metric sampling. Disabled (zero-cost) by default.
    pub(crate) obs: Observer,
    /// Bank-rotation stream of the schedule perturbator (`None` = the
    /// exact, unperturbed schedule).
    pub(crate) perturb: Option<crate::perturb::PerturbRng>,
}

impl System {
    /// Builds a system running `programs[i]` on core `i`.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the configuration is inconsistent or
    /// there are more programs than cores (missing programs run empty).
    pub fn new(cfg: SystemConfig, mut programs: Vec<Program>) -> Result<Self, ConfigError> {
        let cfg = cfg.validate()?;
        if programs.len() > cfg.cores {
            return Err(ConfigError::ZeroCount {
                what: "cores (fewer cores than programs)",
            });
        }
        programs.resize_with(cfg.cores, Program::empty);
        let mesh = Mesh::new(&cfg);
        let mcs = (0..cfg.mcs)
            .map(|_| {
                McTiming::new(
                    cfg.mc_parallelism,
                    cfg.nvram_read_latency,
                    cfg.nvram_write_latency,
                )
            })
            .collect();
        let bank_shift = (cfg.llc_banks as u64).trailing_zeros();
        let l1s = (0..cfg.cores)
            .map(|_| L1State {
                array: CacheArray::new(cfg.l1_sets(), cfg.l1_assoc, 0),
                exclusive: HashSet::new(),
            })
            .collect();
        let banks = (0..cfg.llc_banks)
            .map(|_| BankState {
                array: CacheArray::new(cfg.llc_sets(), cfg.llc_assoc, bank_shift),
                dir: pbm_cache::Directory::new(),
            })
            .collect();
        let arbiters = (0..cfg.cores)
            .map(|i| EpochArbiter::new(CoreId::new(i as u32), &cfg))
            .collect();
        let sem = BarrierSemantics::for_model(cfg.persistency, cfg.bsp_epoch_size);
        Ok(System {
            sem,
            mesh,
            mcs,
            nvram: NvramDevice::new(),
            log: UndoLog::new(),
            cores: programs.into_iter().map(CoreState::new).collect(),
            l1s,
            banks,
            arbiters,
            locks: HashMap::new(),
            waiters: HashMap::new(),
            flush_reasons: vec![BTreeMap::new(); cfg.cores],
            flush_started: HashMap::new(),
            log_ready: HashMap::new(),
            queue: EventQueue::new(),
            scratch: Scratch::default(),
            now: Cycle::ZERO,
            token_seq: 1,
            checker: None,
            stats: SimStats::new(),
            obs: Observer::disabled(),
            perturb: None,
            cfg,
        })
    }

    /// Enables crash-consistency instrumentation: the NVRAM journals every
    /// durable write and the [`ConsistencyChecker`] records every committed
    /// store and inter-thread dependence. Call before [`System::run`].
    pub fn enable_checking(&mut self) {
        self.nvram = NvramDevice::with_history();
        self.checker = Some(ConsistencyChecker::new());
    }

    /// Replaces the observer wholesale (custom sink / sampler setups).
    /// Call before [`System::run`].
    pub fn set_observer(&mut self, obs: Observer) {
        self.obs = obs;
    }

    /// Enables cycle-stamped event tracing into an in-memory buffer,
    /// preserving any sampler already attached. Retrieve the events after
    /// the run with [`System::take_trace_events`].
    pub fn enable_tracing(&mut self) {
        let old = std::mem::take(&mut self.obs);
        let mut obs = Observer::buffering();
        if let Some(s) = old.into_sampler() {
            obs = obs.with_sampler(s);
        }
        self.obs = obs;
    }

    /// Enables periodic metric sampling every `interval` cycles,
    /// preserving the current sink. Retrieve the rows after the run with
    /// [`System::take_metric_samples`].
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn enable_metrics(&mut self, interval: Cycle) {
        let old = std::mem::take(&mut self.obs);
        self.obs = old.with_sampler(Sampler::every(interval));
    }

    /// Drains the trace events recorded so far (empty unless
    /// [`System::enable_tracing`] was called).
    pub fn take_trace_events(&mut self) -> Vec<TraceEvent> {
        self.obs.take_events()
    }

    /// Drains the metric samples collected so far (empty unless
    /// [`System::enable_metrics`] was called).
    pub fn take_metric_samples(&mut self) -> Vec<MetricSample> {
        self.obs.take_samples()
    }

    /// Records a trace event at the current cycle. The kinds are plain
    /// `Copy` structs, so constructing one unconditionally costs nothing
    /// observable; the observer's `enabled` flag gates the sink call.
    #[inline]
    pub(crate) fn emit(&mut self, kind: TraceEventKind) {
        if self.obs.is_enabled() {
            self.obs.record(TraceEvent::new(self.now, kind));
        }
    }

    /// Sends a message on the mesh, tracing the injection when enabled.
    /// All protocol traffic goes through here (never `self.mesh.send`
    /// directly) so the NoC track in exported traces is complete.
    #[inline]
    pub(crate) fn send_msg(
        &mut self,
        src: NodeId,
        dst: NodeId,
        class: MessageClass,
        at: Cycle,
    ) -> Cycle {
        let arrival = self.mesh.send(src, dst, class, at);
        if self.obs.is_enabled() {
            self.obs.record(TraceEvent::new(
                at,
                TraceEventKind::NocSend {
                    src,
                    dst,
                    class: class.obs_class(),
                    arrival,
                },
            ));
        }
        arrival
    }

    /// Takes a metric sample if the sampler is attached and due at the
    /// current cycle. Called whenever simulated time advances.
    #[inline]
    fn maybe_sample(&mut self) {
        if !self.obs.sample_due(self.now) {
            return;
        }
        let sample = MetricSample {
            cycle: self.now,
            mc_queue_depth: self.mcs.iter().map(|m| m.pending_writes(self.now)).sum(),
            nvram_writes: self.stats.nvram_writes
                + self.stats.log_writes
                + self.stats.checkpoint_writes,
            nvram_reads: self.stats.nvram_reads,
            noc_messages: self.mesh.message_count(),
            epochs_persisted: self.stats.epochs_persisted,
            stalled_cores: self.cores.iter().filter(|c| c.stalled.is_some()).count() as u32,
            online_stall_cycles: self.stats.online_persist_stall_cycles,
            barrier_stall_cycles: self.stats.barrier_stall_cycles,
        };
        self.obs.push_sample(sample);
    }

    /// Emits the epoch-lifecycle pair for a barrier/split cut: the closed
    /// epoch completes and the arbiter's new current epoch opens.
    pub(crate) fn emit_epoch_cut(&mut self, core: CoreId, closed: EpochId) {
        if self.obs.is_enabled() {
            let opened = self.arbiters[core.index()].ledger().current_tag();
            self.emit(TraceEventKind::EpochPhase {
                tag: EpochTag::new(core, closed),
                phase: EpochPhase::Completed,
            });
            self.emit(TraceEventKind::EpochPhase {
                tag: opened,
                phase: EpochPhase::Ongoing,
            });
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// True when the configuration buffers epochs (lazy barrier variants).
    pub(crate) fn epochs_enabled(&self) -> bool {
        self.cfg.barrier.is_buffered()
    }

    /// True if stores to `line` get an epoch tag under this configuration.
    pub(crate) fn is_tagged_line(&self, line: LineAddr) -> bool {
        self.epochs_enabled()
            && (self.sem.needs_logging() // BSP: whole-execution persistence
                || line.base().as_u64() < VOLATILE_BASE)
    }

    /// The LLC bank owning `line`.
    pub(crate) fn bank_of(&self, line: LineAddr) -> BankId {
        BankId::new((line.as_u64() % self.cfg.llc_banks as u64) as u32)
    }

    /// Mints a globally unique store token carrying `value` in its low
    /// 24 bits.
    pub(crate) fn mint_token(&mut self, value: u32) -> LineValue {
        let t = (self.token_seq << 24) | u64::from(value & 0x00FF_FFFF);
        self.token_seq += 1;
        t
    }

    /// Extracts the application value from a store token.
    pub fn token_value(token: LineValue) -> u32 {
        (token & 0x00FF_FFFF) as u32
    }

    /// Runs every core's program to completion (including the final epoch
    /// drain) and returns the aggregated statistics.
    ///
    /// # Panics
    ///
    /// Panics if the simulation wedges (a core is parked on an epoch whose
    /// flush never completes) — that is a protocol bug, not a workload
    /// condition.
    pub fn run(&mut self) -> SimStats {
        if self.obs.is_enabled() && self.epochs_enabled() {
            // Open every core's first epoch on the trace timeline.
            for i in 0..self.cores.len() {
                let tag = self.arbiters[i].ledger().current_tag();
                self.emit(TraceEventKind::EpochPhase {
                    tag,
                    phase: EpochPhase::Ongoing,
                });
            }
        }
        for i in 0..self.cores.len() {
            self.queue
                .schedule(Cycle::ZERO, Event::Step(CoreId::new(i as u32)));
        }
        self.drain_queue();
        let unfinished: Vec<usize> = self
            .cores
            .iter()
            .enumerate()
            .filter(|(_, c)| c.finish.is_none())
            .map(|(i, _)| i)
            .collect();
        assert!(
            unfinished.is_empty(),
            "simulation wedged at {} with cores {unfinished:?} unfinished",
            self.now
        );
        self.drain_epochs();
        self.finalize_stats();
        self.stats.clone()
    }

    fn drain_queue(&mut self) {
        let mut processed: u64 = 0;
        let budget = self.event_budget();
        while let Some((t, ev)) = self.queue.pop() {
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.mesh.advance_to(t);
            self.maybe_sample();
            processed += 1;
            if processed > budget {
                panic!(
                    "event budget exceeded at {} — livelock suspected\n{}",
                    self.now,
                    self.debug_state()
                );
            }
            match ev {
                Event::Step(core) => self.step_core(core),
                Event::BankAck(core, epoch, bank) => {
                    self.emit(TraceEventKind::BankAck {
                        tag: EpochTag::new(core, epoch),
                        bank,
                    });
                    let actions = self.arbiters[core.index()].bank_ack(epoch);
                    self.apply_actions(core, actions);
                    // The next epoch of this core may have stalled on IDT
                    // sources; make sure those sources are asked to flush.
                    self.propagate_dependence_demand(core);
                }
            }
        }
    }

    /// A generous livelock watchdog: no healthy run needs more than this
    /// many events (ops x constant factor plus lock-spin slack).
    fn event_budget(&self) -> u64 {
        let ops: u64 = self
            .cores
            .iter()
            .map(|c| c.program.len() as u64)
            .sum::<u64>()
            .max(1);
        ops * 2_000 + 10_000_000
    }

    /// One-line-per-core diagnostic dump for wedge/livelock panics.
    fn debug_state(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (i, c) in self.cores.iter().enumerate() {
            let arb = &self.arbiters[i];
            let _ = writeln!(
                s,
                "C{i}: pc={}/{} stalled={:?} phase={:?} current={} frontier={:?} deps={:?}",
                c.pc,
                c.program.len(),
                c.stalled,
                arb.phase(),
                arb.ledger().current(),
                arb.ledger().first_unpersisted(),
                match arb.phase() {
                    pbm_core::FlushPhase::WaitingDeps(e) => arb.idt().sources_of(e).to_vec(),
                    _ => Vec::new(),
                },
            );
        }
        let _ = writeln!(s, "waiters: {:?}", self.waiters.keys().collect::<Vec<_>>());
        let _ = writeln!(s, "locks: {:?}", self.locks);
        s
    }

    /// After all cores retire, flush every remaining epoch so the durable
    /// state is complete (counted under [`FlushReason::Drain`]).
    fn drain_epochs(&mut self) {
        if !self.epochs_enabled() {
            return;
        }
        for i in 0..self.cores.len() {
            let core = CoreId::new(i as u32);
            // Close the ongoing epoch if it dirtied anything.
            let tag = self.arbiters[i].ledger().current_tag();
            let has_lines = self.l1s[i].array.epoch_len(tag) > 0
                || self.banks.iter().any(|b| b.array.epoch_len(tag) > 0);
            if has_lines {
                let closed = self.arbiters[i].barrier();
                self.emit_epoch_cut(core, closed);
            }
            if let Some(frontier) = self.arbiters[i].ledger().first_unpersisted() {
                let last_completed = self.arbiters[i].ledger().current().prev();
                if let Some(last) = last_completed {
                    if frontier <= last {
                        self.request_flush(core, last, FlushReason::Drain);
                    }
                }
            }
        }
        self.drain_queue();
    }

    fn finalize_stats(&mut self) {
        self.stats.cycles = self
            .cores
            .iter()
            .filter_map(|c| c.finish)
            .map(Cycle::as_u64)
            .max()
            .unwrap_or(0);
        self.stats.noc_messages = self.mesh.message_count();
        self.stats.noc_flits = self.mesh.flit_count();
        for arb in &self.arbiters {
            self.stats.deadlock_splits += arb.split_count();
            self.stats.idt_recorded += arb.idt().recorded_count();
            self.stats.idt_overflows += arb.idt().overflow_count();
            self.stats.epochs_created += arb.ledger().completed_count();
        }
    }

    /// Durable NVRAM state restricted to the persistent region, at `at`.
    /// Requires [`System::enable_checking`] before the run.
    pub fn persistent_snapshot_at(&self, at: Cycle) -> DurableSnapshot {
        let snap = self.nvram.snapshot_at(at);
        let lines: HashMap<LineAddr, LineValue> = snap
            .iter()
            .filter(|(l, _)| l.base().as_u64() < VOLATILE_BASE || self.sem.needs_logging())
            .collect();
        DurableSnapshot::new(lines, at)
    }

    /// The consistency checker journal (populated when checking was
    /// enabled).
    pub fn checker(&self) -> Option<&ConsistencyChecker> {
        self.checker.as_ref()
    }

    /// Per-core retirement times of the last run (None = never finished).
    pub fn finish_times(&self) -> Vec<Option<Cycle>> {
        self.cores.iter().map(|c| c.finish).collect()
    }

    /// NoC head-flit queueing per virtual network (congestion diagnostic).
    pub fn noc_wait_cycles(&self) -> [u64; 3] {
        self.mesh.wait_cycles()
    }

    /// The undo log (BSP bulk mode).
    pub fn undo_log(&self) -> &UndoLog {
        &self.log
    }

    /// Durable value of `line` right now (post-run inspection).
    pub fn durable_line(&self, line: LineAddr) -> Option<LineValue> {
        self.nvram.peek(line)
    }

    /// Initializes durable memory before the run: the line containing
    /// `addr` holds a token carrying `value`, durable at cycle 0, and a
    /// clean copy is installed in its LLC bank (warm start — the paper's
    /// workloads run to completion from a warmed cache, so cold compulsory
    /// misses should not dominate). Workloads use this to lay out
    /// pre-existing persistent data structures.
    pub fn preload(&mut self, addr: Addr, value: u32) {
        let line = addr.line();
        let token = self.mint_token(value);
        self.nvram.persist(line, token, Cycle::ZERO);
        let bank = self.bank_of(line);
        let bi = bank.index();
        if !self.banks[bi].array.contains(line) {
            // Room is guaranteed unless a workload preloads more than the
            // LLC holds; fall back to leaving the line in NVRAM only.
            if matches!(
                self.banks[bi].array.victim_for(line),
                pbm_cache::VictimChoice::Room
            ) {
                self.banks[bi]
                    .array
                    .install(pbm_cache::CacheLine::clean(line, token));
            }
        }
        if let Some(ck) = self.checker.as_mut() {
            ck.record_initial(line, token);
        }
    }

    // ------------------------------------------------------------------
    // Core stepping
    // ------------------------------------------------------------------

    fn step_core(&mut self, core: CoreId) {
        let i = core.index();
        if self.cores[i].finish.is_some() {
            return;
        }
        // Account a stall that just ended.
        if let Some((since, kind)) = self.cores[i].stalled.take() {
            let waited = self.now.saturating_sub(since).as_u64();
            match kind {
                StallKind::OnlinePersist => self.stats.online_persist_stall_cycles += waited,
                StallKind::Barrier => self.stats.barrier_stall_cycles += waited,
            }
            self.emit(TraceEventKind::StallEnd {
                core,
                kind,
                waited: Cycle::new(waited),
            });
        }
        // A hardware epoch cut is due before anything else.
        if self.cores[i].pending_auto_barrier {
            match self.exec_barrier(core) {
                BarrierOutcome::Done(at) => {
                    self.cores[i].pending_auto_barrier = false;
                    self.queue.schedule(at, Event::Step(core));
                }
                BarrierOutcome::Blocked => {}
            }
            return;
        }
        let Some(&op) = self.cores[i].program.ops().get(self.cores[i].pc) else {
            self.cores[i].finish = Some(self.now);
            return;
        };
        match self.exec_op(core, op) {
            StepOutcome::Next(at) => {
                self.cores[i].pc += 1;
                self.queue.schedule(at, Event::Step(core));
            }
            StepOutcome::RetryAt(at) => {
                self.queue.schedule(at, Event::Step(core));
            }
            StepOutcome::Blocked => {
                // Parked; a persist wakeup will reschedule the Step.
            }
        }
    }

    fn exec_op(&mut self, core: CoreId, op: Op) -> StepOutcome {
        let now = self.now;
        match op {
            Op::Compute(cycles) => StepOutcome::Next(now + u64::from(cycles)),
            Op::TxEnd => {
                self.stats.transactions += 1;
                StepOutcome::Next(now + 1)
            }
            Op::Load(addr) => match self.do_access(core, addr.line(), None) {
                crate::access::Access::Done { at } => {
                    self.stats.loads += 1;
                    self.stats.load_cycles += (at - now).as_u64();
                    #[cfg(feature = "trace-loads")]
                    if (at - now).as_u64() > 500 {
                        eprintln!(
                            "slow load: core={core} line={} lat={}",
                            addr.line(),
                            (at - now).as_u64()
                        );
                    }
                    StepOutcome::Next(at)
                }
                crate::access::Access::Blocked { tag } => {
                    self.park(core, tag, StallKind::OnlinePersist);
                    StepOutcome::Blocked
                }
            },
            Op::Store(addr, value) => self.exec_store(core, addr, value),
            Op::Barrier => match self.exec_barrier(core) {
                BarrierOutcome::Done(at) => StepOutcome::Next(at),
                BarrierOutcome::Blocked => StepOutcome::Blocked,
            },
            Op::Lock(addr) => self.exec_lock(core, addr),
            Op::Unlock(addr) => self.exec_unlock(core, addr),
        }
    }

    fn exec_store(&mut self, core: CoreId, addr: Addr, value: u32) -> StepOutcome {
        let i = core.index();
        let now = self.now;
        // Write-buffer occupancy.
        while let Some(&Reverse(t)) = self.cores[i].wb.peek() {
            if Cycle::new(t) <= now {
                self.cores[i].wb.pop();
            } else {
                break;
            }
        }
        if self.cores[i].wb.len() >= self.cfg.write_buffer {
            let Reverse(first_free) = *self.cores[i].wb.peek().expect("buffer nonempty");
            return StepOutcome::RetryAt(Cycle::new(first_free));
        }
        match self.do_access(core, addr.line(), Some(value)) {
            crate::access::Access::Done { at } => {
                self.stats.stores += 1;
                if self.cfg.barrier == BarrierKind::WriteThrough {
                    // Strict persistency rule S2: the core may not proceed
                    // until this store is durable.
                    return StepOutcome::Next(at);
                }
                self.cores[i].wb.push(Reverse(at.as_u64()));
                self.cores[i].epoch_stores += 1;
                if let Some(cut) = self.sem.hardware_epoch_size() {
                    if self.cores[i].epoch_stores >= cut {
                        self.cores[i].pending_auto_barrier = true;
                    }
                }
                StepOutcome::Next(now + 1)
            }
            crate::access::Access::Blocked { tag } => {
                self.park(core, tag, StallKind::OnlinePersist);
                StepOutcome::Blocked
            }
        }
    }

    pub(crate) fn exec_barrier(&mut self, core: CoreId) -> BarrierOutcome {
        let i = core.index();
        if !self.epochs_enabled() {
            // NP / write-through: a barrier is a no-op (WT is already
            // strictly ordered).
            self.stats.barriers += 1;
            return BarrierOutcome::Done(self.now + 1);
        }
        // Resuming an EP-stalled barrier: the epoch was already closed.
        if let Some(e) = self.cores[i].barrier_wait {
            if self.arbiters[i].is_persisted(e) {
                self.cores[i].barrier_wait = None;
                return BarrierOutcome::Done(self.now + 1);
            }
            let tag = EpochTag::new(core, e);
            self.park(core, tag, StallKind::Barrier);
            return BarrierOutcome::Blocked;
        }
        let ledger = self.arbiters[i].ledger();
        if ledger.inflight() >= self.cfg.inflight_epochs {
            // 3-bit epoch-id window is full: wait for the frontier epoch.
            let frontier = ledger.first_unpersisted().expect("window full");
            let tag = EpochTag::new(core, frontier);
            self.request_flush(core, frontier, FlushReason::BackPressure);
            self.park(core, tag, StallKind::Barrier);
            return BarrierOutcome::Blocked;
        }
        let closed = self.arbiters[i].barrier();
        self.emit_epoch_cut(core, closed);
        self.stats.barriers += 1;
        self.cores[i].epoch_stores = 0;
        if self.sem.barrier_stalls() {
            // EP rule E2: the barrier itself waits for the epoch.
            let tag = EpochTag::new(core, closed);
            self.request_flush(core, closed, FlushReason::Barrier);
            if !self.arbiters[i].is_persisted(closed) {
                self.cores[i].barrier_wait = Some(closed);
                self.park(core, tag, StallKind::Barrier);
                return BarrierOutcome::Blocked;
            }
        } else if self.cfg.barrier.has_pf() {
            // Proactive flushing: start persisting the completed epoch now.
            self.request_flush(core, closed, FlushReason::Proactive);
        }
        BarrierOutcome::Done(self.now + 1)
    }

    fn exec_lock(&mut self, core: CoreId, addr: Addr) -> StepOutcome {
        let line = addr.line();
        match self.locks.get(&line) {
            Some(holder) if *holder != core => {
                // Spin locally, retry with a deterministic per-core backoff.
                let backoff = 30 + (u64::from(core.as_u32()) * 7) % 50;
                self.stats.lock_wait_cycles += backoff;
                StepOutcome::RetryAt(self.now + backoff)
            }
            _ => {
                // Free, or already held by us (retry after a blocked fill).
                self.locks.insert(line, core);
                match self.do_access(core, line, Some(1)) {
                    crate::access::Access::Done { at } => {
                        self.stats.stores += 1;
                        StepOutcome::Next(at)
                    }
                    crate::access::Access::Blocked { tag } => {
                        self.park(core, tag, StallKind::OnlinePersist);
                        StepOutcome::Blocked
                    }
                }
            }
        }
    }

    fn exec_unlock(&mut self, core: CoreId, addr: Addr) -> StepOutcome {
        let line = addr.line();
        let holder = self.locks.remove(&line);
        debug_assert_eq!(holder, Some(core), "unlock of a lock we don't hold");
        match self.do_access(core, line, Some(0)) {
            crate::access::Access::Done { .. } => {
                self.stats.stores += 1;
                StepOutcome::Next(self.now + 1)
            }
            crate::access::Access::Blocked { tag } => {
                self.park(core, tag, StallKind::OnlinePersist);
                StepOutcome::Blocked
            }
        }
    }

    /// Borrows a core-list scratch buffer from the pool (empty).
    pub(crate) fn take_core_buf(&mut self) -> Vec<CoreId> {
        self.scratch.core_bufs.pop().unwrap_or_default()
    }

    /// Returns a core-list scratch buffer to the pool.
    pub(crate) fn put_core_buf(&mut self, mut buf: Vec<CoreId>) {
        buf.clear();
        self.scratch.core_bufs.push(buf);
    }

    /// Borrows an epoch-tag scratch buffer from the pool (empty).
    pub(crate) fn take_tag_buf(&mut self) -> Vec<EpochTag> {
        self.scratch.tag_bufs.pop().unwrap_or_default()
    }

    /// Returns an epoch-tag scratch buffer to the pool.
    pub(crate) fn put_tag_buf(&mut self, mut buf: Vec<EpochTag>) {
        buf.clear();
        self.scratch.tag_bufs.push(buf);
    }

    /// Parks `core` until `tag` persists (the flush request must already be
    /// in flight — [`Self::request_flush`] arranges that).
    pub(crate) fn park(&mut self, core: CoreId, tag: EpochTag, kind: StallKind) {
        debug_assert!(
            !self.arbiters[tag.core.index()].is_persisted(tag.epoch),
            "parking on an already-persisted epoch"
        );
        self.stats.parks += 1;
        self.cores[core.index()].stalled = Some((self.now, kind));
        self.emit(TraceEventKind::StallBegin { core, kind, tag });
        self.waiters.entry(tag).or_default().push(core);
    }
}

/// Outcome of executing one op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StepOutcome {
    Next(Cycle),
    RetryAt(Cycle),
    Blocked,
}

/// Outcome of a (possibly hardware-inserted) persist barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BarrierOutcome {
    Done(Cycle),
    Blocked,
}
