//! Seeded schedule perturbation.
//!
//! The simulator is deterministic: one program, one schedule. That is
//! exactly wrong for crash-consistency testing, where bugs hide in
//! message-arrival interleavings the default schedule never produces. A
//! [`SchedulePerturbation`] jitters the three protocol-legal degrees of
//! freedom — NoC delivery latency, memory-controller service time, and the
//! order in which a flush walks the LLC banks — so the *same* program
//! explores many interleavings, one per seed, while each individual run
//! stays fully deterministic and therefore replayable from a corpus
//! artifact.
//!
//! "Protocol-legal" means no perturbation can change architectural
//! results: messages only arrive later, device accesses only take longer,
//! and bank service order was never specified to begin with. Any
//! consistency violation found under perturbation is a real protocol bug,
//! not a model artifact.

use crate::system::System;
use pbm_types::Cycle;

/// A seeded, bounded perturbation of the timing model.
///
/// Apply with [`System::set_perturbation`] before [`System::run`]. The
/// default ([`SchedulePerturbation::none`]) leaves the simulator
/// cycle-exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulePerturbation {
    /// Master seed; every jitter stream derives from it.
    pub seed: u64,
    /// Max extra cycles per NoC message delivery (0 = exact).
    pub noc_jitter: u64,
    /// Max extra cycles per memory-controller access (0 = exact).
    pub mc_jitter: u64,
    /// Rotate the per-flush LLC bank service order.
    pub bank_rotation: bool,
}

impl SchedulePerturbation {
    /// No perturbation: the simulator stays cycle-exact.
    pub fn none() -> Self {
        SchedulePerturbation {
            seed: 0,
            noc_jitter: 0,
            mc_jitter: 0,
            bank_rotation: true,
        }
    }

    /// The default fuzzing perturbation for `seed`: a couple of hops of
    /// NoC jitter, a few percent of device-latency jitter, and bank
    /// rotation — enough to reorder persist completions without drowning
    /// the timing model in noise.
    pub fn from_seed(seed: u64) -> Self {
        SchedulePerturbation {
            seed,
            noc_jitter: 6,
            mc_jitter: 24,
            bank_rotation: true,
        }
    }

    /// True if this perturbation changes nothing.
    pub fn is_none(&self) -> bool {
        self.noc_jitter == 0 && self.mc_jitter == 0 && !self.bank_rotation
    }
}

impl Default for SchedulePerturbation {
    fn default() -> Self {
        Self::none()
    }
}

/// SplitMix64 stream used for the bank-rotation draws.
#[derive(Debug, Clone)]
pub(crate) struct PerturbRng {
    state: u64,
}

impl PerturbRng {
    pub(crate) fn new(seed: u64) -> Self {
        PerturbRng { state: seed }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl System {
    /// Installs a schedule perturbation. Call before [`System::run`].
    ///
    /// Distinct sub-seeds are derived for the mesh, each memory
    /// controller, and the bank-rotation stream, so the jitter streams are
    /// mutually independent; the whole run remains a deterministic
    /// function of `p.seed`.
    pub fn set_perturbation(&mut self, p: &SchedulePerturbation) {
        self.mesh
            .set_jitter(p.noc_jitter, p.seed ^ 0x6E6F_635F_6A69_7474);
        for (i, mc) in self.mcs.iter_mut().enumerate() {
            mc.set_jitter(
                p.mc_jitter,
                p.seed ^ 0x6D63_5F6A_6974_7465 ^ ((i as u64) << 48),
            );
        }
        self.perturb = if p.bank_rotation && !p.is_none() {
            Some(PerturbRng::new(p.seed ^ 0x6261_6E6B_5F72_6F74))
        } else {
            None
        };
    }

    /// The bank index offset for the next epoch flush (0 when no
    /// perturbation is installed).
    pub(crate) fn bank_rotation(&mut self, nbanks: usize) -> usize {
        match (&mut self.perturb, nbanks) {
            (Some(rng), n) if n > 1 => (rng.next_u64() % n as u64) as usize,
            _ => 0,
        }
    }

    /// The distinct cycles at which durable state changed, sorted
    /// ascending — the exhaustive crash-sweep points for this run.
    ///
    /// # Panics
    ///
    /// Panics unless [`System::enable_checking`] was called before the run.
    pub fn persist_times(&self) -> Vec<Cycle> {
        self.nvram.persist_times()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;
    use pbm_types::{Addr, SystemConfig};

    fn programs() -> Vec<crate::Program> {
        (0..4u64)
            .map(|c| {
                let mut b = ProgramBuilder::new();
                for i in 0..6 {
                    b.store(Addr::new((c * 64 + i) * 64), (i + 1) as u32)
                        .barrier();
                }
                b.build()
            })
            .collect()
    }

    fn run(p: Option<SchedulePerturbation>) -> (pbm_types::SimStats, Vec<Cycle>) {
        let mut sys = System::new(SystemConfig::small_test(), programs()).unwrap();
        sys.enable_checking();
        if let Some(p) = p {
            sys.set_perturbation(&p);
        }
        let stats = sys.run();
        let times = sys.persist_times();
        (stats, times)
    }

    #[test]
    fn no_perturbation_is_byte_identical_to_default() {
        let (a, ta) = run(None);
        let (b, tb) = run(Some(SchedulePerturbation::none()));
        assert_eq!(a, b);
        assert_eq!(ta, tb);
    }

    #[test]
    fn same_seed_reproduces_and_seeds_differ() {
        let (a, ta) = run(Some(SchedulePerturbation::from_seed(42)));
        let (b, tb) = run(Some(SchedulePerturbation::from_seed(42)));
        assert_eq!(a, b, "a perturbed run is deterministic per seed");
        assert_eq!(ta, tb);
        let (_, tc) = run(Some(SchedulePerturbation::from_seed(43)));
        assert_ne!(ta, tc, "different seeds explore different schedules");
    }

    #[test]
    fn perturbation_never_changes_architectural_results() {
        let (base, _) = run(None);
        for seed in [1, 2, 3] {
            let (p, _) = run(Some(SchedulePerturbation::from_seed(seed)));
            assert_eq!(p.stores, base.stores);
            assert_eq!(p.barriers, base.barriers);
            assert_eq!(p.epochs_persisted, base.epochs_persisted);
            assert_eq!(p.epoch_flush_writes, base.epoch_flush_writes);
        }
    }
}
