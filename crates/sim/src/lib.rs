//! Deterministic discrete-event multicore simulator for the `pbm`
//! persist-barrier study.
//!
//! Wires the substrates together into the system of Figure 2 — cores with
//! private L1s, a multi-banked shared LLC, corner memory controllers over
//! NVRAM, all on a 2D mesh — and executes per-core [`Program`]s under a
//! configurable persist barrier ([`pbm_types::BarrierKind`]) and persistency
//! model ([`pbm_types::PersistencyKind`]).
//!
//! The simulator is *transaction-timed*: each memory operation's latency is
//! computed by walking the real protocol path (L1 → mesh → LLC bank →
//! directory / owner transfer → memory controller) against stateful
//! contention models (mesh link occupancy, MC device banks), while the
//! epoch machinery — conflicts, IDT, proactive flushing, the multi-banked
//! flush handshake — runs the pure logic from `pbm-core` and schedules its
//! asynchronous completions (BankAcks, persists, wakeups) on a discrete
//! event queue. Identical inputs produce identical cycle counts.
//!
//! # Example
//!
//! ```
//! use pbm_sim::{ProgramBuilder, System};
//! use pbm_types::{Addr, SystemConfig};
//!
//! let mut cfg = SystemConfig::small_test();
//! cfg.cores = 1;
//! cfg.llc_banks = 4;
//! let mut prog = ProgramBuilder::new();
//! prog.store(Addr::new(0), 1).barrier().store(Addr::new(64), 2).barrier();
//! let mut sys = System::new(cfg, vec![prog.build()]).expect("valid config");
//! let stats = sys.run();
//! assert_eq!(stats.stores, 2);
//! assert_eq!(stats.barriers, 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod access;
mod event;
mod flush;
mod op;
mod perturb;
mod system;
mod trace;

pub use event::{Event, EventQueue, HeapEventQueue};
pub use op::{Op, Program, ProgramBuilder};
pub use perturb::SchedulePerturbation;
pub use system::{FlushReason, System, VOLATILE_BASE};
pub use trace::TraceParseError;
