//! The demand memory path: L1 probe, directory/owner transfer, LLC fill,
//! conflict detection, and store commit — the code paths on which the
//! paper's conflicts (§3.1, §3.2) arise and are resolved.

use crate::system::{FlushReason, System};
use pbm_cache::{CacheLine, VictimChoice};
use pbm_noc::MessageClass;
use pbm_nvram::LineValue;
use pbm_types::{BankId, BarrierKind, CoreId, Cycle, EpochTag, LineAddr, NodeId, TraceEventKind};

/// Result of a demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Access {
    /// Completed; the core may proceed at `at`.
    Done {
        /// Completion time.
        at: Cycle,
    },
    /// The access hit an epoch conflict (or a blocked eviction); the core
    /// must wait until `tag` persists, then retry. The flush request has
    /// already been issued.
    Blocked {
        /// The epoch being waited on.
        tag: EpochTag,
    },
}

/// Outcome of inter-thread conflict resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConflictOutcome {
    /// IDT recorded the dependence; the request proceeds.
    Proceed,
    /// Online flush demanded; wait for the tag.
    Wait(EpochTag),
}

impl System {
    /// The epoch tag a store by `core` to `line` would carry, if any.
    fn current_tag_for(&self, core: CoreId, line: LineAddr) -> Option<EpochTag> {
        if self.is_tagged_line(line) {
            Some(self.arbiters[core.index()].ledger().current_tag())
        } else {
            None
        }
    }

    /// Performs a demand access by `core` to `line`; `store` carries the
    /// value for stores, `None` for loads.
    pub(crate) fn do_access(&mut self, core: CoreId, line: LineAddr, store: Option<u32>) -> Access {
        let now = self.now;
        let i = core.index();
        let l1_lat = self.cfg.l1_latency;
        let is_store = store.is_some();

        // ---------------- L1 probe ----------------
        if let Some(l) = self.l1s[i].array.peek(line).copied() {
            if !is_store {
                self.l1s[i].array.access(line);
                self.stats.l1_hits += 1;
                return Access::Done { at: now + l1_lat };
            }
            let new_tag = self.current_tag_for(core, line);
            if let (Some(old), true) = (l.tag, l.tag != new_tag) {
                debug_assert_eq!(old.core, core, "L1 lines carry our own tags");
                if self.arbiters[core.index()].is_persisted(old.epoch) {
                    // Stale tag: the epoch persisted; clean bookkeeping.
                    self.l1s[i].array.mark_written_back(line);
                } else {
                    // Intra-thread conflict (§3.2): this line belongs to
                    // one of our earlier, un-persisted epochs.
                    self.stats.conflicts_intra += 1;
                    self.emit(TraceEventKind::ConflictIntra {
                        core,
                        epoch: old.epoch,
                    });
                    self.request_flush(core, old.epoch, FlushReason::Conflict);
                    return Access::Blocked { tag: old };
                }
            }
            if self.l1s[i].exclusive.contains(&line) {
                self.l1s[i].array.access(line);
                self.stats.l1_hits += 1;
                let value = store.expect("store path");
                return self.commit_store(core, line, value, l.tag, now + l1_lat);
            }
            // Shared copy: upgrade through the bank below.
        }
        self.stats.l1_misses += 1;

        // ---------------- request to the home bank ----------------
        let b = self.bank_of(line);
        let bi = b.index();
        let t_req = self.send_msg(
            Self::node_core(core),
            Self::node_bank(b),
            MessageClass::Control,
            now + l1_lat,
        );
        let mut t = t_req + self.cfg.llc_latency;

        // ---------------- owner transfer ----------------
        // Tags already resolved by IDT in this access (avoids re-detecting
        // the same conflict at the LLC after the owner's writeback).
        let mut resolved: Option<EpochTag> = None;
        if let Some(owner) = self.banks[bi].dir.owner(line) {
            if owner != core {
                let oi = owner.index();
                if let Some(ol) = self.l1s[oi].array.peek(line).copied() {
                    if ol.is_epoch_tagged() {
                        let src = ol.tag.expect("tagged");
                        match self.inter_conflict(core, src) {
                            ConflictOutcome::Wait(tag) => return Access::Blocked { tag },
                            ConflictOutcome::Proceed => resolved = Some(src),
                        }
                    }
                }
                // Re-read: conflict resolution may have flushed the line
                // (PF on a split epoch), cleaning or even clearing it.
                if let Some(ol) = self.l1s[oi].array.peek(line).copied() {
                    if ol.is_dirty() {
                        // Forward request to the owner; it writes back.
                        let t_fwd = self.send_msg(
                            Self::node_bank(b),
                            Self::node_core(owner),
                            MessageClass::Control,
                            t,
                        );
                        let t_data = self.send_msg(
                            Self::node_core(owner),
                            Self::node_bank(b),
                            MessageClass::Data,
                            t_fwd + self.cfg.l1_latency,
                        );
                        match self.llc_accept_writeback(b, line, ol.value, ol.tag) {
                            Ok(()) => {}
                            Err(blocker) => return self.blocked_on(blocker, FlushReason::Conflict),
                        }
                        // The owner keeps a clean shared copy on a remote
                        // load, or invalidates on a remote store.
                        self.l1s[oi].array.mark_written_back(line);
                        self.l1s[oi].exclusive.remove(&line);
                        if is_store {
                            self.l1s[oi].array.remove(line);
                            self.banks[bi].dir.drop_core(line, owner);
                        } else {
                            self.banks[bi].dir.downgrade_owner(line);
                        }
                        t = t.max(t_data);
                    } else {
                        // Stale ownership (clean-exclusive): downgrade.
                        self.l1s[oi].exclusive.remove(&line);
                        self.banks[bi].dir.downgrade_owner(line);
                    }
                } else {
                    // Owner silently dropped the (clean) line.
                    self.banks[bi].dir.drop_core(line, owner);
                }
            }
        }

        // ---------------- LLC lookup / fill ----------------
        let value: LineValue;
        if let Some(ll) = self.banks[bi].array.peek(line).copied() {
            // Tag conflicts against the LLC-resident copy (§4.3: LLC tags
            // carry CoreID + EpochID precisely for this check). A tag whose
            // epoch has already persisted is stale bookkeeping (its value
            // is durable); clean it instead of conflicting.
            if let Some(ltag) = ll.tag {
                if self.arbiters[ltag.core.index()].is_persisted(ltag.epoch) {
                    self.banks[bi].array.mark_written_back(line);
                } else if resolved == Some(ltag) {
                    // Already handled via the owner path in this access.
                } else if ltag.core == core {
                    let new_tag = self.current_tag_for(core, line);
                    if is_store && Some(ltag) != new_tag {
                        self.stats.conflicts_intra += 1;
                        self.emit(TraceEventKind::ConflictIntra {
                            core,
                            epoch: ltag.epoch,
                        });
                        self.request_flush(core, ltag.epoch, FlushReason::Conflict);
                        return Access::Blocked { tag: ltag };
                    }
                } else {
                    match self.inter_conflict(core, ltag) {
                        ConflictOutcome::Wait(tag) => return Access::Blocked { tag },
                        ConflictOutcome::Proceed => {}
                    }
                }
            }
            self.stats.llc_hits += 1;
            self.banks[bi].array.access(line);
            value = self.banks[bi].array.peek(line).expect("resident").value;
        } else {
            // Miss: fetch from NVRAM and install.
            self.stats.llc_misses += 1;
            let mc = self.mc_of(line);
            let t_mc = self.send_msg(Self::node_bank(b), NodeId::Mc(mc), MessageClass::Control, t);
            let t_rd = self.mcs[mc.index()].schedule_read(t_mc);
            self.stats.nvram_reads += 1;
            value = self.nvram.read(line).unwrap_or(0);
            if let Err(blocker) = self.llc_make_room(b, line) {
                return self.blocked_on(blocker, FlushReason::Eviction);
            }
            self.banks[bi].array.install(CacheLine::clean(line, value));
            t = self.send_msg(NodeId::Mc(mc), Self::node_bank(b), MessageClass::Data, t_rd);
        }

        // ---------------- coherence permissions ----------------
        if is_store {
            let mut targets = self.take_core_buf();
            self.banks[bi]
                .dir
                .invalidation_targets_into(line, core, &mut targets);
            let mut t_inv = t;
            for &c in &targets {
                let t_send = self.send_msg(
                    Self::node_bank(b),
                    Self::node_core(c),
                    MessageClass::Control,
                    t,
                );
                self.l1s[c.index()].array.remove(line);
                self.l1s[c.index()].exclusive.remove(&line);
                let t_ack = self.send_msg(
                    Self::node_core(c),
                    Self::node_bank(b),
                    MessageClass::Control,
                    t_send,
                );
                t_inv = t_inv.max(t_ack);
            }
            self.put_core_buf(targets);
            t = t_inv;
            self.banks[bi].dir.set_owner(line, core);
        } else {
            self.banks[bi].dir.add_sharer(line, core);
        }

        // ---------------- data response + L1 install ----------------
        let t_resp = self.send_msg(
            Self::node_bank(b),
            Self::node_core(core),
            MessageClass::Data,
            t,
        );
        #[cfg(feature = "trace-loads")]
        if !is_store && (t_resp - now).as_u64() > 500 {
            eprintln!(
                "  breakdown line={line} req={} pre_resp={} resp={} (now={})",
                (t_req - now).as_u64(),
                (t - now).as_u64(),
                (t_resp - now).as_u64(),
                now.as_u64(),
            );
        }
        if !self.l1s[i].array.contains(line) {
            if let Err(blocker) = self.l1_make_room(core, line) {
                return self.blocked_on(blocker, FlushReason::Eviction);
            }
            self.l1s[i].array.install(CacheLine::clean(line, value));
        }
        let at = t_resp + self.cfg.l1_latency;
        if let Some(v) = store {
            let prev_tag = self.l1s[i].array.peek(line).expect("installed").tag;
            self.l1s[i].exclusive.insert(line);
            self.commit_store(core, line, v, prev_tag, at)
        } else {
            Access::Done { at }
        }
    }

    /// Applies a store to an L1-resident line with write permission: undo
    /// logging on first touch, token minting, epoch tagging, and (for the
    /// write-through baseline) the synchronous persist.
    fn commit_store(
        &mut self,
        core: CoreId,
        line: LineAddr,
        value: u32,
        prev_tag: Option<EpochTag>,
        at: Cycle,
    ) -> Access {
        let i = core.index();
        let tag = self.current_tag_for(core, line);
        let token = self.mint_token(value);

        // Hardware undo logging (§5.2.1): on the first modification of a
        // line in an epoch, its pre-image goes to the log region first.
        // The pre-image is the line's current value *in the cache* (the
        // paper: "which is either already in the cache or has been brought
        // into the cache on a cache miss") — NOT the currently-durable
        // value: an IDT-permitted store can run ahead of the source
        // epoch's persist, and the epoch ordering guarantees the cached
        // pre-image will be durable before this epoch's new value is.
        if let (Some(tag), true, false) = (
            tag.filter(|_| self.cfg.logging && self.sem.needs_logging()),
            prev_tag != tag,
            skip_undo_log_bug(),
        ) {
            // Token 0 marks a line that has never been written (the fill
            // value for absent NVRAM lines): its pre-image is "no value".
            let durable_old = self.l1s[i]
                .array
                .peek(line)
                .map(|l| l.value)
                .filter(|v| *v != 0);
            let mc = self.mc_of(line);
            let t_mc = self.send_msg(
                Self::node_core(core),
                NodeId::Mc(mc),
                MessageClass::Writeback,
                at,
            );
            let t_done = self.mcs[mc.index()].schedule_write(t_mc);
            self.stats.log_writes += 1;
            // `append` clamps durability to append order (the log region is
            // a sequential buffer); the epoch's flush must wait for the
            // clamped time, so write-ahead holds transitively across cores.
            let t_done = self.log.append(tag, line, durable_old, t_done);
            let entry = self.log_ready.entry(tag).or_insert(t_done);
            *entry = (*entry).max(t_done);
        }
        self.l1s[i].array.write(line, token, tag);
        self.l1s[i].exclusive.insert(line);
        if let (Some(ck), Some(tag)) = (self.checker.as_mut(), tag) {
            ck.record_write(line, token, tag);
        }
        if self.cfg.barrier == BarrierKind::WriteThrough {
            // Strict persistency: write through and wait for durability.
            let mc = self.mc_of(line);
            let t_mc = self.send_msg(
                Self::node_core(core),
                NodeId::Mc(mc),
                MessageClass::Data,
                at,
            );
            let t_w = self.mcs[mc.index()].schedule_write(t_mc);
            self.nvram.persist(line, token, t_w);
            self.stats.nvram_writes += 1;
            let t_ack = self.send_msg(
                NodeId::Mc(mc),
                Self::node_core(core),
                MessageClass::Control,
                t_w,
            );
            return Access::Done { at: t_ack };
        }
        Access::Done { at }
    }

    /// Resolves an inter-thread conflict against source epoch `src`
    /// (§3.1): split the source if it is ongoing (§3.3), record the
    /// dependence in the IDT registers if the barrier supports it, and
    /// otherwise fall back to an online flush.
    fn inter_conflict(&mut self, requestor: CoreId, src: EpochTag) -> ConflictOutcome {
        debug_assert_ne!(src.core, requestor);
        self.stats.conflicts_inter += 1;
        let src = self.ensure_flushable(src);
        let dep_epoch = self.arbiters[requestor.index()].ledger().current();
        let dep_tag = EpochTag::new(requestor, dep_epoch);
        self.emit(TraceEventKind::ConflictInter {
            source: src,
            dependent: dep_tag,
        });
        if self.cfg.barrier.has_idt() {
            let dep_ok = if drop_idt_edge_bug() {
                // Injected bug: pretend the dependence was recorded. The
                // checker still journals the ground-truth requirement, so
                // the unenforced ordering shows up at some crash cycle.
                true
            } else {
                self.arbiters[requestor.index()]
                    .add_dependence(dep_epoch, src)
                    .is_ok()
            };
            if dep_ok {
                self.emit(TraceEventKind::IdtRecord {
                    source: src,
                    dependent: dep_tag,
                });
                // Inform-register side; overflow there is tolerable because
                // persist notifications are also broadcast.
                if !drop_idt_edge_bug() {
                    let _ = self.arbiters[src.core.index()].add_inform(src.epoch, dep_tag);
                }
                if let Some(ck) = self.checker.as_mut() {
                    ck.record_dependence(src, dep_tag);
                }
                return ConflictOutcome::Proceed;
            }
            // Dependence registers full: LB fallback (counted by the
            // arbiter's IDT overflow counter).
            self.emit(TraceEventKind::IdtOverflow {
                source: src,
                dependent: dep_tag,
            });
        }
        self.request_flush(src.core, src.epoch, FlushReason::Conflict);
        ConflictOutcome::Wait(src)
    }

    /// §3.3: a dependence (or forced eviction) landed on an *ongoing*
    /// epoch — split it so the completed first half can flush. Returns the
    /// (unchanged) tag, which now names the completed half.
    fn ensure_flushable(&mut self, tag: EpochTag) -> EpochTag {
        let j = tag.core.index();
        if skip_deadlock_split_bug() {
            // Injected bug: hand back the tag unsplit. Downstream flush
            // requests then name an ongoing epoch, which the arbiter
            // rejects (panic) or which wedges the run — either way the
            // harness flags it.
            return tag;
        }
        if self.arbiters[j].ledger().current() == tag.epoch {
            self.arbiters[j].split_current();
            self.emit(TraceEventKind::DeadlockSplit {
                core: tag.core,
                epoch: tag.epoch,
            });
            self.emit_epoch_cut(tag.core, tag.epoch);
            self.cores[j].epoch_stores = 0;
            if self.cfg.barrier.has_pf() {
                // PF treats the completed half like any completed epoch.
                self.request_flush(tag.core, tag.epoch, FlushReason::Proactive);
            }
        }
        tag
    }

    /// Common blocked-path bookkeeping: make sure the blocking epoch is
    /// flushable and its flush requested, then report the blockage.
    fn blocked_on(&mut self, tag: EpochTag, reason: FlushReason) -> Access {
        if reason == FlushReason::Eviction {
            self.stats.conflicts_intra += 0; // evictions are not conflicts
        }
        let tag = self.ensure_flushable(tag);
        self.request_flush(tag.core, tag.epoch, reason);
        Access::Blocked { tag }
    }

    /// Accepts a writeback of (`line`, `value`, `tag`) into the bank.
    /// Fails with the resident blocking tag if the resident copy belongs to
    /// a different un-persisted epoch (its value would be lost).
    pub(crate) fn llc_accept_writeback(
        &mut self,
        bank: BankId,
        line: LineAddr,
        value: LineValue,
        tag: Option<EpochTag>,
    ) -> Result<(), EpochTag> {
        let bi = bank.index();
        if let Some(resident) = self.banks[bi].array.peek(line).copied() {
            if let Some(rtag) = resident.tag {
                if Some(rtag) != tag {
                    if self.arbiters[rtag.core.index()].is_persisted(rtag.epoch) {
                        self.banks[bi].array.mark_written_back(line);
                    } else {
                        return Err(rtag);
                    }
                }
            }
            self.banks[bi].array.write(line, value, tag);
            return Ok(());
        }
        self.llc_make_room(bank, line)?;
        self.banks[bi]
            .array
            .install(CacheLine::dirty(line, value, tag));
        Ok(())
    }

    /// Makes room in the bank for `line`, evicting (and if dirty, writing
    /// back to NVRAM) a victim. Fails with the epoch tag pinning the set if
    /// every victim belongs to an un-persisted epoch, or if a victim's L1
    /// copy does.
    fn llc_make_room(&mut self, bank: BankId, line: LineAddr) -> Result<(), EpochTag> {
        let bi = bank.index();
        loop {
            match self.banks[bi].array.victim_for(line) {
                VictimChoice::Room => return Ok(()),
                VictimChoice::EpochBlocked { tag, line: vline } => {
                    if self.arbiters[tag.core.index()].is_persisted(tag.epoch) {
                        // Stale tag; clean and re-evaluate the set.
                        self.banks[bi].array.mark_written_back(vline);
                        continue;
                    }
                    return Err(tag);
                }
                VictimChoice::Evict(victim) => {
                    // Inclusive LLC: recall every L1 copy first.
                    let mut holders = self.take_core_buf();
                    self.banks[bi].dir.holders_into(victim.addr, &mut holders);
                    let mut merged = victim.value;
                    let mut dirty = victim.is_dirty();
                    let mut blocked = None;
                    for &h in &holders {
                        if let Some(hl) = self.l1s[h.index()].array.peek(victim.addr).copied() {
                            if hl.is_epoch_tagged() {
                                blocked = Some(hl.tag.expect("tagged"));
                                break;
                            }
                            if hl.is_dirty() {
                                merged = hl.value;
                                dirty = true;
                            }
                            self.l1s[h.index()].array.remove(victim.addr);
                            self.l1s[h.index()].exclusive.remove(&victim.addr);
                        }
                        self.banks[bi].dir.drop_core(victim.addr, h);
                    }
                    self.put_core_buf(holders);
                    if let Some(tag) = blocked {
                        return Err(tag);
                    }
                    self.banks[bi].dir.forget(victim.addr);
                    self.banks[bi].array.remove(victim.addr);
                    if dirty {
                        // Plain (untagged) dirty data goes to memory
                        // asynchronously; nobody waits for it.
                        let now = self.now;
                        let mc = self.mc_of(victim.addr);
                        let t_mc = self.send_msg(
                            Self::node_bank(bank),
                            NodeId::Mc(mc),
                            MessageClass::Writeback,
                            now,
                        );
                        let t_w = self.mcs[mc.index()].schedule_write(t_mc);
                        self.nvram.persist(victim.addr, merged, t_w);
                        self.stats.nvram_writes += 1;
                    }
                    return Ok(());
                }
            }
        }
    }

    /// Makes room in `core`'s L1 for `line`. Dirty victims (tagged or not)
    /// write back to the LLC; fails if the LLC cannot accept the writeback
    /// without losing an un-persisted epoch's value.
    fn l1_make_room(&mut self, core: CoreId, line: LineAddr) -> Result<(), EpochTag> {
        let i = core.index();
        let (victim_addr, victim) = match self.l1s[i].array.victim_for(line) {
            VictimChoice::Room => return Ok(()),
            VictimChoice::Evict(v) => (v.addr, v),
            VictimChoice::EpochBlocked { line: vaddr, .. } => {
                // An epoch-tagged L1 victim is *evictable*: it writes back
                // to the LLC with its tag (the paper's natural-replacement
                // path); only LLC->NVRAM eviction is ordering-constrained.
                let v = *self.l1s[i].array.peek(vaddr).expect("victim resident");
                (vaddr, v)
            }
        };
        if victim.is_dirty() {
            let vb = self.bank_of(victim_addr);
            self.llc_accept_writeback(vb, victim_addr, victim.value, victim.tag)?;
            let now = self.now;
            self.send_msg(
                Self::node_core(core),
                Self::node_bank(vb),
                MessageClass::Writeback,
                now,
            );
        }
        self.l1s[i].array.remove(victim_addr);
        self.l1s[i].exclusive.remove(&victim_addr);
        let vb = self.bank_of(victim_addr);
        if !victim.is_dirty() {
            self.banks[vb.index()].dir.drop_core(victim_addr, core);
        } else {
            // Dirty writeback: the LLC now owns the data.
            self.banks[vb.index()].dir.drop_core(victim_addr, core);
        }
        Ok(())
    }
}

/// True when the `drop-idt-edge` injected bug is active (always `false`
/// without the `bug-inject` feature).
fn drop_idt_edge_bug() -> bool {
    #[cfg(feature = "bug-inject")]
    {
        pbm_types::bug::is_active(pbm_types::bug::InjectedBug::DropIdtEdge)
    }
    #[cfg(not(feature = "bug-inject"))]
    {
        false
    }
}

/// True when the `skip-deadlock-split` injected bug is active.
fn skip_deadlock_split_bug() -> bool {
    #[cfg(feature = "bug-inject")]
    {
        pbm_types::bug::is_active(pbm_types::bug::InjectedBug::SkipDeadlockSplit)
    }
    #[cfg(not(feature = "bug-inject"))]
    {
        false
    }
}

/// True when the `skip-undo-log` injected bug is active.
fn skip_undo_log_bug() -> bool {
    #[cfg(feature = "bug-inject")]
    {
        pbm_types::bug::is_active(pbm_types::bug::InjectedBug::SkipUndoLog)
    }
    #[cfg(not(feature = "bug-inject"))]
    {
        false
    }
}
