//! The discrete event queue.

use pbm_types::{BankId, CoreId, Cycle, EpochId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A scheduled simulator event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Event {
    /// Execute (or retry) the core's current operation.
    Step(CoreId),
    /// A `BankAck` for `(core, epoch)` from the given bank arrived at the
    /// core's arbiter.
    BankAck(CoreId, EpochId, BankId),
}

/// Time-ordered event queue. Ties break by insertion sequence, making the
/// simulation fully deterministic.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(Cycle, u64, Event)>>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at time `at`.
    pub fn schedule(&mut self, at: Cycle, event: Event) {
        self.heap.push(Reverse((at, self.seq, event)));
        self.seq += 1;
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Cycle, Event)> {
        self.heap.pop().map(|Reverse((t, _, e))| (t, e))
    }

    /// Number of pending events.
    #[allow(dead_code)] // used by tests and debugging assertions
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[allow(dead_code)] // used by tests and debugging assertions
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(10), Event::Step(CoreId::new(0)));
        q.schedule(Cycle::new(5), Event::Step(CoreId::new(1)));
        q.schedule(
            Cycle::new(7),
            Event::BankAck(CoreId::new(2), EpochId::new(0), BankId::new(3)),
        );
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((Cycle::new(5), Event::Step(CoreId::new(1)))));
        assert_eq!(
            q.pop(),
            Some((
                Cycle::new(7),
                Event::BankAck(CoreId::new(2), EpochId::new(0), BankId::new(3))
            ))
        );
        assert_eq!(q.pop(), Some((Cycle::new(10), Event::Step(CoreId::new(0)))));
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(5), Event::Step(CoreId::new(0)));
        q.schedule(Cycle::new(5), Event::Step(CoreId::new(1)));
        assert_eq!(q.pop(), Some((Cycle::new(5), Event::Step(CoreId::new(0)))));
        assert_eq!(q.pop(), Some((Cycle::new(5), Event::Step(CoreId::new(1)))));
    }
}
