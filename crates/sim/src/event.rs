//! The discrete event queue.
//!
//! Two implementations share one contract — events dequeue in ascending
//! `(cycle, insertion sequence)` order:
//!
//! * [`EventQueue`] — the production queue: a bucketed timing wheel
//!   (calendar queue) indexed by cycle delta from the queue's time floor,
//!   FIFO within a bucket, with a binary-heap fallback for events beyond
//!   the wheel horizon. Schedule and pop are O(1) on the hot path
//!   (bounded event horizons are the common case in this simulator: L1 /
//!   LLC / mesh / NVRAM latencies are all small constants).
//! * [`HeapEventQueue`] — the log-n reference implementation (a plain
//!   `BinaryHeap`), kept as the property-test oracle and the baseline leg
//!   of the `event_queue` Criterion bench.
//!
//! Ties at the same cycle break strictly by insertion sequence — the
//! [`Event`] payload deliberately has **no** `Ord` implementation, so a
//! future enum-variant reorder can never silently change the simulation's
//! event order.

use pbm_types::{BankId, CoreId, Cycle, EpochId};
use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, VecDeque};

/// A scheduled simulator event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Execute (or retry) the core's current operation.
    Step(CoreId),
    /// A `BankAck` for `(core, epoch)` from the given bank arrived at the
    /// core's arbiter.
    BankAck(CoreId, EpochId, BankId),
}

/// A queue entry. Total order is `(at, seq)` — `seq` is unique per queue,
/// so the order is total without ever consulting the event payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scheduled {
    at: Cycle,
    seq: u64,
    event: Event,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Number of wheel buckets. Must be a power of two. Sized to cover the
/// common event horizon (protocol latencies plus queueing at a loaded
/// memory controller); anything farther out takes the heap fallback.
const WHEEL_SLOTS: usize = 4096;
const WHEEL_WORDS: usize = WHEEL_SLOTS / 64;

/// Time-ordered event queue: a bucketed timing wheel over
/// [`WHEEL_SLOTS`] cycles with a heap fallback for far-future events.
/// Ties break by insertion sequence, making the simulation fully
/// deterministic; pop order is identical to [`HeapEventQueue`].
#[derive(Debug)]
pub struct EventQueue {
    /// `wheel[c % WHEEL_SLOTS]` holds the events of cycle `c` for every
    /// `c` in `[floor, floor + WHEEL_SLOTS)`, in insertion order. The
    /// window is exactly one wheel revolution, so each bucket holds at
    /// most one distinct cycle and FIFO order within a bucket *is*
    /// sequence order.
    wheel: Vec<VecDeque<(u64, Event)>>,
    /// One bit per bucket: set iff the bucket is non-empty.
    occupied: [u64; WHEEL_WORDS],
    /// Events scheduled beyond the wheel horizon (or, defensively, in the
    /// past — the simulator never does that, but order stays correct).
    overflow: BinaryHeap<Reverse<Scheduled>>,
    /// Monotonic lower bound: the cycle of the last popped event.
    floor: u64,
    len: usize,
    seq: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue {
            wheel: (0..WHEEL_SLOTS).map(|_| VecDeque::new()).collect(),
            occupied: [0; WHEEL_WORDS],
            overflow: BinaryHeap::new(),
            floor: 0,
            len: 0,
            seq: 0,
        }
    }
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at time `at`.
    pub fn schedule(&mut self, at: Cycle, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        let t = at.as_u64();
        if t >= self.floor && t - self.floor < WHEEL_SLOTS as u64 {
            let b = (t % WHEEL_SLOTS as u64) as usize;
            self.wheel[b].push_back((seq, event));
            self.occupied[b / 64] |= 1 << (b % 64);
        } else {
            self.overflow.push(Reverse(Scheduled { at, seq, event }));
        }
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Cycle, Event)> {
        let wheel_bucket = self.next_occupied();
        let wheel_cycle = wheel_bucket.map(|b| self.bucket_cycle(b));
        let overflow_key = self.overflow.peek().map(|Reverse(s)| (s.at, s.seq));
        let take_overflow = match (overflow_key, wheel_cycle) {
            (None, None) => return None,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some((oat, oseq)), Some(wat)) => {
                // At equal cycles the smaller sequence wins; a bucket's
                // front entry is its minimum sequence (FIFO insertion).
                let wseq = self.wheel[wheel_bucket.expect("occupied")]
                    .front()
                    .expect("occupied bucket non-empty")
                    .0;
                (oat, oseq) < (wat, wseq)
            }
        };
        self.len -= 1;
        if take_overflow {
            let Reverse(s) = self.overflow.pop().expect("peeked");
            self.floor = self.floor.max(s.at.as_u64());
            return Some((s.at, s.event));
        }
        let b = wheel_bucket.expect("wheel path");
        let at = wheel_cycle.expect("wheel path");
        let (_, event) = self.wheel[b].pop_front().expect("occupied bucket");
        if self.wheel[b].is_empty() {
            self.occupied[b / 64] &= !(1 << (b % 64));
        }
        self.floor = at.as_u64();
        Some((at, event))
    }

    /// Number of pending events.
    #[allow(dead_code)] // used by tests and debugging assertions
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    #[allow(dead_code)] // used by tests and debugging assertions
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The cycle the entries of bucket `b` are scheduled at: the unique
    /// value congruent to `b` within `[floor, floor + WHEEL_SLOTS)`.
    fn bucket_cycle(&self, b: usize) -> Cycle {
        let n = WHEEL_SLOTS as u64;
        let delta = (b as u64 + n - self.floor % n) % n;
        Cycle::new(self.floor + delta)
    }

    /// The occupied bucket nearest the cursor (`floor % WHEEL_SLOTS`,
    /// inclusive), scanning forward with wrap-around via the bitmap.
    fn next_occupied(&self) -> Option<usize> {
        if self.len == self.overflow.len() {
            return None; // wheel empty
        }
        let cursor = (self.floor % WHEEL_SLOTS as u64) as usize;
        let (w0, b0) = (cursor / 64, cursor % 64);
        let first = self.occupied[w0] & (!0u64 << b0);
        if first != 0 {
            return Some(w0 * 64 + first.trailing_zeros() as usize);
        }
        for k in 1..=WHEEL_WORDS {
            let w = (w0 + k) % WHEEL_WORDS;
            let mut word = self.occupied[w];
            if k == WHEEL_WORDS {
                // Wrapped all the way: only the bits before the cursor.
                word &= (1u64 << b0) - 1;
            }
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
        }
        None
    }
}

/// Reference event queue: one global binary heap, the implementation the
/// timing wheel replaced. Same contract as [`EventQueue`]; kept as the
/// property-test oracle and benchmark baseline.
#[derive(Debug, Default)]
pub struct HeapEventQueue {
    heap: BinaryHeap<Reverse<Scheduled>>,
    seq: u64,
}

impl HeapEventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at time `at`.
    pub fn schedule(&mut self, at: Cycle, event: Event) {
        self.heap.push(Reverse(Scheduled {
            at,
            seq: self.seq,
            event,
        }));
        self.seq += 1;
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Cycle, Event)> {
        self.heap.pop().map(|Reverse(s)| (s.at, s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(10), Event::Step(CoreId::new(0)));
        q.schedule(Cycle::new(5), Event::Step(CoreId::new(1)));
        q.schedule(
            Cycle::new(7),
            Event::BankAck(CoreId::new(2), EpochId::new(0), BankId::new(3)),
        );
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((Cycle::new(5), Event::Step(CoreId::new(1)))));
        assert_eq!(
            q.pop(),
            Some((
                Cycle::new(7),
                Event::BankAck(CoreId::new(2), EpochId::new(0), BankId::new(3))
            ))
        );
        assert_eq!(q.pop(), Some((Cycle::new(10), Event::Step(CoreId::new(0)))));
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(5), Event::Step(CoreId::new(0)));
        q.schedule(Cycle::new(5), Event::Step(CoreId::new(1)));
        assert_eq!(q.pop(), Some((Cycle::new(5), Event::Step(CoreId::new(0)))));
        assert_eq!(q.pop(), Some((Cycle::new(5), Event::Step(CoreId::new(1)))));
    }

    #[test]
    fn far_future_events_take_the_overflow_heap_and_still_order() {
        let mut q = EventQueue::new();
        let far = WHEEL_SLOTS as u64 * 3 + 17;
        q.schedule(Cycle::new(far), Event::Step(CoreId::new(0)));
        q.schedule(Cycle::new(2), Event::Step(CoreId::new(1)));
        q.schedule(Cycle::new(far), Event::Step(CoreId::new(2)));
        q.schedule(Cycle::new(far + 1), Event::Step(CoreId::new(3)));
        assert_eq!(q.pop(), Some((Cycle::new(2), Event::Step(CoreId::new(1)))));
        assert_eq!(
            q.pop(),
            Some((Cycle::new(far), Event::Step(CoreId::new(0))))
        );
        assert_eq!(
            q.pop(),
            Some((Cycle::new(far), Event::Step(CoreId::new(2))))
        );
        assert_eq!(
            q.pop(),
            Some((Cycle::new(far + 1), Event::Step(CoreId::new(3))))
        );
        assert!(q.pop().is_none());
    }

    #[test]
    fn equal_cycle_heap_and_wheel_entries_interleave_by_seq() {
        // Schedule an event just past the horizon (goes to the overflow
        // heap), advance the floor so the same cycle now fits the wheel,
        // then schedule a wheel entry at that cycle. The heap entry has
        // the smaller sequence and must pop first.
        let mut q = EventQueue::new();
        let target = WHEEL_SLOTS as u64 + 100;
        q.schedule(Cycle::new(target), Event::Step(CoreId::new(0))); // heap
        q.schedule(Cycle::new(200), Event::Step(CoreId::new(1)));
        assert_eq!(
            q.pop(),
            Some((Cycle::new(200), Event::Step(CoreId::new(1))))
        );
        // floor = 200; target is now within the horizon.
        q.schedule(Cycle::new(target), Event::Step(CoreId::new(2))); // wheel
        assert_eq!(
            q.pop(),
            Some((Cycle::new(target), Event::Step(CoreId::new(0))))
        );
        assert_eq!(
            q.pop(),
            Some((Cycle::new(target), Event::Step(CoreId::new(2))))
        );
    }

    #[test]
    fn wheel_wraps_across_many_revolutions() {
        let mut q = EventQueue::new();
        let mut expect = Vec::new();
        for rev in 0..5u64 {
            let at = rev * (WHEEL_SLOTS as u64 - 3) + (rev * 97) % 1000;
            q.schedule(Cycle::new(at), Event::Step(CoreId::new(rev as u32)));
            expect.push((at, rev as u32));
        }
        expect.sort();
        for (at, core) in expect {
            assert_eq!(
                q.pop(),
                Some((Cycle::new(at), Event::Step(CoreId::new(core))))
            );
        }
        assert!(q.is_empty());
    }

    #[test]
    fn matches_heap_reference_on_a_mixed_stream() {
        let mut wheel = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        let mut x: u64 = 0x243F_6A88_85A3_08D3; // deterministic LCG stream
        let mut now = 0u64;
        for step in 0..20_000u32 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if !x.is_multiple_of(3) {
                // Mostly near-future, occasionally far beyond the horizon.
                let delta = if x.is_multiple_of(61) {
                    (x >> 32) % 100_000
                } else {
                    (x >> 32) % 600
                };
                let ev = Event::Step(CoreId::new(step % 48));
                wheel.schedule(Cycle::new(now + delta), ev);
                heap.schedule(Cycle::new(now + delta), ev);
            } else {
                let a = wheel.pop();
                let b = heap.pop();
                assert_eq!(a, b, "diverged at step {step}");
                if let Some((t, _)) = a {
                    now = t.as_u64();
                }
            }
        }
        loop {
            let a = wheel.pop();
            let b = heap.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
