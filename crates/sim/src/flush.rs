//! Epoch-flush orchestration: executing arbiter actions against the timing
//! model (the Figure 8 handshake), persist bookkeeping, and wakeups.

use crate::event::Event;
use crate::system::{FlushReason, System};
use pbm_core::ArbiterAction;
use pbm_noc::MessageClass;
use pbm_types::{BankId, CoreId, EpochId, EpochTag, FlushMode, LineAddr, McId, NodeId};

impl System {
    pub(crate) fn node_core(core: CoreId) -> NodeId {
        NodeId::Core(core)
    }

    pub(crate) fn node_bank(bank: BankId) -> NodeId {
        NodeId::Bank(bank)
    }

    /// The memory controller owning `line`. Decorrelated from the bank
    /// interleaving (which consumes the low bits) so one bank's flush
    /// traffic spreads across controllers.
    pub(crate) fn mc_of(&self, line: LineAddr) -> McId {
        let shift = (self.cfg.llc_banks as u64).trailing_zeros();
        McId::new(((line.as_u64() >> shift) % self.cfg.mcs as u64) as u32)
    }

    /// Requests that `core` flush all epochs up to `upto` (inclusive),
    /// attributing not-yet-attributed epochs to `reason`, and drives the
    /// arbiter as far as it can go.
    pub(crate) fn request_flush(&mut self, core: CoreId, upto: EpochId, reason: FlushReason) {
        let i = core.index();
        let Some(frontier) = self.arbiters[i].ledger().first_unpersisted() else {
            return;
        };
        if upto < frontier {
            return; // already durable
        }
        for e in frontier.as_u64()..=upto.as_u64() {
            // A conflict outranks any earlier attribution: if a request had
            // to wait for this epoch, its persist was online no matter who
            // started the flush (this is what Figure 12 counts).
            let epoch = EpochId::new(e);
            if self.obs.is_enabled() && !self.flush_reasons[i].contains_key(&epoch) {
                // First request for this epoch: the causal anchor of its
                // end-to-end persist latency in exported traces.
                self.emit(pbm_types::TraceEventKind::FlushRequested {
                    tag: EpochTag::new(core, epoch),
                    reason,
                });
            }
            self.flush_reasons[i]
                .entry(epoch)
                .and_modify(|r| {
                    if reason == FlushReason::Conflict {
                        *r = FlushReason::Conflict;
                    }
                })
                .or_insert(reason);
        }
        self.arbiters[i].request_flush_upto(upto);
        let actions = self.arbiters[i].try_advance();
        self.apply_actions(core, actions);
        self.propagate_dependence_demand(core);
    }

    /// If `core`'s arbiter is stalled waiting on IDT source epochs, demand
    /// that those sources flush too (transitively). Without this, a
    /// reactively-flushed configuration (LB+IDT) could wait forever on a
    /// source nobody ever asked to flush.
    pub(crate) fn propagate_dependence_demand(&mut self, core: CoreId) {
        let i = core.index();
        let pbm_core::FlushPhase::WaitingDeps(e) = self.arbiters[i].phase() else {
            return;
        };
        // Pooled buffer: `request_flush` recurses back into this function,
        // so a single scratch vector would not survive the reentrancy.
        let mut sources = self.take_tag_buf();
        sources.extend_from_slice(self.arbiters[i].idt().sources_of(e));
        let reason = self.flush_reasons[i]
            .get(&e)
            .copied()
            .unwrap_or(FlushReason::Conflict);
        for &s in &sources {
            self.request_flush(s.core, s.epoch, reason);
        }
        self.put_tag_buf(sources);
    }

    /// Executes a batch of arbiter actions for `core`'s arbiter.
    pub(crate) fn apply_actions(&mut self, core: CoreId, actions: Vec<ArbiterAction>) {
        for action in actions {
            match action {
                ArbiterAction::StartEpochFlush(tag) => self.start_epoch_flush(tag),
                ArbiterAction::BroadcastPersistCmp(tag) => {
                    // Step 4 of the handshake: control broadcast to every
                    // bank (traffic only; bank state is implicit because the
                    // arbiter serializes this core's epoch flushes).
                    let now = self.now;
                    for b in 0..self.cfg.llc_banks {
                        self.send_msg(
                            Self::node_core(tag.core),
                            Self::node_bank(BankId::new(b as u32)),
                            MessageClass::Control,
                            now,
                        );
                    }
                }
                ArbiterAction::NotifyDependent { source, dependent } => {
                    let j = dependent.core.index();
                    let acts = self.arbiters[j].dependence_satisfied(source);
                    self.apply_actions(dependent.core, acts);
                    self.propagate_dependence_demand(dependent.core);
                }
                ArbiterAction::EpochPersisted(tag) => self.on_epoch_persisted(tag),
            }
        }
        let _ = core;
    }

    /// Step 1–3 of the Figure 8 handshake, computed as a timed cascade:
    /// L1 writebacks + `FlushEpoch` broadcast, per-bank `FlushLines` to the
    /// controllers with `PersistAck`s, and a scheduled `BankAck` per bank.
    fn start_epoch_flush(&mut self, tag: EpochTag) {
        let core = tag.core;
        let i = core.index();
        let t0 = self.now;
        let nbanks = self.cfg.llc_banks;
        self.flush_started.insert(tag, t0);
        if self.obs.is_enabled() {
            let reason = self.flush_reasons[i]
                .get(&tag.epoch)
                .copied()
                .unwrap_or(FlushReason::Drain);
            self.emit(pbm_types::TraceEventKind::FlushEpoch { tag, reason });
            self.emit(pbm_types::TraceEventKind::EpochPhase {
                tag,
                phase: pbm_types::EpochPhase::Flushing,
            });
        }

        // BSP: checkpoint the processor state alongside the epoch.
        let mut chk_done = t0;
        if self.sem.needs_checkpoint() {
            let lines = pbm_core::CheckpointModel::new(self.cfg.checkpoint_bytes).lines_per_epoch();
            for k in 0..lines {
                let mc = McId::new((k % self.cfg.mcs as u64) as u32);
                let t_mc = self.send_msg(
                    Self::node_core(core),
                    NodeId::Mc(mc),
                    MessageClass::Writeback,
                    t0,
                );
                let done = self.mcs[mc.index()].schedule_write(t_mc);
                self.stats.checkpoint_writes += 1;
                let t_ack = self.send_msg(
                    NodeId::Mc(mc),
                    Self::node_core(core),
                    MessageClass::Control,
                    done,
                );
                chk_done = chk_done.max(t_ack);
            }
        }

        // Gather the epoch's lines per bank: the L1-resident ones are
        // written back (value snapshot) and any resident LLC copy's value
        // is refreshed; the LLC-resident ones (evicted from L1 earlier)
        // join directly. Tags are NOT cleared here: a line stays
        // conflict-visible until the epoch has fully persisted — requests
        // that touch it meanwhile wait online (or record an IDT
        // dependence), exactly the window Figure 12 measures.
        //
        // All temporaries come from the per-system scratch so the flush
        // path does no steady-state allocation. `l1_lines` is in address
        // order (the epoch index is a sorted set), so a binary search
        // stands in for the old per-flush dedup hash set.
        let mut per_bank = std::mem::take(&mut self.scratch.per_bank);
        if per_bank.len() < nbanks {
            per_bank.resize_with(nbanks, Vec::new);
        }
        let mut arrivals = std::mem::take(&mut self.scratch.arrivals);
        arrivals.clear();
        arrivals.resize(nbanks, t0);
        let mut l1_lines = std::mem::take(&mut self.scratch.l1_lines);
        l1_lines.clear();
        self.l1s[i].array.lines_of_epoch_into(tag, &mut l1_lines);
        for &line in &l1_lines {
            let value = self.l1s[i]
                .array
                .peek(line)
                .expect("indexed line resident")
                .value;
            let b = self.bank_of(line);
            let t_arr = self.send_msg(
                Self::node_core(core),
                Self::node_bank(b),
                MessageClass::Writeback,
                t0,
            );
            arrivals[b.index()] = arrivals[b.index()].max(t_arr);
            // Refresh a resident LLC copy's value (tag preserved).
            if self.banks[b.index()].array.contains(line) {
                self.banks[b.index()].array.write(line, value, Some(tag));
            }
            per_bank[b.index()].push((line, value));
        }
        let mut bank_lines = std::mem::take(&mut self.scratch.lines);
        for (bi, bucket) in per_bank.iter_mut().enumerate().take(nbanks) {
            bank_lines.clear();
            self.banks[bi]
                .array
                .lines_of_epoch_into(tag, &mut bank_lines);
            for &line in &bank_lines {
                if l1_lines.binary_search(&line).is_ok() {
                    continue;
                }
                let value = self.banks[bi]
                    .array
                    .peek(line)
                    .expect("indexed line resident")
                    .value;
                bucket.push((line, value));
            }
        }
        bank_lines.clear();
        self.scratch.lines = bank_lines;
        l1_lines.clear();
        self.scratch.l1_lines = l1_lines;

        // Step 2–3 per bank. The service order across banks is
        // unspecified by the protocol (each bank handshakes with the MCs
        // independently), so the schedule perturbator may rotate it to
        // explore different MC-lane and NoC-link contention patterns.
        let log_ready = self.log_ready.remove(&tag).unwrap_or(t0);
        let rot = self.bank_rotation(nbanks);
        for k in 0..nbanks {
            let bi = (k + rot) % nbanks;
            let b = BankId::new(bi as u32);
            let t_fe = self.send_msg(
                Self::node_core(core),
                Self::node_bank(b),
                MessageClass::Control,
                t0,
            );
            let chk_gate = if bi == 0 { chk_done } else { t0 };
            let start = t_fe.max(arrivals[bi]).max(log_ready).max(chk_gate);
            if self.obs.is_enabled() {
                // Cascade-stamped (at `start`, ahead of the loop clock),
                // like `NocSend`: the analyzer pairs it with the matching
                // `BankAck` to decompose the bank's flush window.
                self.obs.record(pbm_types::TraceEvent::new(
                    start,
                    pbm_types::TraceEventKind::BankFlushStart {
                        tag,
                        bank: b,
                        cmd_at: t_fe,
                        wb_at: arrivals[bi],
                        log_at: log_ready,
                        chk_at: chk_gate,
                        lines: per_bank[bi].len() as u32,
                    },
                ));
            }
            let mut done = start;
            for &(line, value) in &per_bank[bi] {
                let mc = self.mc_of(line);
                let t_mc = self.send_msg(
                    Self::node_bank(b),
                    NodeId::Mc(mc),
                    MessageClass::Writeback,
                    start,
                );
                let (t_begin, t_w) = self.mcs[mc.index()].schedule_write_timed(t_mc);
                self.nvram.persist(line, value, t_w);
                self.stats.nvram_writes += 1;
                self.stats.epoch_flush_writes += 1;
                let t_ack = self.send_msg(
                    NodeId::Mc(mc),
                    Self::node_bank(b),
                    MessageClass::Control,
                    t_w,
                );
                if self.obs.is_enabled() {
                    self.obs.record(pbm_types::TraceEvent::new(
                        start,
                        pbm_types::TraceEventKind::PersistWrite {
                            tag,
                            bank: b,
                            mc,
                            mc_at: t_mc,
                            begin: t_begin,
                            durable: t_w,
                            ack_at: t_ack,
                        },
                    ));
                }
                done = done.max(t_ack);
            }
            let t_ba = self.send_msg(
                Self::node_bank(b),
                Self::node_core(core),
                MessageClass::Control,
                done,
            );
            self.queue
                .schedule(t_ba, Event::BankAck(core, tag.epoch, b));
        }
        for bucket in per_bank.iter_mut() {
            bucket.clear();
        }
        self.scratch.per_bank = per_bank;
        self.scratch.arrivals = arrivals;
    }

    /// Releases every line of a freshly-persisted epoch: tags drop, lines
    /// stay resident and clean (`clwb`) or are invalidated (`clflush`).
    fn clear_epoch_lines(&mut self, tag: EpochTag) {
        let invalidating = self.cfg.flush_mode == FlushMode::Invalidating;
        let i = tag.core.index();
        let mut lines = std::mem::take(&mut self.scratch.lines);
        lines.clear();
        self.l1s[i].array.lines_of_epoch_into(tag, &mut lines);
        for &line in &lines {
            if invalidating {
                self.l1s[i].array.remove(line);
                self.l1s[i].exclusive.remove(&line);
                let b = self.bank_of(line);
                self.banks[b.index()].dir.drop_core(line, tag.core);
            } else {
                self.l1s[i].array.mark_written_back(line);
            }
        }
        for bi in 0..self.banks.len() {
            let b = BankId::new(bi as u32);
            lines.clear();
            self.banks[bi].array.lines_of_epoch_into(tag, &mut lines);
            for &line in &lines {
                if invalidating {
                    self.evict_llc_line_holders(b, line);
                    self.banks[bi].array.remove(line);
                    self.banks[bi].dir.forget(line);
                } else {
                    self.banks[bi].array.mark_written_back(line);
                }
            }
        }
        lines.clear();
        self.scratch.lines = lines;
    }

    /// Invalidating-flush cleanup: recall every L1 copy of an LLC line
    /// about to be invalidated.
    fn evict_llc_line_holders(&mut self, bank: BankId, line: LineAddr) {
        let mut holders = self.take_core_buf();
        self.banks[bank.index()]
            .dir
            .holders_into(line, &mut holders);
        for &h in &holders {
            self.l1s[h.index()].array.remove(line);
            self.l1s[h.index()].exclusive.remove(&line);
            self.banks[bank.index()].dir.drop_core(line, h);
        }
        self.put_core_buf(holders);
    }

    /// An epoch became durable: clear its lines' tags (making them
    /// conflict-free and, under `clflush` mode, invalid), then stats,
    /// reason attribution, undo-log commit, dependent-arbiter notification
    /// (broadcast), and waiter wakeups.
    fn on_epoch_persisted(&mut self, tag: EpochTag) {
        let now = self.now;
        if self.obs.is_enabled() {
            self.emit(pbm_types::TraceEventKind::PersistCmp { tag });
            self.emit(pbm_types::TraceEventKind::EpochPhase {
                tag,
                phase: pbm_types::EpochPhase::Persisted,
            });
        }
        self.clear_epoch_lines(tag);
        self.stats.epochs_persisted += 1;
        if let Some(start) = self.flush_started.remove(&tag) {
            self.stats
                .epoch_flush_latency
                .record((now - start).as_u64());
        }
        match self.flush_reasons[tag.core.index()]
            .remove(&tag.epoch)
            .unwrap_or(FlushReason::Drain)
        {
            FlushReason::Conflict => self.stats.epochs_conflict_flushed += 1,
            FlushReason::Eviction => self.stats.epochs_eviction_flushed += 1,
            FlushReason::Proactive => self.stats.epochs_proactive_flushed += 1,
            FlushReason::BackPressure | FlushReason::Barrier | FlushReason::Drain => {}
        }
        // BSP: write the epoch's commit marker to the log region.
        if self.sem.needs_logging() && self.cfg.logging {
            let mc = McId::new((tag.epoch.as_u64() % self.cfg.mcs as u64) as u32);
            let t_mc = self.send_msg(
                Self::node_core(tag.core),
                NodeId::Mc(mc),
                MessageClass::Control,
                now,
            );
            let t_done = self.mcs[mc.index()].schedule_write(t_mc);
            self.stats.log_writes += 1;
            self.log.commit_epoch(tag, t_done);
        }
        // Release IDT dependence registers everywhere. The inform-register
        // NotifyDependent path delivers the same information; this broadcast
        // additionally covers register-overflow fallbacks.
        for j in 0..self.arbiters.len() {
            if j == tag.core.index() {
                continue;
            }
            let acts = self.arbiters[j].dependence_satisfied(tag);
            self.apply_actions(CoreId::new(j as u32), acts);
            self.propagate_dependence_demand(CoreId::new(j as u32));
        }
        // Wake every core parked on this epoch.
        if let Some(ws) = self.waiters.remove(&tag) {
            for c in ws {
                self.queue.schedule(now + 1, Event::Step(c));
            }
        }
    }
}
