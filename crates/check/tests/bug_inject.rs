//! End-to-end validation of the harness's detection power: every
//! deliberately broken protocol variant must be caught, shrunk to a small
//! reproducing case, serialized, and — on the real design — replay clean.
//!
//! One `#[test]` drives all bugs sequentially: the `pbm_types::bug` switch
//! is process-global, so concurrent campaigns against different bugs would
//! race.

#![cfg(feature = "bug-inject")]

use pbm_check::artifact::{decode_case, encode_case};
use pbm_check::campaign::bugs::run_bug_campaign;
use pbm_check::run_case;
use pbm_types::bug::InjectedBug;

#[test]
fn every_injected_bug_is_caught_shrunk_and_archived() {
    for bug in InjectedBug::ALL {
        let outcome = run_bug_campaign(bug, 9_000, 20);
        let Some((spec, failure)) = outcome.shrunk else {
            panic!("{bug} went undetected across {} cases", outcome.cases_tried);
        };
        assert!(
            spec.total_ops() <= 20,
            "{bug}: shrunk case still has {} ops",
            spec.total_ops()
        );
        // The reproducing case round-trips through the corpus format.
        let text = encode_case(&spec, Some(bug.name()), Some(&failure));
        let back = decode_case(&text).expect("artifact parses");
        assert_eq!(back.spec, spec, "{bug}: artifact round-trip");
        assert_eq!(back.bug.as_deref(), Some(bug.name()));
        // With the bug deactivated the same case must be consistent —
        // the corpus stays replayable in default CI.
        if let Err(f) = run_case(&spec) {
            panic!("{bug}: shrunk case dirty on the real design: {f}");
        }
    }
}
