//! Fuzzing campaigns: matrices of randomized cases under a wall-clock
//! budget, plus the differential cross-barrier checks.

use crate::case::{run_case, CaseOk, CaseSpec, FailureKind};
use crate::pool::parallel_map;
use pbm_types::{BarrierKind, PersistencyKind};
use pbm_workloads::random::{random_programs, RandomProgramParams};
use std::time::{Duration, Instant};

/// The persistency models a campaign sweeps (with every lazy barrier).
pub const MODELS: [PersistencyKind; 3] = [
    PersistencyKind::BufferedEpoch,
    PersistencyKind::Epoch,
    PersistencyKind::BufferedStrictBulk,
];

/// Campaign shape and budget.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Base seed; every case derives a fresh program seed from it.
    pub seed: u64,
    /// Worker threads for the case pool.
    pub jobs: usize,
    /// Wall-clock budget; the campaign stops starting new batches once
    /// exceeded (at least one batch always runs).
    pub budget: Duration,
    /// Hard cap on fuzz cases (`None` = budget-bound only).
    pub max_cases: Option<usize>,
    /// Operations per core per random program.
    pub ops_per_core: usize,
    /// Cores per case.
    pub cores: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 1,
            jobs: 2,
            budget: Duration::from_secs(10),
            max_cases: None,
            ops_per_core: 40,
            cores: 4,
        }
    }
}

/// A case that failed, with its reproducing spec.
#[derive(Debug, Clone)]
pub struct FailingCase {
    /// The failing tuple.
    pub spec: CaseSpec,
    /// What went wrong.
    pub failure: FailureKind,
}

/// What a campaign did and found.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// Fuzz cases executed.
    pub cases: usize,
    /// Crash cycles checked across all passing cases.
    pub crash_points: u64,
    /// Cases that failed (empty on a healthy design).
    pub failures: Vec<FailingCase>,
    /// Differential comparisons performed.
    pub differential_pairs: usize,
    /// Differential mismatches, rendered (empty on a healthy design).
    pub differential_failures: Vec<String>,
}

impl CampaignReport {
    /// True when nothing failed.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty() && self.differential_failures.is_empty()
    }
}

/// Derives a schedule-perturbation seed from a case seed; every third case
/// keeps the exact default schedule.
fn perturb_for(seed: u64) -> Option<u64> {
    if seed.is_multiple_of(3) {
        None
    } else {
        Some(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// Runs the fuzz matrix — every lazy barrier × [`MODELS`] with fresh
/// random programs and perturbed schedules — until the budget or case cap
/// is reached, then the differential stage. Results accumulate into the
/// returned report.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let started = Instant::now();
    let mut report = CampaignReport::default();
    let mut next_seed = cfg.seed;
    loop {
        let mut specs = Vec::new();
        for barrier in BarrierKind::LAZY_VARIANTS {
            for model in MODELS {
                let seed = next_seed;
                next_seed += 1;
                let params = RandomProgramParams::mixed(cfg.ops_per_core, 16);
                specs.push(CaseSpec {
                    programs: random_programs(seed, cfg.cores, &params),
                    barrier,
                    persistency: model,
                    perturb_seed: perturb_for(seed),
                    bsp_epoch_size: 7,
                    seed,
                });
            }
        }
        if let Some(max) = cfg.max_cases {
            specs.truncate(max.saturating_sub(report.cases));
        }
        if specs.is_empty() {
            break;
        }
        for (spec, result) in parallel_map(cfg.jobs, specs, |spec| {
            let result = run_case(&spec);
            (spec, result)
        }) {
            report.cases += 1;
            match result {
                Ok(ok) => report.crash_points += ok.crash_points as u64,
                Err(failure) => report.failures.push(FailingCase { spec, failure }),
            }
        }
        let capped = cfg.max_cases.is_some_and(|max| report.cases >= max);
        if capped || started.elapsed() >= cfg.budget {
            break;
        }
    }
    differential_round(cfg, &mut report);
    report
}

/// The cross-barrier differential stage.
///
/// Uses disjoint-store programs (per-core private write sets), whose final
/// drained NVRAM state is schedule-independent, and asserts:
///
/// 1. every lazy barrier kind drains to the *same* final persistent
///    values for the same program;
/// 2. the paper's §4 claim that proactive flushing adds **zero extra
///    NVRAM writes**: `LB` vs `LB+PF` and `LB+IDT` vs `LB++` perform the
///    same number of epoch-flush writes (compared when neither run split
///    epochs for deadlock avoidance or evicted dirty lines early, which
///    legitimately repartition the write stream).
pub fn differential_round(cfg: &CampaignConfig, report: &mut CampaignReport) {
    for round in 0..2u64 {
        let seed = cfg.seed.wrapping_add(round);
        let params = RandomProgramParams::disjoint(cfg.ops_per_core, cfg.cores);
        let programs = random_programs(seed, cfg.cores, &params);
        let specs: Vec<CaseSpec> = BarrierKind::LAZY_VARIANTS
            .iter()
            .map(|&barrier| CaseSpec {
                programs: programs.clone(),
                barrier,
                persistency: PersistencyKind::BufferedEpoch,
                perturb_seed: None,
                bsp_epoch_size: 7,
                seed,
            })
            .collect();
        let results = parallel_map(cfg.jobs, specs, |spec| {
            let result = run_case(&spec);
            (spec.barrier, result)
        });
        let mut oks: Vec<(BarrierKind, CaseOk)> = Vec::new();
        for (barrier, result) in results {
            match result {
                Ok(ok) => oks.push((barrier, ok)),
                Err(failure) => report.differential_failures.push(format!(
                    "seed {seed}: {barrier} failed during differential run: {failure}"
                )),
            }
        }
        // (1) identical final drained state across kinds.
        if let Some((base_kind, base)) = oks.first() {
            for (kind, ok) in &oks[1..] {
                report.differential_pairs += 1;
                if ok.final_values != base.final_values {
                    report.differential_failures.push(format!(
                        "seed {seed}: final NVRAM state differs between {base_kind} \
                         ({} lines) and {kind} ({} lines)",
                        base.final_values.len(),
                        ok.final_values.len()
                    ));
                }
            }
        }
        // (2) PF adds zero extra NVRAM writes.
        for (without_pf, with_pf) in [
            (BarrierKind::Lb, BarrierKind::LbPf),
            (BarrierKind::LbIdt, BarrierKind::LbPp),
        ] {
            let find = |k| oks.iter().find(|(b, _)| *b == k).map(|(_, ok)| ok);
            let (Some(a), Some(b)) = (find(without_pf), find(with_pf)) else {
                continue;
            };
            // Splits repartition epochs and early dirty evictions move
            // writes out of the flush handshake; both are legitimate, so
            // only the clean common case is comparable exactly.
            let comparable = |ok: &CaseOk| {
                ok.stats.deadlock_splits == 0
                    && ok.stats.nvram_writes == ok.stats.epoch_flush_writes
            };
            if comparable(a) && comparable(b) {
                report.differential_pairs += 1;
                if a.stats.epoch_flush_writes != b.stats.epoch_flush_writes {
                    report.differential_failures.push(format!(
                        "seed {seed}: {with_pf} performed {} epoch-flush writes where \
                         {without_pf} performed {} — proactive flushing added NVRAM writes",
                        b.stats.epoch_flush_writes, a.stats.epoch_flush_writes
                    ));
                }
            }
        }
    }
}

/// Campaigns against deliberately broken protocol variants.
#[cfg(feature = "bug-inject")]
pub mod bugs {
    use super::*;
    use crate::shrink::{shrink, DEFAULT_MAX_RUNS};
    use pbm_sim::{SchedulePerturbation, System};
    use pbm_types::bug::{self, InjectedBug};
    use pbm_types::Cycle;
    use pbm_workloads::commit;
    use std::collections::BTreeMap;

    /// What hunting one injected bug produced.
    #[derive(Debug, Clone)]
    pub struct BugOutcome {
        /// The bug hunted.
        pub bug: InjectedBug,
        /// Cases run before (and including) the first detection.
        pub cases_tried: usize,
        /// The shrunk reproducing case and its failure, if detected.
        pub shrunk: Option<(CaseSpec, FailureKind)>,
    }

    impl BugOutcome {
        /// True if the harness caught the bug.
        pub fn detected(&self) -> bool {
            self.shrunk.is_some()
        }
    }

    /// The case shape that exposes `bug` fastest. Deadlock-split skipping
    /// is steered to plain `LB` where it panics promptly ("cannot flush
    /// ongoing epoch"); under IDT kinds it wedges instead and burns the
    /// whole event budget per case.
    fn spec_for(bug: InjectedBug, seed: u64) -> CaseSpec {
        let (barrier, persistency, params, bsp_epoch_size) = match bug {
            InjectedBug::DropIdtEdge => (
                BarrierKind::LbPp,
                PersistencyKind::BufferedEpoch,
                RandomProgramParams::mixed(40, 6),
                7,
            ),
            InjectedBug::PrematureBankAck => (
                BarrierKind::Lb,
                PersistencyKind::BufferedEpoch,
                RandomProgramParams::mixed(40, 8),
                7,
            ),
            InjectedBug::SkipDeadlockSplit => (
                BarrierKind::Lb,
                PersistencyKind::BufferedEpoch,
                RandomProgramParams::mixed(40, 4),
                7,
            ),
            InjectedBug::SkipUndoLog => (
                BarrierKind::LbPp,
                PersistencyKind::BufferedStrictBulk,
                RandomProgramParams::mixed(40, 8),
                5,
            ),
            // Workload-level bug: the case is the commit protocol itself,
            // not a random program — see `commit_spec`.
            InjectedBug::DroppedBarrier => unreachable!("handled by run_commit_case"),
        };
        CaseSpec {
            programs: random_programs(seed, 4, &params),
            barrier,
            persistency,
            perturb_seed: None,
            bsp_epoch_size,
            seed,
        }
    }

    /// The Figure-10 commit-protocol case. The data barrier is present
    /// exactly when the `dropped-barrier` bug is *inactive*, so the same
    /// builder produces the healthy protocol and the broken one.
    fn commit_spec(txs: u64, perturb_seed: Option<u64>, seed: u64) -> CaseSpec {
        let drop = bug::is_active(InjectedBug::DroppedBarrier);
        CaseSpec {
            programs: commit::publisher_consumer(txs, drop).programs,
            barrier: BarrierKind::LbPp,
            persistency: PersistencyKind::BufferedEpoch,
            perturb_seed,
            bsp_epoch_size: 7,
            seed,
        }
    }

    /// Runs a commit-protocol case and sweeps every crash cycle for the
    /// *application* invariant: if the commit flag is durable at
    /// [`commit::flag_value`]`(t)` then every data line is durable at
    /// [`commit::data_value`]`(t)` or newer.
    ///
    /// The hardware stays BEP-consistent whether or not the programmer's
    /// data barrier is present — `run_case` cannot see this bug — so the
    /// campaign checks the protocol's own crash invariant instead.
    pub fn run_commit_case(spec: &CaseSpec) -> Result<(), FailureKind> {
        let mut sys = System::new(spec.config(), spec.programs.clone()).expect("valid config");
        sys.enable_checking();
        if let Some(seed) = spec.perturb_seed {
            sys.set_perturbation(&SchedulePerturbation::from_seed(seed));
        }
        let _ = sys.run();
        // Durable state only changes at persist instants; probe each
        // boundary and one cycle before it, as `run_case` does.
        let mut points: Vec<Cycle> = vec![Cycle::ZERO];
        points.extend(sys.persist_times());
        for i in 0..points.len() {
            let t = points[i];
            points.push(Cycle::new(t.as_u64().saturating_sub(1)));
        }
        points.sort_unstable();
        points.dedup();
        for &at in &points {
            let values: BTreeMap<u64, u32> = sys
                .persistent_snapshot_at(at)
                .iter()
                .map(|(line, token)| (line.as_u64(), System::token_value(token)))
                .collect();
            let Some(&flag) = values.get(&commit::FLAG_LINE) else {
                continue;
            };
            if flag == 0 {
                continue;
            }
            let tx = u64::from(flag) - 1; // flag_value(tx) = 1 + tx
            let want = commit::data_value(tx);
            for i in 0..commit::DATA_LINES {
                let line = commit::DATA_BASE_LINE + i;
                let got = values.get(&line).copied().unwrap_or(0);
                if got < want {
                    return Err(FailureKind::Violation {
                        at: at.as_u64(),
                        message: format!(
                            "commit flag durable for tx {tx} but data line {line} \
                             holds {got} < {want}: published data is not durable"
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Hunts the `dropped-barrier` bug: sweep schedule perturbations of
    /// the broken commit protocol until [`run_commit_case`] observes a
    /// flag-before-data durable state, then "shrink" to the one-transaction
    /// protocol if that still reproduces (ddmin does not apply — the case
    /// is a fixed protocol, and `run_case` passes on it by design).
    fn run_dropped_barrier_campaign(outcome: &mut BugOutcome, seed: u64, max_cases: usize) {
        for attempt in 0..max_cases as u64 {
            outcome.cases_tried += 1;
            let perturb = if attempt == 0 {
                None
            } else {
                Some(
                    seed.wrapping_add(attempt)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15),
                )
            };
            let spec = commit_spec(2, perturb, seed.wrapping_add(attempt));
            let Err(failure) = run_commit_case(&spec) else {
                continue;
            };
            let small = commit_spec(1, perturb, spec.seed);
            outcome.shrunk = Some(match run_commit_case(&small) {
                Err(f) => (small, f),
                Ok(()) => (spec, failure),
            });
            break;
        }
    }

    /// Activates `bug`, fuzzes until it is detected (or `max_cases` give
    /// up), shrinks the first failing case, and deactivates the bug.
    ///
    /// The bug switch is process-global, so campaigns against different
    /// bugs must run sequentially; cases *within* one campaign share the
    /// same active bug and could parallelize, but detection is usually
    /// immediate so they run inline.
    pub fn run_bug_campaign(bug: InjectedBug, seed: u64, max_cases: usize) -> BugOutcome {
        bug::set_active(Some(bug));
        let mut outcome = BugOutcome {
            bug,
            cases_tried: 0,
            shrunk: None,
        };
        if bug == InjectedBug::DroppedBarrier {
            run_dropped_barrier_campaign(&mut outcome, seed, max_cases);
        } else {
            for attempt in 0..max_cases as u64 {
                outcome.cases_tried += 1;
                let spec = spec_for(bug, seed.wrapping_add(attempt));
                if run_case(&spec).is_err() {
                    outcome.shrunk = Some(shrink(&spec, DEFAULT_MAX_RUNS));
                    break;
                }
            }
        }
        bug::set_active(None);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_is_clean_and_covers_the_matrix() {
        let cfg = CampaignConfig {
            seed: 500,
            jobs: 2,
            budget: Duration::from_millis(0),
            max_cases: Some(12),
            ops_per_core: 25,
            cores: 4,
        };
        let report = run_campaign(&cfg);
        assert_eq!(report.cases, 12, "one full matrix batch");
        assert!(
            report.is_clean(),
            "failures: {:?} / {:?}",
            report.failures,
            report.differential_failures
        );
        assert!(report.crash_points > 24, "sweeps were exhaustive");
        assert!(report.differential_pairs >= 6, "differential stage ran");
    }
}
