//! One fuzzing case: a (programs, barrier, persistency, schedule) tuple,
//! run to completion and checked at every crash cycle that matters.
//!
//! The crash sweep is exhaustive, not sampled: the durable state only
//! changes at NVRAM persist timestamps (and, under BSP, recovery only
//! changes at undo-log durability/commit timestamps), so checking at cycle
//! 0 and at each of those instants covers every distinct crash state the
//! run could exhibit.

use pbm_sim::{Program, SchedulePerturbation, System};
use pbm_types::{BarrierKind, Cycle, PersistencyKind, SimStats, SystemConfig};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

/// A fully-specified, replayable fuzzing case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseSpec {
    /// One program per core (shorter vectors leave the remaining cores
    /// idle).
    pub programs: Vec<Program>,
    /// Barrier implementation under test.
    pub barrier: BarrierKind,
    /// Persistency model under test.
    pub persistency: PersistencyKind,
    /// Schedule-perturbation seed (`None` = the exact default schedule).
    pub perturb_seed: Option<u64>,
    /// Hardware epoch size for BSP bulk mode (ignored otherwise).
    pub bsp_epoch_size: u64,
    /// Program-generator seed, carried for provenance and replay labels.
    pub seed: u64,
}

impl CaseSpec {
    /// The simulated configuration this case runs under: the 4-core test
    /// system with the case's barrier/persistency axes applied.
    pub fn config(&self) -> SystemConfig {
        let mut cfg = SystemConfig::small_test();
        cfg.barrier = self.barrier;
        cfg.persistency = self.persistency;
        cfg.bsp_epoch_size = self.bsp_epoch_size;
        cfg
    }

    /// Total operation count across all cores (the shrinker's metric).
    pub fn total_ops(&self) -> usize {
        self.programs.iter().map(Program::len).sum()
    }
}

/// Why a case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// The persistency model's guarantee was violated at a crash cycle.
    Violation {
        /// The crash cycle the violating snapshot was taken at.
        at: u64,
        /// The violation, rendered (`ConsistencyViolation`'s `Display`).
        message: String,
    },
    /// The recorded inter-thread dependence graph has a cycle.
    CyclicDependences,
    /// The simulation panicked (wedge, livelock watchdog, protocol
    /// assertion).
    Panic(String),
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::Violation { at, message } => {
                write!(f, "violation at crash cycle {at}: {message}")
            }
            FailureKind::CyclicDependences => write!(f, "cyclic inter-thread dependences"),
            FailureKind::Panic(msg) => write!(f, "simulation panicked: {msg}"),
        }
    }
}

/// What a passing case yields (the campaign's differential stage compares
/// these across barrier kinds).
#[derive(Debug, Clone, PartialEq)]
pub struct CaseOk {
    /// The run's statistics.
    pub stats: SimStats,
    /// Number of crash cycles the sweep checked.
    pub crash_points: usize,
    /// Final drained persistent state as `line -> stored value` (token
    /// sequence numbers stripped, so the map is comparable across runs).
    pub final_values: BTreeMap<u64, u32>,
    /// Distinct `(epoch, line)` write pairs the checker journaled — the
    /// lower bound on flush writes the §4 zero-extra-writes argument is
    /// stated against.
    pub epoch_lines: u64,
}

thread_local! {
    static QUIET: Cell<bool> = const { Cell::new(false) };
}

static HOOK: Once = Once::new();

/// Suppresses the default panic message on this thread for the guard's
/// lifetime. Fuzzing deliberately provokes panics (that is how injected
/// protocol bugs surface), and a hook firing per case would swamp the
/// output of every worker.
fn quiet_panics() -> impl Drop {
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET.with(Cell::get) {
                prev(info);
            }
        }));
    });
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            QUIET.with(|q| q.set(false));
        }
    }
    QUIET.with(|q| q.set(true));
    Guard
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one case end to end: simulate, then sweep every distinct crash
/// state and check the model's guarantee at each.
pub fn run_case(spec: &CaseSpec) -> Result<CaseOk, FailureKind> {
    let _quiet = quiet_panics();
    let ran = panic::catch_unwind(AssertUnwindSafe(|| {
        let mut sys = System::new(spec.config(), spec.programs.clone()).expect("valid config");
        sys.enable_checking();
        if let Some(seed) = spec.perturb_seed {
            sys.set_perturbation(&SchedulePerturbation::from_seed(seed));
        }
        let stats = sys.run();
        (sys, stats)
    }));
    let (sys, stats) = match ran {
        Ok(v) => v,
        Err(payload) => return Err(FailureKind::Panic(panic_message(payload))),
    };
    let ck = sys.checker().expect("checking enabled");
    if !ck.hb_graph().is_acyclic() {
        return Err(FailureKind::CyclicDependences);
    }
    // Every instant the durable (or recovered) state can change.
    let mut points: Vec<Cycle> = vec![Cycle::ZERO];
    points.extend(sys.persist_times());
    if spec.persistency == PersistencyKind::BufferedStrictBulk {
        for rec in sys.undo_log().records() {
            points.push(rec.durable_at);
            if let Some(c) = rec.committed_at {
                points.push(c);
            }
        }
    }
    // Also probe one cycle before each boundary, covering either snapshot
    // inclusivity convention.
    for i in 0..points.len() {
        let t = points[i];
        points.push(Cycle::new(t.as_u64().saturating_sub(1)));
    }
    points.sort_unstable();
    points.dedup();
    for &at in &points {
        let snap = sys.persistent_snapshot_at(at);
        let checked = if spec.persistency == PersistencyKind::BufferedStrictBulk {
            let (recovered, _) = snap.recover_with(sys.undo_log());
            ck.check_bsp_recovered(&recovered)
        } else {
            ck.check_bep(&snap)
        };
        if let Err(v) = checked {
            return Err(FailureKind::Violation {
                at: at.as_u64(),
                message: v.to_string(),
            });
        }
    }
    let final_values = sys
        .persistent_snapshot_at(Cycle::new(u64::MAX))
        .iter()
        .map(|(line, token)| (line.as_u64(), System::token_value(token)))
        .collect();
    Ok(CaseOk {
        stats,
        crash_points: points.len(),
        final_values,
        epoch_lines: ck.epoch_line_write_count() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbm_workloads::random::{random_programs, RandomProgramParams};

    fn spec(barrier: BarrierKind, persistency: PersistencyKind, seed: u64) -> CaseSpec {
        let params = RandomProgramParams::mixed(30, 8);
        CaseSpec {
            programs: random_programs(seed, 4, &params),
            barrier,
            persistency,
            perturb_seed: None,
            bsp_epoch_size: 7,
            seed,
        }
    }

    #[test]
    fn clean_design_passes_bep_and_bsp() {
        let ok = run_case(&spec(BarrierKind::LbPp, PersistencyKind::BufferedEpoch, 42))
            .expect("no violation");
        assert!(ok.crash_points > 2, "sweep found persist boundaries");
        assert!(!ok.final_values.is_empty(), "stores drained");
        let ok = run_case(&spec(
            BarrierKind::Lb,
            PersistencyKind::BufferedStrictBulk,
            43,
        ))
        .unwrap();
        assert!(ok.stats.log_writes > 0, "BSP logged");
    }

    #[test]
    fn perturbed_schedule_preserves_architectural_results() {
        let base = run_case(&spec(BarrierKind::LbPp, PersistencyKind::BufferedEpoch, 7)).unwrap();
        let mut jittered = spec(BarrierKind::LbPp, PersistencyKind::BufferedEpoch, 7);
        jittered.perturb_seed = Some(99);
        let perturbed = run_case(&jittered).expect("still consistent");
        assert_eq!(base.final_values, perturbed.final_values);
        assert_eq!(base.stats.stores, perturbed.stats.stores);
    }

    #[test]
    fn panics_are_reported_not_propagated() {
        // An unvalidatable config panic is simulated via a program that the
        // watchdog would reject is hard to build cheaply; instead check the
        // plumbing directly.
        let _quiet = quiet_panics();
        let caught = panic::catch_unwind(|| panic!("boom {}", 1)).unwrap_err();
        assert_eq!(panic_message(caught), "boom 1");
    }
}
