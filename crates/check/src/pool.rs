//! A minimal scoped worker pool: run a batch of independent jobs on N
//! threads and return the results in input order.
//!
//! This is the sharing-free core of the `pbm-bench` experiment runner,
//! extracted so the fuzzing campaigns and the figure binaries drive the
//! same pool. Workers take a round-robin share of the batch up front (the
//! jobs here — whole simulations — are coarse enough that work stealing
//! would buy nothing), results flow back over a channel tagged with their
//! input index, and the caller gets a `Vec` it can zip against its inputs
//! regardless of worker count.

use std::sync::mpsc;
use std::thread;

/// Applies `f` to every item on `jobs` worker threads; results come back
/// in input order.
///
/// # Panics
///
/// Panics if `jobs` is zero, or if `f` panics on a worker (the panic is
/// propagated when the scope joins).
pub fn parallel_map<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    assert!(jobs > 0, "need at least one worker");
    let workers = jobs.min(items.len()).max(1);
    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let (tx, rx) = mpsc::channel();
    // Round-robin assignment: worker w takes items w, w+P, w+2P, ...
    let mut shares: Vec<Vec<(usize, T)>> = (0..workers).map(|_| Vec::new()).collect();
    for (k, item) in items.into_iter().enumerate() {
        shares[k % workers].push((k, item));
    }
    let f = &f;
    thread::scope(|scope| {
        for mine in shares {
            let tx = tx.clone();
            scope.spawn(move || {
                for (k, item) in mine {
                    let _ = tx.send((k, f(item)));
                }
            });
        }
        drop(tx);
        for (k, r) in rx {
            results[k] = Some(r);
        }
    });
    results.into_iter().map(|r| r.expect("job ran")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_input_order() {
        let out = parallel_map(3, (0..17u64).collect(), |x| x * 2);
        assert_eq!(out, (0..17u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn worker_count_does_not_matter() {
        let items: Vec<u64> = (0..9).collect();
        let one = parallel_map(1, items.clone(), |x| x + 1);
        let many = parallel_map(8, items, |x| x + 1);
        assert_eq!(one, many);
    }

    #[test]
    fn empty_batch_is_fine() {
        let out: Vec<u64> = parallel_map(4, Vec::<u64>::new(), |x| x);
        assert!(out.is_empty());
    }
}
