//! Failing-case minimization.
//!
//! A delta-debugging reduction specialized to per-core programs: for each
//! core, try deleting halves, then quarters, … then single operations,
//! keeping any candidate that still fails (*any* failure counts — a case
//! that stops violating BEP but starts panicking is still a bug witness,
//! and usually a smaller one). The vendored `proptest` stand-in has no
//! shrinking, so the harness owns this.

use crate::case::{run_case, CaseSpec, FailureKind};
use pbm_sim::Program;

/// Upper bound on re-runs one [`shrink`] call may spend.
pub const DEFAULT_MAX_RUNS: usize = 400;

/// Minimizes `spec` to a smaller case that still fails.
///
/// Returns the reduced spec and the failure it reproduces. The input must
/// fail; the result is always at most as large as the input (and is the
/// input itself if nothing could be removed).
///
/// # Panics
///
/// Panics if `spec` does not fail.
pub fn shrink(spec: &CaseSpec, max_runs: usize) -> (CaseSpec, FailureKind) {
    let mut best = spec.clone();
    let mut best_failure = run_case(&best).expect_err("shrink needs a failing case");
    let mut runs = 1usize;
    loop {
        let mut improved = false;
        for core in 0..best.programs.len() {
            let mut chunk = best.programs[core].len().div_ceil(2).max(1);
            loop {
                let mut start = 0;
                while start < best.programs[core].len() {
                    if runs >= max_runs {
                        return (best, best_failure);
                    }
                    let candidate = without_ops(&best, core, start, chunk);
                    runs += 1;
                    match run_case(&candidate) {
                        Err(f) => {
                            best = candidate;
                            best_failure = f;
                            improved = true;
                            // The ops after the removed range slid into
                            // `start`; retry the same position.
                        }
                        Ok(_) => start += chunk,
                    }
                }
                if chunk == 1 {
                    break;
                }
                chunk = (chunk / 2).max(1);
            }
        }
        if !improved {
            return (best, best_failure);
        }
    }
}

/// `spec` with `count` ops removed from `core`'s program at `start`.
fn without_ops(spec: &CaseSpec, core: usize, start: usize, count: usize) -> CaseSpec {
    let mut out = spec.clone();
    let ops = spec.programs[core].ops();
    let end = (start + count).min(ops.len());
    out.programs[core] = ops[..start]
        .iter()
        .chain(&ops[end..])
        .copied()
        .collect::<Program>();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbm_sim::{Op, ProgramBuilder};
    use pbm_types::{Addr, BarrierKind, PersistencyKind};

    #[test]
    fn without_ops_removes_the_range() {
        let mut b = ProgramBuilder::new();
        b.store(Addr::new(0), 1)
            .barrier()
            .compute(5)
            .store(Addr::new(64), 2);
        let spec = CaseSpec {
            programs: vec![b.build()],
            barrier: BarrierKind::LbPp,
            persistency: PersistencyKind::BufferedEpoch,
            perturb_seed: None,
            bsp_epoch_size: 7,
            seed: 0,
        };
        let cut = without_ops(&spec, 0, 1, 2);
        assert_eq!(
            cut.programs[0].ops(),
            &[Op::Store(Addr::new(0), 1), Op::Store(Addr::new(64), 2)]
        );
        // Out-of-range tails clamp instead of panicking.
        let tail = without_ops(&spec, 0, 3, 10);
        assert_eq!(tail.programs[0].len(), 3);
    }
}
