//! Replayable JSON case artifacts.
//!
//! A shrunk failing case is serialized into `tests/corpus/` so CI can
//! replay it forever. The format is the deterministic integer-only JSON
//! dialect of [`pbm_obs::json`] (the in-tree `serde` is an API stand-in
//! whose derives are no-ops, so the harness hand-rolls its documents):
//!
//! ```json
//! {"schema": "pbm-check-case/v1",
//!  "barrier": "LB++", "persistency": "BEP",
//!  "seed": 123, "perturb_seed": null, "bsp_epoch_size": 7,
//!  "bug": "drop-idt-edge",
//!  "failure": "violation at crash cycle 840: ...",
//!  "programs": [[{"op":"store","addr":64000,"value":3},{"op":"barrier"}]]}
//! ```
//!
//! `bug` and `failure` are provenance: a replay runs the case on the *real*
//! design (no injected bug) and asserts it is consistent — the corpus is a
//! regression fence of program shapes that once found bugs.

use crate::case::{CaseSpec, FailureKind};
use pbm_obs::json::{self, JsonValue};
use pbm_sim::Program;
use pbm_types::{BarrierKind, PersistencyKind};

/// Schema tag stamped into every case artifact.
pub const CASE_SCHEMA: &str = "pbm-check-case/v1";

/// A decoded corpus artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseArtifact {
    /// The replayable case.
    pub spec: CaseSpec,
    /// Injected bug that produced it, if any (name from
    /// `pbm_types::bug`).
    pub bug: Option<String>,
    /// The failure observed when the artifact was recorded.
    pub failure: Option<String>,
}

/// Parses a barrier kind from its paper label (`Display` form).
pub fn barrier_from_label(label: &str) -> Option<BarrierKind> {
    Some(match label {
        "NP" => BarrierKind::NoPersistency,
        "WT" => BarrierKind::WriteThrough,
        "LB" => BarrierKind::Lb,
        "LB+IDT" => BarrierKind::LbIdt,
        "LB+PF" => BarrierKind::LbPf,
        "LB++" => BarrierKind::LbPp,
        _ => return None,
    })
}

/// Parses a persistency model from its paper label (`Display` form).
pub fn persistency_from_label(label: &str) -> Option<PersistencyKind> {
    Some(match label {
        "SP" => PersistencyKind::Strict,
        "EP" => PersistencyKind::Epoch,
        "BEP" => PersistencyKind::BufferedEpoch,
        "BSP-bulk" => PersistencyKind::BufferedStrictBulk,
        _ => return None,
    })
}

/// Serializes a case (plus provenance) into the artifact document text.
///
/// Op encoding is the canonical one from [`pbm_sim::Op::to_json_value`],
/// shared with the `pbm-analyze` report format so a diagnostic span and a
/// corpus artifact reference identical op documents.
pub fn encode_case(spec: &CaseSpec, bug: Option<&str>, failure: Option<&FailureKind>) -> String {
    let programs = JsonValue::Array(spec.programs.iter().map(Program::to_json_value).collect());
    let opt_str = |s: Option<String>| s.map_or(JsonValue::Null, JsonValue::Str);
    let doc = JsonValue::Object(vec![
        ("schema".into(), JsonValue::Str(CASE_SCHEMA.into())),
        ("barrier".into(), JsonValue::Str(spec.barrier.to_string())),
        (
            "persistency".into(),
            JsonValue::Str(spec.persistency.to_string()),
        ),
        ("seed".into(), JsonValue::Num(spec.seed)),
        (
            "perturb_seed".into(),
            spec.perturb_seed.map_or(JsonValue::Null, JsonValue::Num),
        ),
        ("bsp_epoch_size".into(), JsonValue::Num(spec.bsp_epoch_size)),
        ("bug".into(), opt_str(bug.map(str::to_string))),
        ("failure".into(), opt_str(failure.map(ToString::to_string))),
        ("programs".into(), programs),
    ]);
    let mut text = doc.to_json();
    text.push('\n');
    text
}

/// Parses an artifact document produced by [`encode_case`].
pub fn decode_case(text: &str) -> Result<CaseArtifact, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let schema = doc.get("schema").and_then(JsonValue::as_str);
    if schema != Some(CASE_SCHEMA) {
        return Err(format!("unsupported schema {schema:?}"));
    }
    let str_field = |key: &str| {
        doc.get(key)
            .and_then(JsonValue::as_str)
            .ok_or(format!("missing {key:?}"))
    };
    let barrier = barrier_from_label(str_field("barrier")?)
        .ok_or_else(|| "unknown barrier label".to_string())?;
    let persistency = persistency_from_label(str_field("persistency")?)
        .ok_or_else(|| "unknown persistency label".to_string())?;
    let programs = doc
        .get("programs")
        .and_then(JsonValue::as_array)
        .ok_or("missing \"programs\"")?
        .iter()
        .map(Program::from_json_value)
        .collect::<Result<Vec<Program>, String>>()?;
    let opt_string = |key: &str| doc.get(key).and_then(JsonValue::as_str).map(str::to_string);
    Ok(CaseArtifact {
        spec: CaseSpec {
            programs,
            barrier,
            persistency,
            perturb_seed: doc.get("perturb_seed").and_then(JsonValue::as_u64),
            bsp_epoch_size: doc
                .get("bsp_epoch_size")
                .and_then(JsonValue::as_u64)
                .unwrap_or(7),
            seed: doc.get("seed").and_then(JsonValue::as_u64).unwrap_or(0),
        },
        bug: opt_string("bug"),
        failure: opt_string("failure"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbm_sim::ProgramBuilder;
    use pbm_types::Addr;

    #[test]
    fn artifacts_round_trip() {
        let mut b = ProgramBuilder::new();
        b.store(Addr::new(64_000), 3)
            .load(Addr::new(128))
            .compute(17)
            .lock(Addr::new(1 << 41))
            .unlock(Addr::new(1 << 41))
            .tx_end()
            .barrier();
        let spec = CaseSpec {
            programs: vec![b.build(), Program::empty()],
            barrier: BarrierKind::LbIdt,
            persistency: PersistencyKind::BufferedStrictBulk,
            perturb_seed: Some(9),
            bsp_epoch_size: 5,
            seed: 77,
        };
        let failure = FailureKind::Violation {
            at: 840,
            message: "epoch C0.E1 incomplete".into(),
        };
        let text = encode_case(&spec, Some("drop-idt-edge"), Some(&failure));
        let back = decode_case(&text).expect("parses");
        assert_eq!(back.spec, spec);
        assert_eq!(back.bug.as_deref(), Some("drop-idt-edge"));
        assert_eq!(back.failure.as_deref(), Some(failure.to_string().as_str()));
    }

    #[test]
    fn provenance_fields_may_be_null() {
        let spec = CaseSpec {
            programs: vec![Program::empty()],
            barrier: BarrierKind::Lb,
            persistency: PersistencyKind::BufferedEpoch,
            perturb_seed: None,
            bsp_epoch_size: 7,
            seed: 0,
        };
        let back = decode_case(&encode_case(&spec, None, None)).unwrap();
        assert_eq!(back.spec, spec);
        assert_eq!(back.bug, None);
        assert_eq!(back.failure, None);
    }

    #[test]
    fn labels_parse_and_reject() {
        for b in [
            BarrierKind::NoPersistency,
            BarrierKind::WriteThrough,
            BarrierKind::Lb,
            BarrierKind::LbIdt,
            BarrierKind::LbPf,
            BarrierKind::LbPp,
        ] {
            assert_eq!(barrier_from_label(&b.to_string()), Some(b));
        }
        for p in [
            PersistencyKind::Strict,
            PersistencyKind::Epoch,
            PersistencyKind::BufferedEpoch,
            PersistencyKind::BufferedStrictBulk,
        ] {
            assert_eq!(persistency_from_label(&p.to_string()), Some(p));
        }
        assert_eq!(barrier_from_label("LB+++"), None);
        assert_eq!(persistency_from_label("BSP"), None);
        assert!(decode_case("{\"schema\":\"nope\"}").is_err());
    }
}
