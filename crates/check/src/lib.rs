//! Crash-consistency fuzzing and model checking for the `pbm` simulator.
//!
//! The persistency models make point-in-time guarantees ("at *every* crash
//! cycle the durable state is BEP-consistent"), which unit tests can only
//! sample. This crate attacks them systematically:
//!
//! * [`case`] — runs one (programs, barrier, persistency, schedule) tuple
//!   and checks the model at every crash cycle where the durable state can
//!   differ (NVRAM persist timestamps; undo-log durability and commit
//!   timestamps under BSP). The sweep is exhaustive, not sampled.
//! * [`campaign`] — fuzzes the full matrix of lazy barriers × persistency
//!   models with random programs and seed-perturbed schedules (NoC hop
//!   jitter, memory-controller service jitter, LLC bank service rotation —
//!   all protocol-legal, see `pbm_sim::SchedulePerturbation`) under a
//!   wall-clock budget, then cross-checks barrier kinds differentially:
//!   identical final drained NVRAM state, and the paper's §4 claim that
//!   proactive flushing adds zero extra NVRAM writes.
//! * [`shrink`] — minimizes a failing case to a smallest reproducing
//!   program set (the vendored `proptest` has no shrinking).
//! * [`artifact`] — serializes shrunk cases as replayable JSON into
//!   `tests/corpus/`, which the `corpus` integration test replays in CI.
//! * [`pool`] — the scoped worker pool shared with `pbm-bench`.
//!
//! With the `bug-inject` feature, `campaign::bugs` hunts the deliberately
//! broken protocol variants of `pbm_types::bug` — dropping an IDT edge,
//! acknowledging an epoch flush after a single bank, skipping the §3.3
//! deadlock split, skipping BSP undo logging — and must catch all of them;
//! that closes the loop on whether the harness can detect real ordering
//! bugs at all.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod artifact;
pub mod campaign;
pub mod case;
pub mod pool;
pub mod shrink;

pub use artifact::{decode_case, encode_case, CaseArtifact};
pub use campaign::{run_campaign, CampaignConfig, CampaignReport, FailingCase};
pub use case::{run_case, CaseOk, CaseSpec, FailureKind};
pub use pool::parallel_map;
pub use shrink::shrink;
