//! Property tests of the epoch arbiter FSM: under random interleavings of
//! barriers, flush requests, bank acks and dependence traffic, the
//! arbiter must preserve the protocol invariants (in-order persists,
//! one-flush-at-a-time, dependences respected, no lost epochs).

use pbm_core::{ArbiterAction, EpochArbiter, FlushPhase};
use pbm_types::{CoreId, EpochId, EpochTag, SystemConfig};
use proptest::prelude::*;
use std::collections::HashSet;

#[derive(Debug, Clone)]
enum Cmd {
    Barrier,
    RequestFlushAll,
    DeliverBankAck,
    AddDependence(u32, u64),
    SatisfyDependence(u32, u64),
}

fn cmd_strategy() -> impl Strategy<Value = Cmd> {
    prop_oneof![
        2 => Just(Cmd::Barrier),
        2 => Just(Cmd::RequestFlushAll),
        6 => Just(Cmd::DeliverBankAck),
        1 => (1u32..4, 0u64..4).prop_map(|(c, e)| Cmd::AddDependence(c, e)),
        3 => (1u32..4, 0u64..4).prop_map(|(c, e)| Cmd::SatisfyDependence(c, e)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn arbiter_protocol_invariants(cmds in proptest::collection::vec(cmd_strategy(), 1..120)) {
        let cfg = SystemConfig::small_test(); // 4 banks
        let banks = cfg.llc_banks;
        let mut arb = EpochArbiter::new(CoreId::new(0), &cfg);
        // Flushes currently awaiting acks: (epoch, acks_delivered).
        let mut inflight: Option<(EpochId, usize)> = None;
        let mut persisted_order: Vec<EpochId> = Vec::new();
        let mut outstanding_deps: HashSet<EpochTag> = HashSet::new();

        let handle = |actions: Vec<ArbiterAction>,
                          inflight: &mut Option<(EpochId, usize)>,
                          persisted_order: &mut Vec<EpochId>| {
            for a in actions {
                match a {
                    ArbiterAction::StartEpochFlush(t) => {
                        assert!(inflight.is_none(), "two concurrent flushes");
                        *inflight = Some((t.epoch, 0));
                    }
                    ArbiterAction::EpochPersisted(t) => {
                        persisted_order.push(t.epoch);
                    }
                    ArbiterAction::BroadcastPersistCmp(_)
                    | ArbiterAction::NotifyDependent { .. } => {}
                }
            }
        };

        for cmd in cmds {
            match cmd {
                Cmd::Barrier => {
                    if arb.ledger().inflight() < cfg.inflight_epochs {
                        arb.barrier();
                    }
                }
                Cmd::RequestFlushAll => {
                    if let Some(last) = arb.ledger().current().prev() {
                        if Some(last) >= arb.ledger().first_unpersisted() {
                            arb.request_flush_upto(last);
                            let acts = arb.try_advance();
                            handle(acts, &mut inflight, &mut persisted_order);
                        }
                    }
                }
                Cmd::DeliverBankAck => {
                    if let Some((e, n)) = inflight {
                        let acts = arb.bank_ack(e);
                        if n + 1 == banks {
                            inflight = None;
                            // the last ack may chain into the next flush
                        } else {
                            inflight = Some((e, n + 1));
                        }
                        handle(acts, &mut inflight, &mut persisted_order);
                    }
                }
                Cmd::AddDependence(c, e) => {
                    let source = EpochTag::new(CoreId::new(c), EpochId::new(e));
                    // Only record against the current (ongoing) epoch, as
                    // the simulator does at conflict detection.
                    let dep = arb.ledger().current();
                    if arb.add_dependence(dep, source).is_ok() {
                        outstanding_deps.insert(source);
                    }
                }
                Cmd::SatisfyDependence(c, e) => {
                    let source = EpochTag::new(CoreId::new(c), EpochId::new(e));
                    outstanding_deps.remove(&source);
                    let acts = arb.dependence_satisfied(source);
                    handle(acts, &mut inflight, &mut persisted_order);
                }
            }

            // Invariant: persists are in strict program order, gapless.
            for (i, e) in persisted_order.iter().enumerate() {
                prop_assert_eq!(*e, EpochId::new(i as u64));
            }
            // Invariant: a flush in AwaitingBankAcks targets the frontier.
            if let FlushPhase::AwaitingBankAcks(e) = arb.phase() {
                prop_assert_eq!(Some(e), arb.ledger().first_unpersisted());
            }
            // Invariant: WaitingDeps only with unsatisfied sources.
            if let FlushPhase::WaitingDeps(e) = arb.phase() {
                prop_assert!(!arb.idt().is_clear(e));
            }
            // Invariant: the in-flight window is bounded.
            prop_assert!(arb.ledger().inflight() <= cfg.inflight_epochs);
        }

        // Drain: satisfy everything, request all, deliver all acks. The
        // arbiter must reach quiescence with every completed epoch durable.
        for s in outstanding_deps.drain() {
            let acts = arb.dependence_satisfied(s);
            handle(acts, &mut inflight, &mut persisted_order);
        }
        if let Some(last) = arb.ledger().current().prev() {
            if Some(last) >= arb.ledger().first_unpersisted() {
                arb.request_flush_upto(last);
                let acts = arb.try_advance();
                handle(acts, &mut inflight, &mut persisted_order);
            }
        }
        let mut guard = 0;
        while let Some((e, _)) = inflight {
            let acts = arb.bank_ack(e);
            if let Some((e2, n)) = inflight {
                inflight = if n + 1 == banks { None } else { Some((e2, n + 1)) };
            }
            handle(acts, &mut inflight, &mut persisted_order);
            guard += 1;
            prop_assert!(guard < 10_000, "drain did not converge");
        }
        prop_assert_eq!(arb.phase(), FlushPhase::Idle);
        prop_assert_eq!(
            persisted_order.len() as u64,
            arb.ledger().completed_count(),
            "every completed epoch must persist after the drain"
        );
    }
}
