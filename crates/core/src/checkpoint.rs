//! Processor-state checkpointing for BSP bulk mode (§5.2, §6).
//!
//! At every hardware epoch boundary the processor state — general-purpose,
//! special, privilege and non-AVX floating-point registers — is saved to
//! persistent memory alongside the epoch's data, so execution can restart
//! from the last durable epoch after a crash (in the spirit of WSP).
//! This module models the *cost*: how many NVRAM line writes each
//! checkpoint adds to an epoch flush.

use pbm_types::{LineAddr, LINE_SIZE};

/// Cost model of one per-epoch processor-state checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointModel {
    bytes: u64,
}

impl CheckpointModel {
    /// A checkpoint of `bytes` of architectural state (the paper's register
    /// inventory comes to ~512 B per core; `SystemConfig::checkpoint_bytes`).
    pub fn new(bytes: u64) -> Self {
        CheckpointModel { bytes }
    }

    /// Bytes captured per checkpoint.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// NVRAM line writes added to every epoch flush.
    pub fn lines_per_epoch(&self) -> u64 {
        LineAddr::lines_for(self.bytes)
    }

    /// Total checkpoint traffic in bytes after `epochs` epochs.
    pub fn traffic_bytes(&self, epochs: u64) -> u64 {
        self.lines_per_epoch() * LINE_SIZE * epochs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_checkpoint_is_eight_lines() {
        let m = CheckpointModel::new(512);
        assert_eq!(m.lines_per_epoch(), 8);
        assert_eq!(m.bytes(), 512);
    }

    #[test]
    fn ragged_sizes_round_up() {
        assert_eq!(CheckpointModel::new(1).lines_per_epoch(), 1);
        assert_eq!(CheckpointModel::new(65).lines_per_epoch(), 2);
        assert_eq!(CheckpointModel::new(0).lines_per_epoch(), 0);
    }

    #[test]
    fn traffic_accumulates() {
        let m = CheckpointModel::new(512);
        assert_eq!(m.traffic_bytes(10), 8 * 64 * 10);
    }
}
