//! The paper's contribution: efficient persist barriers (LB++) as pure,
//! timing-free architectural logic.
//!
//! This crate implements every mechanism §3–§5 of *Efficient Persist
//! Barriers for Multicores* (MICRO-48, 2015) describes, decoupled from the
//! cycle-level timing model in `pbm-sim` so each piece is independently
//! unit- and property-testable:
//!
//! * [`EpochLedger`] — the per-core epoch lifecycle
//!   (ongoing → completed → flushing → persisted) behind the 3-bit epoch-id
//!   back-pressure window;
//! * [`EpochArbiter`] — the per-core arbiter of §4.1/§4.2 that orchestrates
//!   the multi-banked epoch flush handshake (FlushEpoch → BankAck →
//!   PersistCMP) and enforces IDT dependences offline;
//! * [`IdtRegisters`] — the bounded dependence/inform register file of
//!   §3.1/§4.3, with overflow fallback;
//! * [`split_decision`] — the deadlock-avoidance rule of §3.3 (split the
//!   source epoch when a dependence lands on an *ongoing* epoch);
//! * [`HbGraph`] — the epoch happens-before order (program order ∪
//!   inter-thread dependences) used both by the deadlock checker and the
//!   crash-consistency checker;
//! * [`recovery`] — the offline crash-consistency checker: epoch
//!   prefix-closure for BEP and post-undo atomicity for BSP;
//! * [`BarrierSemantics`] — what a persist barrier means under each
//!   persistency model (SP/EP/BEP/BSP-bulk), including BSP's hardware
//!   epoch cutting and checkpoint cost.
//!
//! # Example
//!
//! ```
//! use pbm_core::{EpochArbiter, ArbiterAction};
//! use pbm_types::{CoreId, EpochId, SystemConfig};
//!
//! let cfg = SystemConfig::small_test();
//! let mut arb = EpochArbiter::new(CoreId::new(0), &cfg);
//! let e0 = arb.barrier();              // close epoch 0
//! arb.request_flush_upto(e0);
//! let actions = arb.try_advance();
//! assert!(matches!(actions[0], ArbiterAction::StartEpochFlush(t) if t.epoch == e0));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arbiter;
mod checkpoint;
mod deadlock;
mod epoch;
mod hb;
mod idt;
mod persistency;
mod protocol;
pub mod recovery;

pub use arbiter::{ArbiterAction, EpochArbiter, FlushPhase};
pub use checkpoint::CheckpointModel;
pub use deadlock::{split_decision, SplitDecision};
pub use epoch::{EpochLedger, EpochState};
pub use hb::HbGraph;
pub use idt::{IdtOverflow, IdtRegisters};
pub use persistency::BarrierSemantics;
pub use protocol::FlushMessage;
