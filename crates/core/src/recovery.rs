//! Offline crash-consistency checking.
//!
//! The simulator records every committed store as a globally unique token
//! (see [`pbm_nvram::LineValue`]) together with the epoch that issued it.
//! Given the durable NVRAM state at an arbitrary crash cycle, this module
//! decides whether the persist barrier under test actually enforced its
//! persistency model:
//!
//! * **BEP** guarantees *ordering*: epochs become durable in happens-before
//!   order. Concretely, per core at most the newest epoch with durable
//!   effects may be partial, every older epoch must be complete; and for
//!   every recorded inter-thread dependence `S → D`, once `D` (or anything
//!   after it on its core) has durable effects, `S` must be complete.
//! * **BSP** (after undo-log recovery) additionally guarantees
//!   *atomicity*: every epoch is durable all-or-nothing.
//!
//! "Complete" accounts for write coalescing: an epoch's write to a line is
//! satisfied by the durable value being that write *or any later write* to
//! the same line — the intra-thread conflict rule (§3.2) guarantees the
//! older value was durably ordered first whenever that matters.

use crate::hb::HbGraph;
use pbm_nvram::{DurableSnapshot, LineValue};
use pbm_types::{CoreId, EpochId, EpochTag, LineAddr};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A detected violation of the persistency model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConsistencyViolation {
    /// A durable line holds a value no recorded store ever wrote.
    PhantomValue {
        /// The line.
        line: LineAddr,
        /// The unattributable durable token.
        token: LineValue,
    },
    /// An epoch that must be complete is missing one of its effects.
    IncompleteEpoch {
        /// The epoch that should be fully durable.
        epoch: EpochTag,
        /// A line it wrote whose durable value is older than its write.
        line: LineAddr,
        /// Why this epoch was required to be complete.
        because: CompletionReason,
    },
    /// BSP only: an epoch is durable in part (atomicity broken even after
    /// undo recovery).
    PartialEpoch {
        /// The partially-durable epoch.
        epoch: EpochTag,
        /// A line proving partiality.
        line: LineAddr,
    },
}

/// Why the checker demanded an epoch be complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompletionReason {
    /// A newer epoch of the same core has durable effects (program order).
    ProgramOrder {
        /// The newer epoch observed durable.
        newer: EpochId,
    },
    /// A dependent epoch on another core has durable effects.
    InterThread {
        /// The dependent epoch.
        dependent: EpochTag,
    },
}

impl fmt::Display for ConsistencyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsistencyViolation::PhantomValue { line, token } => {
                write!(f, "durable line {line} holds unattributable token {token}")
            }
            ConsistencyViolation::IncompleteEpoch {
                epoch,
                line,
                because,
            } => write!(
                f,
                "epoch {epoch} incomplete at line {line} (required by {because:?})"
            ),
            ConsistencyViolation::PartialEpoch { epoch, line } => {
                write!(f, "epoch {epoch} partially durable (line {line})")
            }
        }
    }
}

impl std::error::Error for ConsistencyViolation {}

/// The write journal + dependence record against which snapshots are
/// checked.
#[derive(Debug, Clone, Default)]
pub struct ConsistencyChecker {
    /// Per line: the committed write sequence, oldest first.
    writes: HashMap<LineAddr, Vec<(LineValue, EpochTag)>>,
    /// token -> (line, position in that line's sequence, epoch).
    by_token: HashMap<LineValue, (LineAddr, usize, EpochTag)>,
    /// Per epoch: the lines it wrote with the position of its *last* write
    /// to each.
    epoch_writes: HashMap<EpochTag, HashMap<LineAddr, usize>>,
    /// Recorded inter-thread dependences (source, dependent).
    dependences: Vec<(EpochTag, EpochTag)>,
}

impl ConsistencyChecker {
    /// Creates an empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a committed store of unique `token` to `line` by `tag`.
    ///
    /// # Panics
    ///
    /// Panics if `token` was already recorded — tokens must be globally
    /// unique for attribution to work.
    pub fn record_write(&mut self, line: LineAddr, token: LineValue, tag: EpochTag) {
        let seq = self.writes.entry(line).or_default();
        let pos = seq.len();
        seq.push((token, tag));
        let prev = self.by_token.insert(token, (line, pos, tag));
        assert!(prev.is_none(), "token {token} reused");
        self.epoch_writes.entry(tag).or_default().insert(line, pos);
    }

    /// Records an inter-thread dependence `source → dependent` (mirrors
    /// what IDT or an online flush enforced at runtime).
    pub fn record_dependence(&mut self, source: EpochTag, dependent: EpochTag) {
        self.dependences.push((source, dependent));
    }

    /// Records a pre-existing durable value (workload preload): it joins
    /// `line`'s write sequence at position 0 but belongs to no epoch, so it
    /// imposes no ordering obligations.
    ///
    /// # Panics
    ///
    /// Panics if the token was already recorded, or if `line` already has
    /// recorded writes (preloads must precede execution).
    pub fn record_initial(&mut self, line: LineAddr, token: LineValue) {
        const INITIAL: EpochTag = EpochTag::new(CoreId::new(u32::MAX), EpochId::new(u64::MAX));
        let seq = self.writes.entry(line).or_default();
        assert!(seq.is_empty(), "preload after writes to {line}");
        seq.push((token, INITIAL));
        let prev = self.by_token.insert(token, (line, 0, INITIAL));
        assert!(prev.is_none(), "token {token} reused");
        // Deliberately absent from epoch_writes: the initial image is not
        // an epoch and is never required to be "complete".
    }

    /// Builds the happens-before graph of recorded dependences (program
    /// order edges are implicit in per-core epoch ids).
    pub fn hb_graph(&self) -> HbGraph {
        let mut hb = HbGraph::new();
        for &(s, d) in &self.dependences {
            hb.add_dependence(s, d);
        }
        hb
    }

    /// Total committed writes recorded.
    pub fn write_count(&self) -> usize {
        self.by_token.len()
    }

    /// Total distinct `(epoch, line)` pairs recorded — the exact number of
    /// line writes a coalescing epoch-flush protocol must issue to NVRAM.
    ///
    /// Proactive flushing changes *when* epochs flush, never *what*, so
    /// `SimStats::epoch_flush_writes` must equal this once every epoch has
    /// drained (the paper's §4 zero-extra-writes claim; asserted by
    /// `pbm-check`).
    pub fn epoch_line_write_count(&self) -> usize {
        self.epoch_writes.values().map(HashMap::len).sum()
    }

    /// The lines `tag` wrote, with its last token for each (diagnostics).
    pub fn epoch_write_lines(&self, tag: EpochTag) -> Vec<(LineAddr, LineValue)> {
        self.epoch_writes
            .get(&tag)
            .map(|m| {
                m.iter()
                    .map(|(l, pos)| (*l, self.writes[l][*pos].0))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// True if `tag` has at least one durable effect in `snap`.
    pub fn epoch_effect_durable(&self, snap: &DurableSnapshot, tag: EpochTag) -> bool {
        let Some(lines) = self.epoch_writes.get(&tag) else {
            return false;
        };
        lines.keys().any(|line| {
            snap.line(*line)
                .and_then(|tok| self.by_token.get(&tok))
                .is_some_and(|(_, _, t)| *t == tag)
        })
    }

    /// Checks that every write of `tag` is covered in `snap`: each written
    /// line's durable value is `tag`'s write or a newer one. Returns the
    /// first uncovered line.
    pub fn epoch_complete(&self, snap: &DurableSnapshot, tag: EpochTag) -> Result<(), LineAddr> {
        let Some(lines) = self.epoch_writes.get(&tag) else {
            return Ok(()); // wrote nothing: vacuously complete
        };
        for (&line, &pos) in lines {
            let durable_pos = snap
                .line(line)
                .and_then(|tok| self.by_token.get(&tok))
                .filter(|(l, _, _)| *l == line)
                .map(|(_, p, _)| *p);
            match durable_pos {
                Some(p) if p >= pos => {}
                _ => return Err(line),
            }
        }
        Ok(())
    }

    /// Per-core frontier: the newest epoch of `core` with durable effects.
    fn durable_frontier(&self, snap: &DurableSnapshot, core: CoreId) -> Option<EpochId> {
        self.epoch_writes
            .keys()
            .filter(|t| t.core == core)
            .filter(|t| self.epoch_effect_durable(snap, **t))
            .map(|t| t.epoch)
            .max()
    }

    /// All cores that recorded writes.
    fn cores(&self) -> Vec<CoreId> {
        let mut cores: Vec<CoreId> = self.epoch_writes.keys().map(|t| t.core).collect();
        cores.sort();
        cores.dedup();
        cores
    }

    /// Checks for durable values no store ever wrote.
    fn check_phantoms(&self, snap: &DurableSnapshot) -> Result<(), ConsistencyViolation> {
        for (line, token) in snap.iter() {
            match self.by_token.get(&token) {
                Some((l, _, _)) if *l == line => {}
                _ => return Err(ConsistencyViolation::PhantomValue { line, token }),
            }
        }
        Ok(())
    }

    /// Checks the BEP ordering invariants against a crash snapshot.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConsistencyViolation`] found.
    pub fn check_bep(&self, snap: &DurableSnapshot) -> Result<(), ConsistencyViolation> {
        self.check_phantoms(snap)?;
        // Program order: everything strictly below the durable frontier of
        // each core must be complete.
        for core in self.cores() {
            let Some(frontier) = self.durable_frontier(snap, core) else {
                continue;
            };
            for tag in self.epoch_writes.keys().filter(|t| t.core == core) {
                if tag.epoch < frontier {
                    if let Err(line) = self.epoch_complete(snap, *tag) {
                        return Err(ConsistencyViolation::IncompleteEpoch {
                            epoch: *tag,
                            line,
                            because: CompletionReason::ProgramOrder { newer: frontier },
                        });
                    }
                }
            }
        }
        // Inter-thread dependences: once the dependent (or anything after
        // it on its core) is durably visible, the source must be complete.
        for &(source, dependent) in &self.dependences {
            let dep_started = self
                .durable_frontier(snap, dependent.core)
                .is_some_and(|f| f >= dependent.epoch);
            if dep_started {
                if let Err(line) = self.epoch_complete(snap, source) {
                    return Err(ConsistencyViolation::IncompleteEpoch {
                        epoch: source,
                        line,
                        because: CompletionReason::InterThread { dependent },
                    });
                }
            }
        }
        Ok(())
    }

    /// Checks the BSP invariants (ordering + atomicity) against a
    /// *recovered* snapshot (after
    /// [`DurableSnapshot::recover_with`]).
    ///
    /// # Errors
    ///
    /// Returns the first [`ConsistencyViolation`] found.
    pub fn check_bsp_recovered(&self, snap: &DurableSnapshot) -> Result<(), ConsistencyViolation> {
        self.check_bep(snap)?;
        // Atomicity: any epoch with a durable effect must be complete.
        let mut tags: Vec<&EpochTag> = self.epoch_writes.keys().collect();
        tags.sort();
        for tag in tags {
            if self.epoch_effect_durable(snap, *tag) {
                if let Err(line) = self.epoch_complete(snap, *tag) {
                    return Err(ConsistencyViolation::PartialEpoch { epoch: *tag, line });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap as Map;

    fn tag(c: u32, e: u64) -> EpochTag {
        EpochTag::new(CoreId::new(c), EpochId::new(e))
    }

    fn snap(pairs: &[(u64, u64)]) -> DurableSnapshot {
        DurableSnapshot::new(
            pairs
                .iter()
                .map(|&(l, v)| (LineAddr::new(l), v))
                .collect::<Map<_, _>>(),
            pbm_types::Cycle::new(1000),
        )
    }

    /// Epoch 0 writes lines 1,2; epoch 1 writes line 3.
    fn two_epoch_journal() -> ConsistencyChecker {
        let mut ck = ConsistencyChecker::new();
        ck.record_write(LineAddr::new(1), 101, tag(0, 0));
        ck.record_write(LineAddr::new(2), 102, tag(0, 0));
        ck.record_write(LineAddr::new(3), 103, tag(0, 1));
        ck
    }

    #[test]
    fn empty_snapshot_is_consistent() {
        let ck = two_epoch_journal();
        ck.check_bep(&snap(&[])).unwrap();
    }

    #[test]
    fn ordered_persist_is_consistent() {
        let ck = two_epoch_journal();
        // Epoch 0 fully durable, epoch 1 partially: fine for BEP.
        ck.check_bep(&snap(&[(1, 101), (2, 102)])).unwrap();
        ck.check_bep(&snap(&[(1, 101), (2, 102), (3, 103)]))
            .unwrap();
    }

    #[test]
    fn out_of_order_persist_is_flagged() {
        let ck = two_epoch_journal();
        // Epoch 1's line durable while epoch 0's line 2 is not.
        let err = ck.check_bep(&snap(&[(1, 101), (3, 103)])).unwrap_err();
        assert_eq!(
            err,
            ConsistencyViolation::IncompleteEpoch {
                epoch: tag(0, 0),
                line: LineAddr::new(2),
                because: CompletionReason::ProgramOrder {
                    newer: EpochId::new(1)
                },
            }
        );
    }

    #[test]
    fn partial_frontier_epoch_is_allowed_in_bep() {
        let ck = two_epoch_journal();
        // Only part of epoch 0 durable, nothing newer: legal.
        ck.check_bep(&snap(&[(1, 101)])).unwrap();
    }

    #[test]
    fn phantom_value_is_flagged() {
        let ck = two_epoch_journal();
        let err = ck.check_bep(&snap(&[(1, 999)])).unwrap_err();
        assert!(matches!(err, ConsistencyViolation::PhantomValue { .. }));
    }

    #[test]
    fn coalesced_overwrite_counts_as_coverage() {
        let mut ck = ConsistencyChecker::new();
        ck.record_write(LineAddr::new(1), 10, tag(0, 0));
        ck.record_write(LineAddr::new(1), 20, tag(0, 1)); // overwrites in a later epoch
        ck.record_write(LineAddr::new(2), 30, tag(0, 2));
        // Durable: line1 holds epoch 1's value, line2 holds epoch 2's.
        // Epoch 0's write to line1 is covered by the newer durable write.
        ck.check_bep(&snap(&[(1, 20), (2, 30)])).unwrap();
    }

    #[test]
    fn stale_value_under_newer_durable_epoch_is_flagged() {
        let mut ck = ConsistencyChecker::new();
        ck.record_write(LineAddr::new(1), 10, tag(0, 0));
        ck.record_write(LineAddr::new(1), 20, tag(0, 1));
        ck.record_write(LineAddr::new(2), 30, tag(0, 2));
        // Epoch 2 durable but line 1 still holds epoch *0*'s value: epoch 1
        // must have been complete (durable pos >= its write) — violation.
        let err = ck.check_bep(&snap(&[(1, 10), (2, 30)])).unwrap_err();
        assert!(matches!(
            err,
            ConsistencyViolation::IncompleteEpoch {
                epoch,
                ..
            } if epoch == tag(0, 1)
        ));
    }

    #[test]
    fn inter_thread_dependence_enforced() {
        let mut ck = ConsistencyChecker::new();
        ck.record_write(LineAddr::new(1), 10, tag(0, 0)); // source writes line 1
        ck.record_write(LineAddr::new(2), 20, tag(1, 0)); // dependent writes line 2
        ck.record_dependence(tag(0, 0), tag(1, 0));
        // Dependent durable, source not: violation.
        let err = ck.check_bep(&snap(&[(2, 20)])).unwrap_err();
        assert_eq!(
            err,
            ConsistencyViolation::IncompleteEpoch {
                epoch: tag(0, 0),
                line: LineAddr::new(1),
                because: CompletionReason::InterThread {
                    dependent: tag(1, 0)
                },
            }
        );
        // Source durable too: fine.
        ck.check_bep(&snap(&[(1, 10), (2, 20)])).unwrap();
        // Source durable alone: fine (dependence is one-directional).
        ck.check_bep(&snap(&[(1, 10)])).unwrap();
    }

    #[test]
    fn bsp_atomicity_flags_partial_epoch() {
        let ck = two_epoch_journal();
        // Epoch 0 half-durable: legal for BEP, illegal for recovered BSP.
        let s = snap(&[(1, 101)]);
        ck.check_bep(&s).unwrap();
        let err = ck.check_bsp_recovered(&s).unwrap_err();
        assert_eq!(
            err,
            ConsistencyViolation::PartialEpoch {
                epoch: tag(0, 0),
                line: LineAddr::new(2),
            }
        );
    }

    #[test]
    fn bsp_accepts_whole_epochs() {
        let ck = two_epoch_journal();
        ck.check_bsp_recovered(&snap(&[])).unwrap();
        ck.check_bsp_recovered(&snap(&[(1, 101), (2, 102)]))
            .unwrap();
        ck.check_bsp_recovered(&snap(&[(1, 101), (2, 102), (3, 103)]))
            .unwrap();
    }

    #[test]
    fn hb_graph_export() {
        let mut ck = ConsistencyChecker::new();
        ck.record_dependence(tag(0, 0), tag(1, 0));
        let hb = ck.hb_graph();
        assert_eq!(hb.edge_count(), 1);
        assert!(hb.is_acyclic());
    }

    #[test]
    #[should_panic(expected = "token")]
    fn duplicate_token_panics() {
        let mut ck = ConsistencyChecker::new();
        ck.record_write(LineAddr::new(1), 1, tag(0, 0));
        ck.record_write(LineAddr::new(2), 1, tag(0, 0));
    }

    #[test]
    fn violation_display() {
        let v = ConsistencyViolation::PhantomValue {
            line: LineAddr::new(1),
            token: 9,
        };
        assert!(v.to_string().contains("unattributable"));
    }
}
