//! What a persist barrier means under each persistency model (§2.1, §5).

use pbm_types::PersistencyKind;

/// Decodes a [`PersistencyKind`] into the behaviours the core model and the
/// memory system need to apply (§2.1's rules S1/S2/E1/E2 and §5.2's bulk
/// mode).
///
/// # Example
///
/// ```
/// use pbm_core::BarrierSemantics;
/// use pbm_types::PersistencyKind;
///
/// let bep = BarrierSemantics::for_model(PersistencyKind::BufferedEpoch, 0);
/// assert!(!bep.barrier_stalls());          // buffered: barriers don't wait
/// let bsp = BarrierSemantics::for_model(PersistencyKind::BufferedStrictBulk, 10_000);
/// assert_eq!(bsp.hardware_epoch_size(), Some(10_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierSemantics {
    kind: PersistencyKind,
    bsp_epoch_size: u64,
}

impl BarrierSemantics {
    /// Builds the semantics for a model. `bsp_epoch_size` is only
    /// meaningful for [`PersistencyKind::BufferedStrictBulk`].
    pub fn for_model(kind: PersistencyKind, bsp_epoch_size: u64) -> Self {
        BarrierSemantics {
            kind,
            bsp_epoch_size,
        }
    }

    /// The model.
    pub fn kind(&self) -> PersistencyKind {
        self.kind
    }

    /// True if a persist barrier stalls the core until the previous epoch
    /// has fully persisted (rule E2 of EP; rule S2 of SP degenerates to
    /// per-store stalls handled by the write-through path).
    pub fn barrier_stalls(&self) -> bool {
        matches!(self.kind, PersistencyKind::Strict | PersistencyKind::Epoch)
    }

    /// True if every store must persist before the next becomes visible
    /// (strict persistency rule S2 — the write-through baseline).
    pub fn store_stalls(&self) -> bool {
        self.kind == PersistencyKind::Strict
    }

    /// `Some(n)` if hardware cuts an epoch every `n` dynamic stores
    /// (BSP bulk mode, §5.2); `None` for programmer-inserted barriers.
    pub fn hardware_epoch_size(&self) -> Option<u64> {
        match self.kind {
            PersistencyKind::BufferedStrictBulk => Some(self.bsp_epoch_size),
            _ => None,
        }
    }

    /// True if epoch atomicity requires undo logging (BSP: a crash may
    /// leave an epoch partially persisted; BEP exposes epoch granularity
    /// to the programmer instead).
    pub fn needs_logging(&self) -> bool {
        self.kind == PersistencyKind::BufferedStrictBulk
    }

    /// True if processor state must be checkpointed at epoch boundaries
    /// (BSP restarts from the last durable epoch, §5.2).
    pub fn needs_checkpoint(&self) -> bool {
        self.kind == PersistencyKind::BufferedStrictBulk
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_stalls_everything() {
        let s = BarrierSemantics::for_model(PersistencyKind::Strict, 0);
        assert!(s.barrier_stalls());
        assert!(s.store_stalls());
        assert_eq!(s.hardware_epoch_size(), None);
        assert!(!s.needs_logging());
    }

    #[test]
    fn epoch_persistency_stalls_barriers_only() {
        let s = BarrierSemantics::for_model(PersistencyKind::Epoch, 0);
        assert!(s.barrier_stalls());
        assert!(!s.store_stalls());
    }

    #[test]
    fn buffered_epoch_never_stalls() {
        let s = BarrierSemantics::for_model(PersistencyKind::BufferedEpoch, 0);
        assert!(!s.barrier_stalls());
        assert!(!s.store_stalls());
        assert!(!s.needs_logging());
        assert!(!s.needs_checkpoint());
    }

    #[test]
    fn bsp_bulk_cuts_and_logs() {
        let s = BarrierSemantics::for_model(PersistencyKind::BufferedStrictBulk, 300);
        assert!(!s.barrier_stalls());
        assert_eq!(s.hardware_epoch_size(), Some(300));
        assert!(s.needs_logging());
        assert!(s.needs_checkpoint());
        assert_eq!(s.kind(), PersistencyKind::BufferedStrictBulk);
    }
}
