//! The per-core epoch arbiter (§4.1, §4.2).
//!
//! Sits in the L1 cache controller and orchestrates the multi-banked epoch
//! flush handshake of Figure 8: ① flush the epoch's L1 lines and broadcast
//! `FlushEpoch` to every LLC bank, ② banks flush their lines and collect
//! `PersistAck`s, ③ banks return `BankAck`, ④ the arbiter broadcasts
//! `PersistCMP`. Epochs of one core flush strictly in program order, one at
//! a time; the arbiter additionally holds an epoch's flush until every IDT
//! source epoch recorded for it has persisted (§4.2's dependence
//! registers), and notifies dependents from its inform registers once an
//! epoch persists.
//!
//! The arbiter is a pure state machine: it consumes events (`bank_ack`,
//! `dependence_satisfied`, flush requests) and emits [`ArbiterAction`]s for
//! the timing layer to execute. This keeps the protocol logic exhaustively
//! testable without a simulator.

use crate::epoch::{EpochLedger, EpochState};
use crate::idt::{IdtOverflow, IdtRegisters};
use pbm_types::{CoreId, EpochId, EpochTag, SystemConfig};

/// What the timing layer must do on behalf of the arbiter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbiterAction {
    /// Begin the flush of this epoch: write back its L1 lines to the LLC
    /// banks and broadcast `FlushEpoch` (step ① of Figure 8).
    StartEpochFlush(EpochTag),
    /// All banks acked: broadcast `PersistCMP` (step ④) so banks may
    /// advance to the next epoch of this core.
    BroadcastPersistCmp(EpochTag),
    /// Tell the arbiter of `dependent.core` that `source` has persisted
    /// (inform-register notification, §4.2).
    NotifyDependent {
        /// The epoch that just persisted (ours).
        source: EpochTag,
        /// The waiting epoch on another core.
        dependent: EpochTag,
    },
    /// Bookkeeping signal: this epoch is now durable (stats, ledger hooks,
    /// unblocking of requests queued on the persist).
    EpochPersisted(EpochTag),
}

/// Where the arbiter's flush pipeline currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushPhase {
    /// No flush in progress.
    Idle,
    /// The frontier epoch wants to flush but waits on IDT source epochs.
    WaitingDeps(EpochId),
    /// `FlushEpoch` broadcast; counting `BankAck`s.
    AwaitingBankAcks(EpochId),
}

/// The per-core epoch arbiter: ledger + IDT registers + flush FSM.
#[derive(Debug, Clone)]
pub struct EpochArbiter {
    core: CoreId,
    num_banks: usize,
    ledger: EpochLedger,
    idt: IdtRegisters,
    phase: FlushPhase,
    acks: usize,
    /// Highest epoch id requested to flush (conflicts, PF, back-pressure,
    /// drain). `None` = nothing requested.
    goal: Option<EpochId>,
    splits: u64,
}

impl EpochArbiter {
    /// Creates the arbiter for `core` under `cfg`.
    pub fn new(core: CoreId, cfg: &SystemConfig) -> Self {
        EpochArbiter {
            core,
            num_banks: cfg.llc_banks,
            ledger: EpochLedger::new(core),
            idt: IdtRegisters::new(cfg.idt_pairs),
            phase: FlushPhase::Idle,
            acks: 0,
            goal: None,
            splits: 0,
        }
    }

    /// The core this arbiter serves.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// Read-only view of the epoch ledger.
    pub fn ledger(&self) -> &EpochLedger {
        &self.ledger
    }

    /// Read-only view of the IDT registers.
    pub fn idt(&self) -> &IdtRegisters {
        &self.idt
    }

    /// Current flush phase.
    pub fn phase(&self) -> FlushPhase {
        self.phase
    }

    /// Retires a persist barrier: closes the ongoing epoch. Returns the
    /// closed epoch's id. The caller is responsible for back-pressure
    /// (checking [`EpochLedger::inflight`] first).
    pub fn barrier(&mut self) -> EpochId {
        self.ledger.close_current()
    }

    /// Splits the ongoing epoch for deadlock avoidance (§3.3): identical to
    /// a barrier, but counted separately. Returns the completed first half.
    pub fn split_current(&mut self) -> EpochId {
        self.splits += 1;
        self.ledger.close_current()
    }

    /// Number of deadlock-avoidance splits performed.
    pub fn split_count(&self) -> u64 {
        self.splits
    }

    /// Requests that all epochs up to and including `epoch` be flushed.
    /// Idempotent; the goal only ratchets upward. Call
    /// [`Self::try_advance`] afterwards to collect actions.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` is the ongoing epoch or later — only completed
    /// epochs can flush; conflicts with an ongoing epoch must first split
    /// or close it.
    pub fn request_flush_upto(&mut self, epoch: EpochId) {
        assert!(
            epoch < self.ledger.current(),
            "cannot flush ongoing epoch {epoch}"
        );
        self.goal = Some(match self.goal {
            Some(g) => g.max(epoch),
            None => epoch,
        });
    }

    /// Records an IDT dependence: local epoch `dependent` must wait for
    /// remote `source`.
    ///
    /// # Errors
    ///
    /// Propagates [`IdtOverflow`] (caller falls back to an online flush).
    ///
    /// # Panics
    ///
    /// Panics if `source` belongs to this core — intra-thread ordering is
    /// already enforced by in-order flushing.
    pub fn add_dependence(
        &mut self,
        dependent: EpochId,
        source: EpochTag,
    ) -> Result<(), IdtOverflow> {
        assert_ne!(source.core, self.core, "intra-core dependence is implicit");
        self.idt.add_dependence(dependent, source)
    }

    /// Records an inform-register entry: when local `source` persists,
    /// notify remote `dependent`.
    ///
    /// # Errors
    ///
    /// Propagates [`IdtOverflow`].
    pub fn add_inform(&mut self, source: EpochId, dependent: EpochTag) -> Result<(), IdtOverflow> {
        assert_ne!(dependent.core, self.core);
        self.idt.add_inform(source, dependent)
    }

    /// A remote source epoch persisted; releases matching dependence
    /// registers and resumes a stalled flush if possible.
    pub fn dependence_satisfied(&mut self, source: EpochTag) -> Vec<ArbiterAction> {
        self.idt.satisfy(source);
        self.try_advance()
    }

    /// A bank acknowledged the current epoch flush (step ③).
    ///
    /// # Panics
    ///
    /// Panics if no flush is awaiting acks for `epoch` — a protocol bug.
    pub fn bank_ack(&mut self, epoch: EpochId) -> Vec<ArbiterAction> {
        let premature = premature_bank_ack_bug();
        if premature && self.phase != FlushPhase::AwaitingBankAcks(epoch) {
            // Stray late acks from a flush the bug already "completed".
            return Vec::new();
        }
        assert_eq!(
            self.phase,
            FlushPhase::AwaitingBankAcks(epoch),
            "unexpected BankAck for {epoch}"
        );
        self.acks += 1;
        let needed = if premature { 1 } else { self.num_banks };
        if self.acks < needed {
            return Vec::new();
        }
        // Step ④: epoch persisted.
        let tag = EpochTag::new(self.core, epoch);
        self.ledger.mark_persisted(epoch);
        self.phase = FlushPhase::Idle;
        self.acks = 0;
        let mut actions = vec![
            ArbiterAction::BroadcastPersistCmp(tag),
            ArbiterAction::EpochPersisted(tag),
        ];
        for dependent in self.idt.drain_inform(epoch) {
            actions.push(ArbiterAction::NotifyDependent {
                source: tag,
                dependent,
            });
        }
        actions.extend(self.try_advance());
        actions
    }

    /// Attempts to start (or resume) flushing toward the goal. Returns the
    /// actions to execute; empty if nothing can proceed.
    pub fn try_advance(&mut self) -> Vec<ArbiterAction> {
        if matches!(self.phase, FlushPhase::AwaitingBankAcks(_)) {
            return Vec::new();
        }
        let Some(goal) = self.goal else {
            self.phase = FlushPhase::Idle;
            return Vec::new();
        };
        let Some(next) = self.ledger.first_unpersisted() else {
            self.phase = FlushPhase::Idle;
            self.goal = None;
            return Vec::new();
        };
        if next > goal {
            // Everything requested has persisted.
            self.phase = FlushPhase::Idle;
            self.goal = None;
            return Vec::new();
        }
        match self.ledger.state(next) {
            EpochState::Ongoing => {
                // Goal points at (or beyond) the ongoing epoch; the caller
                // violated request_flush_upto's contract.
                unreachable!("flush goal {goal} reaches ongoing epoch {next}")
            }
            EpochState::Completed => {
                if !self.idt.is_clear(next) {
                    self.phase = FlushPhase::WaitingDeps(next);
                    return Vec::new();
                }
                self.ledger.begin_flush(next);
                self.phase = FlushPhase::AwaitingBankAcks(next);
                self.acks = 0;
                vec![ArbiterAction::StartEpochFlush(EpochTag::new(
                    self.core, next,
                ))]
            }
            EpochState::Flushing | EpochState::Persisted => {
                unreachable!("frontier in impossible state")
            }
        }
    }

    /// True if `epoch` of this core has fully persisted.
    pub fn is_persisted(&self, epoch: EpochId) -> bool {
        self.ledger.is_persisted(epoch)
    }
}

/// True when the `premature-bank-ack` injected bug is active (always
/// `false` without the `bug-inject` feature).
fn premature_bank_ack_bug() -> bool {
    #[cfg(feature = "bug-inject")]
    {
        pbm_types::bug::is_active(pbm_types::bug::InjectedBug::PrematureBankAck)
    }
    #[cfg(not(feature = "bug-inject"))]
    {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SystemConfig {
        SystemConfig::small_test() // 4 banks
    }

    fn arbiter() -> EpochArbiter {
        EpochArbiter::new(CoreId::new(0), &cfg())
    }

    fn tag(c: u32, e: u64) -> EpochTag {
        EpochTag::new(CoreId::new(c), EpochId::new(e))
    }

    #[test]
    fn idle_until_requested() {
        let mut a = arbiter();
        assert!(a.try_advance().is_empty());
        assert_eq!(a.phase(), FlushPhase::Idle);
    }

    #[test]
    fn full_flush_handshake() {
        let mut a = arbiter();
        let e0 = a.barrier();
        a.request_flush_upto(e0);
        let actions = a.try_advance();
        assert_eq!(actions, vec![ArbiterAction::StartEpochFlush(tag(0, 0))]);
        assert_eq!(a.phase(), FlushPhase::AwaitingBankAcks(e0));

        // 3 of 4 banks ack: nothing yet.
        for _ in 0..3 {
            assert!(a.bank_ack(e0).is_empty());
        }
        let done = a.bank_ack(e0);
        assert_eq!(
            done,
            vec![
                ArbiterAction::BroadcastPersistCmp(tag(0, 0)),
                ArbiterAction::EpochPersisted(tag(0, 0)),
            ]
        );
        assert!(a.is_persisted(e0));
        assert_eq!(a.phase(), FlushPhase::Idle);
    }

    #[test]
    fn sequential_epochs_chain_automatically() {
        let mut a = arbiter();
        let e0 = a.barrier();
        let e1 = a.barrier();
        a.request_flush_upto(e1);
        let first = a.try_advance();
        assert_eq!(first, vec![ArbiterAction::StartEpochFlush(tag(0, 0))]);
        for _ in 0..3 {
            a.bank_ack(e0);
        }
        let chained = a.bank_ack(e0);
        // Persist of e0 immediately starts the flush of e1.
        assert!(chained.contains(&ArbiterAction::StartEpochFlush(tag(0, 1))));
        assert_eq!(a.phase(), FlushPhase::AwaitingBankAcks(e1));
    }

    #[test]
    fn dependence_stalls_flush_until_satisfied() {
        let mut a = arbiter();
        let e0 = a.barrier();
        a.add_dependence(e0, tag(1, 3)).unwrap();
        a.request_flush_upto(e0);
        assert!(a.try_advance().is_empty());
        assert_eq!(a.phase(), FlushPhase::WaitingDeps(e0));
        // Remote epoch persists: flush resumes.
        let actions = a.dependence_satisfied(tag(1, 3));
        assert_eq!(actions, vec![ArbiterAction::StartEpochFlush(tag(0, 0))]);
    }

    #[test]
    fn unrelated_satisfaction_does_not_start_flush() {
        let mut a = arbiter();
        let e0 = a.barrier();
        a.add_dependence(e0, tag(1, 3)).unwrap();
        a.request_flush_upto(e0);
        a.try_advance();
        let actions = a.dependence_satisfied(tag(2, 9));
        assert!(actions.is_empty());
        assert_eq!(a.phase(), FlushPhase::WaitingDeps(e0));
    }

    #[test]
    fn inform_registers_notify_dependents_on_persist() {
        let mut a = arbiter();
        let e0 = a.barrier();
        a.add_inform(e0, tag(2, 5)).unwrap();
        a.request_flush_upto(e0);
        a.try_advance();
        for _ in 0..3 {
            a.bank_ack(e0);
        }
        let done = a.bank_ack(e0);
        assert!(done.contains(&ArbiterAction::NotifyDependent {
            source: tag(0, 0),
            dependent: tag(2, 5),
        }));
    }

    #[test]
    fn goal_ratchets_upward() {
        let mut a = arbiter();
        let e0 = a.barrier();
        let e1 = a.barrier();
        a.request_flush_upto(e1);
        a.request_flush_upto(e0); // lower request must not shrink the goal
        a.try_advance();
        for _ in 0..4 {
            a.bank_ack(e0);
        }
        assert_eq!(a.phase(), FlushPhase::AwaitingBankAcks(e1));
    }

    #[test]
    fn inform_overflow_falls_back_to_broadcast_release() {
        // The source core's inform registers fill up, so one dependent
        // can never be notified point-to-point...
        let mut source = EpochArbiter::new(CoreId::new(1), &cfg()); // 4 pairs
        let e = source.barrier();
        for c in 2..6 {
            source.add_inform(e, tag(c, 0)).unwrap();
        }
        assert!(source.add_inform(e, tag(6, 0)).is_err());
        assert_eq!(source.idt().overflow_count(), 1);

        // ...but the dependent recorded the dependence on its own side,
        // and the PersistCmp *broadcast* (dependence_satisfied at every
        // arbiter) releases it without an inform entry.
        let mut dependent = EpochArbiter::new(CoreId::new(6), &cfg());
        let d0 = dependent.barrier();
        let src_tag = EpochTag::new(CoreId::new(1), e);
        dependent.add_dependence(d0, src_tag).unwrap();
        dependent.request_flush_upto(d0);
        assert!(
            dependent.try_advance().is_empty(),
            "flush stalls on the unsatisfied dependence"
        );
        let actions = dependent.dependence_satisfied(src_tag);
        assert_eq!(
            actions,
            vec![ArbiterAction::StartEpochFlush(tag(6, 0))],
            "broadcast release resumes the stalled flush"
        );
    }

    #[test]
    fn split_counts_separately() {
        let mut a = arbiter();
        let e = a.split_current();
        assert_eq!(e, EpochId::new(0));
        assert_eq!(a.split_count(), 1);
        assert_eq!(a.ledger().current(), EpochId::new(1));
    }

    #[test]
    #[should_panic(expected = "ongoing")]
    fn flushing_ongoing_epoch_panics() {
        let mut a = arbiter();
        let cur = a.ledger().current();
        a.request_flush_upto(cur);
    }

    #[test]
    #[should_panic(expected = "unexpected BankAck")]
    fn stray_bank_ack_panics() {
        let mut a = arbiter();
        let e0 = a.barrier();
        a.bank_ack(e0);
    }

    #[test]
    #[should_panic(expected = "intra-core")]
    fn intra_core_dependence_panics() {
        let mut a = arbiter();
        let e0 = a.barrier();
        let _ = a.add_dependence(e0, tag(0, 5));
    }

    #[test]
    fn overflow_surfaces_to_caller() {
        let mut a = arbiter();
        let e0 = a.barrier();
        for c in 1..=4 {
            a.add_dependence(e0, tag(c, 0)).unwrap();
        }
        assert!(a.add_dependence(e0, tag(5, 0)).is_err());
    }
}
