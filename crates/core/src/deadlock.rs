//! Epoch-deadlock avoidance (§3.3).
//!
//! A circular dependence between epochs can only arise when a request
//! creates an inter-thread dependence on an epoch that is still *ongoing*
//! (its closing barrier has not retired): a completed epoch has no pending
//! memory operations, so it can never acquire an inverse dependence. The
//! paper's rule is therefore: when a dependence lands on an ongoing source
//! epoch, split that epoch at the current point — the completed first half
//! becomes the dependence source, the remainder continues as a fresh epoch —
//! which conservatively removes any possibility of a cycle.

use crate::epoch::EpochState;

/// What to do about a just-detected inter-thread dependence, given the
/// source epoch's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitDecision {
    /// The source epoch is completed: record the dependence as-is; no
    /// deadlock is possible.
    NoSplit,
    /// The source epoch is ongoing: split it first (the completed first
    /// half keeps the current id and becomes the dependence source), then
    /// record the dependence against that first half.
    SplitSource,
}

/// Applies the §3.3 rule: split exactly when the source epoch is ongoing.
///
/// # Panics
///
/// Panics if the source epoch already persisted or is mid-flush — a
/// persisted epoch's lines carry no tag, so no conflict can name it, and a
/// flushing epoch is by definition completed; either indicates a caller bug.
///
/// # Example
///
/// ```
/// use pbm_core::{split_decision, SplitDecision, EpochState};
/// assert_eq!(split_decision(EpochState::Ongoing), SplitDecision::SplitSource);
/// assert_eq!(split_decision(EpochState::Completed), SplitDecision::NoSplit);
/// ```
pub fn split_decision(source_state: EpochState) -> SplitDecision {
    match source_state {
        EpochState::Ongoing => SplitDecision::SplitSource,
        EpochState::Completed => SplitDecision::NoSplit,
        EpochState::Flushing => SplitDecision::NoSplit,
        EpochState::Persisted => {
            panic!("dependence on a persisted epoch: its lines cannot be tagged")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hb::HbGraph;
    use pbm_types::{CoreId, EpochId, EpochTag};

    #[test]
    fn ongoing_source_splits() {
        assert_eq!(
            split_decision(EpochState::Ongoing),
            SplitDecision::SplitSource
        );
    }

    #[test]
    fn completed_source_records_directly() {
        assert_eq!(
            split_decision(EpochState::Completed),
            SplitDecision::NoSplit
        );
        assert_eq!(split_decision(EpochState::Flushing), SplitDecision::NoSplit);
    }

    #[test]
    #[should_panic(expected = "persisted")]
    fn persisted_source_is_a_bug() {
        let _ = split_decision(EpochState::Persisted);
    }

    /// Drives the full §3.3 split sequence through the arbiter: a
    /// dependence landing on an *ongoing* epoch splits it, the completed
    /// first half becomes immediately flushable (it is the dependence
    /// source), the remainder continues as a fresh epoch, and the inform
    /// entry recorded against the first half is delivered when it persists.
    #[test]
    fn split_path_through_the_arbiter() {
        use crate::arbiter::{ArbiterAction, EpochArbiter};
        use pbm_types::SystemConfig;

        let cfg = SystemConfig::small_test(); // 4 LLC banks
        let t0 = CoreId::new(0);
        let mut src = EpochArbiter::new(t0, &cfg);

        // A remote conflict names core 0's ongoing epoch: split first.
        assert_eq!(
            split_decision(EpochState::Ongoing),
            SplitDecision::SplitSource
        );
        let first_half = src.split_current();
        assert_eq!(src.split_count(), 1);
        assert!(
            src.ledger().current() > first_half,
            "the remainder continues as a fresh epoch"
        );

        // The dependence is recorded against the completed first half,
        // which is now a legal flush target (NoSplit on re-check).
        let dependent = EpochTag::new(CoreId::new(1), EpochId::new(0));
        src.add_inform(first_half, dependent).unwrap();
        assert_eq!(
            split_decision(src.ledger().state(first_half)),
            SplitDecision::NoSplit
        );
        src.request_flush_upto(first_half);
        let tag0 = EpochTag::new(t0, first_half);
        assert_eq!(
            src.try_advance(),
            vec![ArbiterAction::StartEpochFlush(tag0)]
        );

        // When the first half persists, the recorded dependent is notified
        // and no register leaked onto the remainder epoch.
        let mut last = Vec::new();
        for _ in 0..cfg.llc_banks {
            last = src.bank_ack(first_half);
        }
        assert!(last.contains(&ArbiterAction::NotifyDependent {
            source: tag0,
            dependent
        }));
        src.idt().assert_no_registers_above(first_half);
    }

    /// Reproduces Figure 5: two threads with a circular read pattern. With
    /// the split rule the dependence graph stays acyclic.
    #[test]
    fn figure5_cycle_is_broken_by_splitting() {
        let t0 = CoreId::new(0);
        let t1 = CoreId::new(1);
        let mut hb = HbGraph::new();

        // T1's Ld A hits T0's ongoing epoch Ei: §3.3 says split Ei into
        // Ei1 (completed, the source) and Ei2 (ongoing remainder).
        let ei1 = EpochTag::new(t0, EpochId::new(0));
        let ei2 = EpochTag::new(t0, EpochId::new(1));
        let ej = EpochTag::new(t1, EpochId::new(0));
        hb.add_program_order(ei1, ei2);
        hb.add_dependence(ei1, ej); // Ej depends on Ei1

        // T0's Ld X then hits T1's ongoing epoch Ej: the inverse
        // dependence now lands on T0's *remainder* epoch Ei2, not Ei1.
        hb.add_dependence(ej, ei2);

        assert!(hb.is_acyclic(), "splitting must break the Figure 5 cycle");

        // Without splitting, the same two dependences form a cycle.
        let mut naive = HbGraph::new();
        let ei = EpochTag::new(t0, EpochId::new(0));
        naive.add_dependence(ei, ej);
        naive.add_dependence(ej, ei);
        assert!(!naive.is_acyclic());
    }
}
