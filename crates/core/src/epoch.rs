//! Per-core epoch lifecycle tracking.

use pbm_types::{CoreId, EpochId, EpochTag};
use std::collections::BTreeMap;

/// Lifecycle state of one epoch.
///
/// Epochs advance strictly `Ongoing → Completed → Flushing → Persisted`;
/// persistence is in-order per core (rule E1 of epoch persistency), so the
/// ledger can represent all persisted epochs by a single frontier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EpochState {
    /// The epoch is still accepting stores (its closing barrier has not
    /// retired).
    Ongoing,
    /// Closed by a persist barrier; values are final but not yet durable.
    Completed,
    /// The arbiter is flushing it (FlushEpoch sent, BankAcks pending).
    Flushing,
    /// Fully durable (PersistCMP broadcast).
    Persisted,
}

/// The per-core epoch ledger: tracks the ongoing epoch, the persisted
/// frontier, and the states in between.
///
/// Mirrors the hardware's per-core epoch-ID counter plus the in-flight
/// epoch window: the 3-bit architectural epoch id supports
/// [`inflight`](Self::inflight) ≤ 8 distinguishable epochs; exceeding the
/// window must back-pressure the core (checked by the caller via
/// [`Self::inflight`]).
#[derive(Debug, Clone)]
pub struct EpochLedger {
    core: CoreId,
    current: EpochId,
    /// Oldest epoch that is not yet persisted. Everything below is
    /// persisted.
    frontier: EpochId,
    /// States for epochs in `frontier ..= current` (ongoing/completed/
    /// flushing). Absent keys in range default to `Completed`.
    states: BTreeMap<EpochId, EpochState>,
    persisted_count: u64,
    completed_count: u64,
}

impl EpochLedger {
    /// Creates a ledger for `core`, with epoch 0 ongoing.
    pub fn new(core: CoreId) -> Self {
        let mut states = BTreeMap::new();
        states.insert(EpochId::FIRST, EpochState::Ongoing);
        EpochLedger {
            core,
            current: EpochId::FIRST,
            frontier: EpochId::FIRST,
            states,
            persisted_count: 0,
            completed_count: 0,
        }
    }

    /// The core this ledger belongs to.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// The ongoing epoch's id.
    pub fn current(&self) -> EpochId {
        self.current
    }

    /// The ongoing epoch's tag.
    pub fn current_tag(&self) -> EpochTag {
        EpochTag::new(self.core, self.current)
    }

    /// Oldest un-persisted epoch, or `None` if everything (except the
    /// ongoing epoch) has persisted and the ongoing epoch is the frontier.
    pub fn first_unpersisted(&self) -> Option<EpochId> {
        if self.frontier <= self.current {
            Some(self.frontier)
        } else {
            None
        }
    }

    /// State of an epoch (past epochs report `Persisted`, future ones
    /// panic — asking about an epoch that doesn't exist is a logic bug).
    ///
    /// # Panics
    ///
    /// Panics if `epoch > self.current()`.
    pub fn state(&self, epoch: EpochId) -> EpochState {
        assert!(epoch <= self.current, "epoch {epoch} not yet created");
        if epoch < self.frontier {
            return EpochState::Persisted;
        }
        self.states
            .get(&epoch)
            .copied()
            .unwrap_or(EpochState::Completed)
    }

    /// True if `epoch` has fully persisted.
    pub fn is_persisted(&self, epoch: EpochId) -> bool {
        epoch < self.frontier
    }

    /// Number of distinguishable in-flight epochs (un-persisted, including
    /// the ongoing one). Hardware bound: `SystemConfig::inflight_epochs`.
    pub fn inflight(&self) -> usize {
        (self.current.as_u64() - self.frontier.as_u64() + 1) as usize
    }

    /// Closes the ongoing epoch (persist-barrier retirement) and opens the
    /// next. Returns the id of the epoch just completed.
    pub fn close_current(&mut self) -> EpochId {
        let closed = self.current;
        self.states.insert(closed, EpochState::Completed);
        self.current = closed.next();
        self.states.insert(self.current, EpochState::Ongoing);
        self.completed_count += 1;
        closed
    }

    /// Marks `epoch` as being flushed.
    ///
    /// # Panics
    ///
    /// Panics if the epoch is not the flush frontier or not `Completed` —
    /// the arbiter flushes strictly in order, one epoch at a time.
    pub fn begin_flush(&mut self, epoch: EpochId) {
        assert_eq!(
            Some(epoch),
            self.first_unpersisted(),
            "flush must start at the frontier"
        );
        assert_eq!(
            self.state(epoch),
            EpochState::Completed,
            "only completed epochs can flush"
        );
        self.states.insert(epoch, EpochState::Flushing);
    }

    /// Marks `epoch` fully persisted and advances the frontier.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` is not the frontier or was never `Flushing`.
    pub fn mark_persisted(&mut self, epoch: EpochId) {
        assert_eq!(Some(epoch), self.first_unpersisted());
        assert_eq!(self.state(epoch), EpochState::Flushing);
        self.states.remove(&epoch);
        self.frontier = epoch.next();
        self.persisted_count += 1;
    }

    /// Epochs persisted so far.
    pub fn persisted_count(&self) -> u64 {
        self.persisted_count
    }

    /// Epochs completed (closed) so far.
    pub fn completed_count(&self) -> u64 {
        self.completed_count
    }

    /// Ids of completed-but-unpersisted epochs, oldest first.
    pub fn unpersisted_completed(&self) -> Vec<EpochId> {
        (self.frontier.as_u64()..self.current.as_u64())
            .map(EpochId::new)
            .filter(|e| matches!(self.state(*e), EpochState::Completed | EpochState::Flushing))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger() -> EpochLedger {
        EpochLedger::new(CoreId::new(0))
    }

    #[test]
    fn initial_state() {
        let l = ledger();
        assert_eq!(l.current(), EpochId::FIRST);
        assert_eq!(l.state(EpochId::FIRST), EpochState::Ongoing);
        assert_eq!(l.inflight(), 1);
        assert_eq!(l.first_unpersisted(), Some(EpochId::FIRST));
        assert!(!l.is_persisted(EpochId::FIRST));
    }

    #[test]
    fn barrier_closes_and_opens() {
        let mut l = ledger();
        let closed = l.close_current();
        assert_eq!(closed, EpochId::new(0));
        assert_eq!(l.current(), EpochId::new(1));
        assert_eq!(l.state(EpochId::new(0)), EpochState::Completed);
        assert_eq!(l.state(EpochId::new(1)), EpochState::Ongoing);
        assert_eq!(l.inflight(), 2);
        assert_eq!(l.completed_count(), 1);
    }

    #[test]
    fn full_lifecycle() {
        let mut l = ledger();
        let e = l.close_current();
        l.begin_flush(e);
        assert_eq!(l.state(e), EpochState::Flushing);
        l.mark_persisted(e);
        assert_eq!(l.state(e), EpochState::Persisted);
        assert!(l.is_persisted(e));
        assert_eq!(l.inflight(), 1);
        assert_eq!(l.persisted_count(), 1);
        assert_eq!(l.first_unpersisted(), Some(EpochId::new(1)));
    }

    #[test]
    fn inflight_grows_until_persisted() {
        let mut l = ledger();
        for _ in 0..7 {
            l.close_current();
        }
        assert_eq!(l.inflight(), 8);
        let e0 = EpochId::new(0);
        l.begin_flush(e0);
        l.mark_persisted(e0);
        assert_eq!(l.inflight(), 7);
    }

    #[test]
    fn unpersisted_completed_excludes_ongoing() {
        let mut l = ledger();
        l.close_current();
        l.close_current();
        assert_eq!(
            l.unpersisted_completed(),
            vec![EpochId::new(0), EpochId::new(1)]
        );
    }

    #[test]
    #[should_panic(expected = "frontier")]
    fn out_of_order_flush_panics() {
        let mut l = ledger();
        l.close_current();
        l.close_current();
        l.begin_flush(EpochId::new(1)); // frontier is 0
    }

    #[test]
    #[should_panic(expected = "only completed")]
    fn flushing_ongoing_epoch_panics() {
        let mut l = ledger();
        l.begin_flush(EpochId::new(0)); // epoch 0 is still ongoing
    }

    #[test]
    #[should_panic(expected = "not yet created")]
    fn querying_future_epoch_panics() {
        let l = ledger();
        let _ = l.state(EpochId::new(5));
    }

    #[test]
    fn current_tag_carries_core() {
        let l = EpochLedger::new(CoreId::new(7));
        assert_eq!(
            l.current_tag(),
            EpochTag::new(CoreId::new(7), EpochId::new(0))
        );
    }
}
