//! Inter-thread Dependence Tracking register file (§3.1, §4.3).
//!
//! Each in-flight epoch owns a bounded number of *dependence* registers
//! (source epochs that must persist first) and *inform* registers
//! (dependent epochs on other cores to notify once this epoch persists).
//! The paper provisions 4 pairs per epoch (64 bytes per L1). When a
//! register file is full the hardware cannot record the dependence and
//! falls back to LB behaviour — an online flush — which the caller learns
//! via [`IdtOverflow`].

use pbm_types::{EpochId, EpochTag};
use std::collections::BTreeMap;

/// The dependence could not be recorded: all register pairs for the epoch
/// are in use. The caller must fall back to an online flush of the source
/// epoch (LB behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdtOverflow {
    /// The epoch whose register file is full.
    pub epoch: EpochId,
}

impl std::fmt::Display for IdtOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "idt registers full for epoch {}", self.epoch)
    }
}

impl std::error::Error for IdtOverflow {}

/// One core's IDT register file: per local epoch, up to `pairs` dependence
/// entries and up to `pairs` inform entries.
#[derive(Debug, Clone)]
pub struct IdtRegisters {
    pairs: usize,
    /// dependence[e] = source epochs (other cores) that must persist before
    /// local epoch `e` may flush.
    dependence: BTreeMap<EpochId, Vec<EpochTag>>,
    /// inform[e] = dependent epochs (other cores) to notify when local
    /// epoch `e` persists.
    inform: BTreeMap<EpochId, Vec<EpochTag>>,
    recorded: u64,
    overflows: u64,
}

impl IdtRegisters {
    /// Creates a register file with `pairs` dependence and inform entries
    /// per epoch (the paper uses 4).
    ///
    /// # Panics
    ///
    /// Panics if `pairs` is zero.
    pub fn new(pairs: usize) -> Self {
        assert!(pairs > 0, "pairs must be nonzero");
        IdtRegisters {
            pairs,
            dependence: BTreeMap::new(),
            inform: BTreeMap::new(),
            recorded: 0,
            overflows: 0,
        }
    }

    /// Records that local epoch `dependent` must wait for `source`
    /// (an epoch on another core).
    ///
    /// # Errors
    ///
    /// Returns [`IdtOverflow`] if the epoch's dependence registers are full;
    /// the dependence is *not* recorded.
    pub fn add_dependence(
        &mut self,
        dependent: EpochId,
        source: EpochTag,
    ) -> Result<(), IdtOverflow> {
        let regs = self.dependence.entry(dependent).or_default();
        if regs.contains(&source) {
            return Ok(()); // already tracked; hardware would match and drop
        }
        if regs.len() >= self.pairs {
            self.overflows += 1;
            return Err(IdtOverflow { epoch: dependent });
        }
        regs.push(source);
        self.recorded += 1;
        Ok(())
    }

    /// Records that remote epoch `dependent` must be informed when local
    /// epoch `source` persists.
    ///
    /// # Errors
    ///
    /// Returns [`IdtOverflow`] if the epoch's inform registers are full.
    pub fn add_inform(&mut self, source: EpochId, dependent: EpochTag) -> Result<(), IdtOverflow> {
        let regs = self.inform.entry(source).or_default();
        if regs.contains(&dependent) {
            return Ok(());
        }
        if regs.len() >= self.pairs {
            self.overflows += 1;
            return Err(IdtOverflow { epoch: source });
        }
        regs.push(dependent);
        self.recorded += 1;
        Ok(())
    }

    /// Unsatisfied source epochs local epoch `e` still waits on.
    pub fn sources_of(&self, e: EpochId) -> &[EpochTag] {
        self.dependence.get(&e).map(Vec::as_slice).unwrap_or(&[])
    }

    /// True if local epoch `e` has no unsatisfied dependences.
    pub fn is_clear(&self, e: EpochId) -> bool {
        self.sources_of(e).is_empty()
    }

    /// A remote source epoch persisted: drop it from every dependence
    /// register. Returns how many registers were released.
    pub fn satisfy(&mut self, source: EpochTag) -> usize {
        let mut released = 0;
        self.dependence.retain(|_, regs| {
            let before = regs.len();
            regs.retain(|s| *s != source);
            released += before - regs.len();
            !regs.is_empty()
        });
        released
    }

    /// Local epoch `e` persisted: drain and return the dependents to
    /// notify, releasing its inform registers.
    pub fn drain_inform(&mut self, e: EpochId) -> Vec<EpochTag> {
        self.inform.remove(&e).unwrap_or_default()
    }

    /// When an ongoing epoch is split (§3.3), its recorded registers stay
    /// with the completed first half (`from`); nothing moves. However any
    /// *future* conflicts belong to the new id. This helper exists so the
    /// arbiter can assert the invariant.
    pub fn assert_no_registers_above(&self, e: EpochId) {
        debug_assert!(
            self.dependence.keys().all(|k| *k <= e) && self.inform.keys().all(|k| *k <= e),
            "registers recorded for epochs beyond {e}"
        );
    }

    /// Dependences successfully recorded (both kinds).
    pub fn recorded_count(&self) -> u64 {
        self.recorded
    }

    /// Overflow events (fallbacks to online flush).
    pub fn overflow_count(&self) -> u64 {
        self.overflows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbm_types::CoreId;

    fn tag(c: u32, e: u64) -> EpochTag {
        EpochTag::new(CoreId::new(c), EpochId::new(e))
    }

    #[test]
    fn record_and_satisfy() {
        let mut idt = IdtRegisters::new(4);
        idt.add_dependence(EpochId::new(1), tag(2, 5)).unwrap();
        idt.add_dependence(EpochId::new(1), tag(3, 0)).unwrap();
        assert_eq!(idt.sources_of(EpochId::new(1)).len(), 2);
        assert!(!idt.is_clear(EpochId::new(1)));
        assert_eq!(idt.satisfy(tag(2, 5)), 1);
        assert_eq!(idt.sources_of(EpochId::new(1)), &[tag(3, 0)]);
        assert_eq!(idt.satisfy(tag(3, 0)), 1);
        assert!(idt.is_clear(EpochId::new(1)));
        assert_eq!(idt.recorded_count(), 2);
    }

    #[test]
    fn duplicate_dependence_is_free() {
        let mut idt = IdtRegisters::new(1);
        idt.add_dependence(EpochId::new(0), tag(1, 1)).unwrap();
        idt.add_dependence(EpochId::new(0), tag(1, 1)).unwrap();
        assert_eq!(idt.sources_of(EpochId::new(0)).len(), 1);
        assert_eq!(idt.overflow_count(), 0);
    }

    #[test]
    fn overflow_after_pairs_exhausted() {
        let mut idt = IdtRegisters::new(2);
        idt.add_dependence(EpochId::new(0), tag(1, 0)).unwrap();
        idt.add_dependence(EpochId::new(0), tag(2, 0)).unwrap();
        let err = idt.add_dependence(EpochId::new(0), tag(3, 0)).unwrap_err();
        assert_eq!(err.epoch, EpochId::new(0));
        assert_eq!(idt.overflow_count(), 1);
        // Other epochs are unaffected.
        idt.add_dependence(EpochId::new(1), tag(3, 0)).unwrap();
    }

    #[test]
    fn inform_drain() {
        let mut idt = IdtRegisters::new(4);
        idt.add_inform(EpochId::new(2), tag(1, 7)).unwrap();
        idt.add_inform(EpochId::new(2), tag(3, 1)).unwrap();
        let notify = idt.drain_inform(EpochId::new(2));
        assert_eq!(notify, vec![tag(1, 7), tag(3, 1)]);
        assert!(idt.drain_inform(EpochId::new(2)).is_empty());
    }

    #[test]
    fn inform_overflow() {
        let mut idt = IdtRegisters::new(1);
        idt.add_inform(EpochId::new(0), tag(1, 0)).unwrap();
        assert!(idt.add_inform(EpochId::new(0), tag(2, 0)).is_err());
    }

    #[test]
    fn inform_overflow_counts_and_drain_frees_registers() {
        let mut idt = IdtRegisters::new(1);
        idt.add_inform(EpochId::new(0), tag(1, 0)).unwrap();
        // A duplicate matches in hardware: free, not an overflow.
        idt.add_inform(EpochId::new(0), tag(1, 0)).unwrap();
        assert_eq!(idt.recorded_count(), 1);
        assert_eq!(idt.overflow_count(), 0);
        // A distinct dependent overflows and is counted.
        let err = idt.add_inform(EpochId::new(0), tag(2, 0)).unwrap_err();
        assert_eq!(err.epoch, EpochId::new(0));
        assert_eq!(idt.overflow_count(), 1);
        // Other epochs have independent inform registers.
        idt.add_inform(EpochId::new(1), tag(2, 0)).unwrap();
        // Draining on persist frees the registers for reuse.
        assert_eq!(idt.drain_inform(EpochId::new(0)), vec![tag(1, 0)]);
        idt.add_inform(EpochId::new(0), tag(3, 0)).unwrap();
        assert_eq!(idt.overflow_count(), 1, "freed registers do not overflow");
    }

    #[test]
    fn satisfy_releases_across_epochs() {
        let mut idt = IdtRegisters::new(4);
        idt.add_dependence(EpochId::new(0), tag(9, 9)).unwrap();
        idt.add_dependence(EpochId::new(1), tag(9, 9)).unwrap();
        assert_eq!(idt.satisfy(tag(9, 9)), 2);
        assert!(idt.is_clear(EpochId::new(0)));
        assert!(idt.is_clear(EpochId::new(1)));
    }

    #[test]
    fn overflow_error_displays() {
        let e = IdtOverflow {
            epoch: EpochId::new(3),
        };
        assert_eq!(e.to_string(), "idt registers full for epoch E3");
    }
}
