//! The epoch happens-before order (§4.1).
//!
//! "The union of the intra-thread program order and inter-thread shared
//! memory dependencies define this epoch happens-before order. The goal of
//! the epoch flush protocol is to ensure that the order in which epochs are
//! persisted is consistent with this happens-before order."
//!
//! [`HbGraph`] records exactly that union and answers the two questions the
//! rest of the system asks of it: is the order still acyclic (deadlock
//! freedom), and is a given set of persisted epochs *prefix-closed* under
//! it (crash consistency)?

use pbm_types::EpochTag;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A DAG (if the protocol is correct) over epoch tags.
#[derive(Debug, Clone, Default)]
pub struct HbGraph {
    /// edges[a] = epochs that must persist after `a` (a happens-before b).
    succ: BTreeMap<EpochTag, BTreeSet<EpochTag>>,
    /// Reverse edges, for prefix checks.
    pred: BTreeMap<EpochTag, BTreeSet<EpochTag>>,
}

impl HbGraph {
    /// Creates an empty order.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `before` →(program order)→ `after` on one core.
    ///
    /// # Panics
    ///
    /// Panics if the tags belong to different cores or are not in
    /// increasing epoch order.
    pub fn add_program_order(&mut self, before: EpochTag, after: EpochTag) {
        assert!(
            before.precedes_same_core(after),
            "{before} does not precede {after} in program order"
        );
        self.add_edge(before, after);
    }

    /// Records an inter-thread dependence: `source` must persist before
    /// `dependent`.
    ///
    /// # Panics
    ///
    /// Panics if both tags are on the same core (that is program order).
    pub fn add_dependence(&mut self, source: EpochTag, dependent: EpochTag) {
        assert_ne!(
            source.core, dependent.core,
            "same-core edges must use add_program_order"
        );
        self.add_edge(source, dependent);
    }

    fn add_edge(&mut self, from: EpochTag, to: EpochTag) {
        self.succ.entry(from).or_default().insert(to);
        self.pred.entry(to).or_default().insert(from);
        self.succ.entry(to).or_default();
        self.pred.entry(from).or_default();
    }

    /// All epochs mentioned by any edge.
    pub fn nodes(&self) -> impl Iterator<Item = EpochTag> + '_ {
        self.succ.keys().copied()
    }

    /// Direct predecessors of `e` (epochs that must persist before it).
    pub fn predecessors(&self, e: EpochTag) -> Vec<EpochTag> {
        self.pred
            .get(&e)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Direct successors of `e` (epochs that must persist after it).
    pub fn successors(&self, e: EpochTag) -> Vec<EpochTag> {
        self.succ
            .get(&e)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.succ.values().map(BTreeSet::len).sum()
    }

    /// True if the recorded order has no cycles (Kahn's algorithm).
    pub fn is_acyclic(&self) -> bool {
        let mut indegree: BTreeMap<EpochTag, usize> = self
            .succ
            .keys()
            .map(|k| (*k, self.pred.get(k).map_or(0, BTreeSet::len)))
            .collect();
        let mut queue: VecDeque<EpochTag> = indegree
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(k, _)| *k)
            .collect();
        let mut visited = 0;
        while let Some(n) = queue.pop_front() {
            visited += 1;
            if let Some(next) = self.succ.get(&n) {
                for m in next {
                    let d = indegree.get_mut(m).expect("node known");
                    *d -= 1;
                    if *d == 0 {
                        queue.push_back(*m);
                    }
                }
            }
        }
        visited == self.succ.len()
    }

    /// Returns a witness cycle if the recorded order has one: a sequence of
    /// distinct epochs `v0, v1, …, vk` where each `vi → vi+1` is a recorded
    /// edge and `vk → v0` closes the cycle. Returns `None` iff
    /// [`Self::is_acyclic`] is true.
    ///
    /// The static analyzer reports this path as the human-readable evidence
    /// for a predicted epoch deadlock, and the fuzzing harness attaches it
    /// to `CyclicDependences` failures; a bare boolean would force the
    /// reader to rediscover the cycle by hand.
    pub fn find_cycle(&self) -> Option<Vec<EpochTag>> {
        // Iterative DFS with tri-color marking; the gray stack holds the
        // current path so a back edge yields its cycle directly.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let adj: BTreeMap<EpochTag, Vec<EpochTag>> = self
            .succ
            .iter()
            .map(|(k, v)| (*k, v.iter().copied().collect()))
            .collect();
        let mut color: BTreeMap<EpochTag, Color> = adj.keys().map(|k| (*k, Color::White)).collect();
        for &root in adj.keys() {
            if color[&root] != Color::White {
                continue;
            }
            // (node, position into its successor list)
            let mut path: Vec<EpochTag> = vec![root];
            let mut cursor: Vec<usize> = vec![0];
            color.insert(root, Color::Gray);
            while let (Some(&node), Some(&pos)) = (path.last(), cursor.last()) {
                let next = adj[&node].get(pos).copied();
                match next {
                    Some(succ) => {
                        *cursor.last_mut().expect("non-empty") += 1;
                        match color[&succ] {
                            Color::Gray => {
                                // Back edge: the cycle is the path suffix
                                // starting at `succ`.
                                let start = path
                                    .iter()
                                    .position(|&t| t == succ)
                                    .expect("gray node is on the path");
                                return Some(path[start..].to_vec());
                            }
                            Color::White => {
                                color.insert(succ, Color::Gray);
                                path.push(succ);
                                cursor.push(0);
                            }
                            Color::Black => {}
                        }
                    }
                    None => {
                        color.insert(node, Color::Black);
                        path.pop();
                        cursor.pop();
                    }
                }
            }
        }
        None
    }

    /// Checks that `persisted` is prefix-closed: every predecessor of a
    /// persisted epoch is itself persisted. Returns the first violating
    /// `(missing_predecessor, persisted_epoch)` pair, or `None` if closed.
    pub fn prefix_violation<F>(&self, persisted: F) -> Option<(EpochTag, EpochTag)>
    where
        F: Fn(EpochTag) -> bool,
    {
        for (node, preds) in &self.pred {
            if persisted(*node) {
                for p in preds {
                    if !persisted(*p) {
                        return Some((*p, *node));
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbm_types::{CoreId, EpochId};
    use proptest::prelude::*;

    fn tag(c: u32, e: u64) -> EpochTag {
        EpochTag::new(CoreId::new(c), EpochId::new(e))
    }

    #[test]
    fn chain_is_acyclic() {
        let mut hb = HbGraph::new();
        hb.add_program_order(tag(0, 0), tag(0, 1));
        hb.add_program_order(tag(0, 1), tag(0, 2));
        hb.add_dependence(tag(0, 2), tag(1, 0));
        assert!(hb.is_acyclic());
        assert_eq!(hb.edge_count(), 3);
        assert_eq!(hb.predecessors(tag(1, 0)), vec![tag(0, 2)]);
    }

    #[test]
    fn cycle_detected() {
        let mut hb = HbGraph::new();
        hb.add_dependence(tag(0, 0), tag(1, 0));
        hb.add_dependence(tag(1, 0), tag(0, 0));
        assert!(!hb.is_acyclic());
    }

    #[test]
    fn self_loop_via_longer_cycle() {
        let mut hb = HbGraph::new();
        hb.add_dependence(tag(0, 0), tag(1, 0));
        hb.add_dependence(tag(1, 0), tag(2, 0));
        hb.add_dependence(tag(2, 0), tag(0, 0));
        assert!(!hb.is_acyclic());
    }

    #[test]
    fn empty_graph_is_trivially_closed_and_acyclic() {
        let hb = HbGraph::new();
        assert!(hb.is_acyclic());
        assert_eq!(hb.find_cycle(), None);
        assert_eq!(hb.edge_count(), 0);
        // Prefix closure over no nodes holds for every predicate.
        assert_eq!(hb.prefix_violation(|_| true), None);
        assert_eq!(hb.prefix_violation(|_| false), None);
        assert_eq!(hb.nodes().count(), 0);
    }

    #[test]
    fn duplicate_edges_insert_once() {
        let mut hb = HbGraph::new();
        hb.add_program_order(tag(0, 0), tag(0, 1));
        hb.add_program_order(tag(0, 0), tag(0, 1));
        hb.add_dependence(tag(1, 0), tag(0, 1));
        hb.add_dependence(tag(1, 0), tag(0, 1));
        assert_eq!(hb.edge_count(), 2, "sets deduplicate edges");
        assert_eq!(hb.predecessors(tag(0, 1)), vec![tag(0, 0), tag(1, 0)]);
        assert!(hb.is_acyclic());
    }

    #[test]
    fn cycle_witness_path_walks_recorded_edges() {
        let mut hb = HbGraph::new();
        // An acyclic prefix plus a 3-cycle reachable from it.
        hb.add_program_order(tag(0, 0), tag(0, 1));
        hb.add_dependence(tag(0, 1), tag(1, 0));
        hb.add_dependence(tag(1, 0), tag(2, 0));
        hb.add_dependence(tag(2, 0), tag(0, 1));
        assert!(!hb.is_acyclic());
        let cycle = hb.find_cycle().expect("cycle reported with a witness");
        assert!(cycle.len() >= 2, "a witness names at least two epochs");
        // Every consecutive hop (and the closing hop) is a recorded edge.
        for (i, &from) in cycle.iter().enumerate() {
            let to = cycle[(i + 1) % cycle.len()];
            assert!(
                hb.succ.get(&from).is_some_and(|s| s.contains(&to)),
                "witness hop {from} -> {to} is not a recorded edge"
            );
        }
        // The witness visits distinct epochs.
        let set: BTreeSet<EpochTag> = cycle.iter().copied().collect();
        assert_eq!(set.len(), cycle.len(), "witness nodes are distinct");
        // Acyclic graphs report no witness.
        let mut dag = HbGraph::new();
        dag.add_program_order(tag(0, 0), tag(0, 1));
        dag.add_dependence(tag(0, 1), tag(1, 0));
        assert_eq!(dag.find_cycle(), None);
    }

    #[test]
    fn two_cycle_witness() {
        let mut hb = HbGraph::new();
        hb.add_dependence(tag(0, 0), tag(1, 0));
        hb.add_dependence(tag(1, 0), tag(0, 0));
        let cycle = hb.find_cycle().expect("2-cycle found");
        assert_eq!(cycle.len(), 2);
    }

    #[test]
    #[should_panic(expected = "program order")]
    fn wrong_order_program_edge_panics() {
        let mut hb = HbGraph::new();
        hb.add_program_order(tag(0, 2), tag(0, 1));
    }

    #[test]
    #[should_panic(expected = "same-core")]
    fn same_core_dependence_panics() {
        let mut hb = HbGraph::new();
        hb.add_dependence(tag(0, 0), tag(0, 1));
    }

    #[test]
    fn prefix_closure_detects_missing_predecessor() {
        let mut hb = HbGraph::new();
        hb.add_program_order(tag(0, 0), tag(0, 1));
        hb.add_dependence(tag(1, 0), tag(0, 1));
        // 0:E1 persisted but its inter-thread source 1:E0 is not.
        let persisted = |t: EpochTag| t == tag(0, 1) || t == tag(0, 0);
        assert_eq!(hb.prefix_violation(persisted), Some((tag(1, 0), tag(0, 1))));
        // Once the source persists too the set is closed.
        let all = |_t: EpochTag| true;
        assert_eq!(hb.prefix_violation(all), None);
        let none = |_t: EpochTag| false;
        assert_eq!(hb.prefix_violation(none), None);
    }

    proptest! {
        /// Random forward-only edges (by (core,epoch) lexicographic order)
        /// can never form a cycle.
        #[test]
        fn prop_forward_edges_acyclic(edges in proptest::collection::vec(
            (0u32..4, 0u64..4, 0u32..4, 0u64..4), 1..30)
        ) {
            let mut hb = HbGraph::new();
            for (c1, e1, c2, e2) in edges {
                let a = tag(c1, e1);
                let b = tag(c2, e2);
                if (c1, e1) < (c2, e2) {
                    if c1 == c2 {
                        hb.add_program_order(a, b);
                    } else {
                        hb.add_dependence(a, b);
                    }
                }
            }
            prop_assert!(hb.is_acyclic());
            prop_assert_eq!(hb.find_cycle(), None);
        }

        /// `find_cycle` agrees with `is_acyclic` on arbitrary dependence
        /// graphs (cross-core edges in both directions are legal inputs).
        #[test]
        fn prop_find_cycle_agrees_with_is_acyclic(edges in proptest::collection::vec(
            (0u32..3, 0u64..3, 0u32..3, 0u64..3), 1..25)
        ) {
            let mut hb = HbGraph::new();
            for (c1, e1, c2, e2) in edges {
                if c1 != c2 {
                    hb.add_dependence(tag(c1, e1), tag(c2, e2));
                }
            }
            prop_assert_eq!(hb.is_acyclic(), hb.find_cycle().is_none());
        }

        /// A downward-closed cut of a random forward-edge DAG never has a
        /// prefix violation.
        #[test]
        fn prop_downward_cut_is_prefix_closed(
            edges in proptest::collection::vec(
                (0u32..3, 0u64..3, 0u32..3, 0u64..3), 1..20),
            cut_core in 0u32..3, cut_epoch in 0u64..3,
        ) {
            let mut hb = HbGraph::new();
            for (c1, e1, c2, e2) in edges {
                // Edge from smaller (core+epoch) sum to larger keeps the
                // "persisted iff sum < cut" set downward closed.
                let (sa, sb) = (c1 as u64 + e1, c2 as u64 + e2);
                if sa < sb {
                    let a = tag(c1, e1);
                    let b = tag(c2, e2);
                    if c1 == c2 { hb.add_program_order(a, b); }
                    else { hb.add_dependence(a, b); }
                }
            }
            let cut = cut_core as u64 + cut_epoch;
            let persisted = |t: EpochTag| (t.core.as_u32() as u64 + t.epoch.as_u64()) < cut;
            prop_assert_eq!(hb.prefix_violation(persisted), None);
        }
    }
}
