//! The epoch flush protocol messages (Figures 6 and 8).

use pbm_types::{BankId, EpochTag, LineAddr, McId};

/// Messages of the multi-banked epoch flush handshake.
///
/// The timing layer (`pbm-sim`) wraps these in network events; keeping the
/// vocabulary here documents the protocol in one place and lets protocol
/// tests speak the paper's language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushMessage {
    /// L1 → LLC bank: the named epoch's L1 lines have been written back;
    /// flush everything you hold for it (step ① of Figure 8).
    FlushEpoch(EpochTag),
    /// L1 → LLC bank: epoch completion notice — the bank has now seen every
    /// line of the epoch (Figure 6; subsumed by `FlushEpoch` in the
    /// arbiter-driven protocol but kept for the monolithic-LLC variant).
    EpochCmp(EpochTag),
    /// LLC bank → MC: durably write this line (step ②).
    FlushLine {
        /// Epoch on whose behalf the line is flushed.
        tag: EpochTag,
        /// The line.
        line: LineAddr,
        /// Destination controller.
        mc: McId,
    },
    /// MC → LLC bank: the line is durable (step ②'s response).
    PersistAck {
        /// Epoch the write belonged to.
        tag: EpochTag,
        /// The now-durable line.
        line: LineAddr,
    },
    /// LLC bank → arbiter: this bank has persisted all its lines of the
    /// epoch (step ③).
    BankAck {
        /// The acknowledging bank.
        bank: BankId,
        /// The epoch.
        tag: EpochTag,
    },
    /// Arbiter → all LLC banks: the epoch has fully persisted; banks may
    /// flush this core's next epoch (step ④).
    PersistCmp(EpochTag),
}

impl FlushMessage {
    /// The epoch the message concerns.
    pub fn tag(&self) -> EpochTag {
        match self {
            FlushMessage::FlushEpoch(t)
            | FlushMessage::EpochCmp(t)
            | FlushMessage::PersistCmp(t) => *t,
            FlushMessage::FlushLine { tag, .. }
            | FlushMessage::PersistAck { tag, .. }
            | FlushMessage::BankAck { tag, .. } => *tag,
        }
    }

    /// True for messages that carry a cache line (data class on the NoC).
    pub fn carries_data(&self) -> bool {
        matches!(self, FlushMessage::FlushLine { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbm_types::{CoreId, EpochId};

    fn tag() -> EpochTag {
        EpochTag::new(CoreId::new(1), EpochId::new(2))
    }

    #[test]
    fn tag_extraction() {
        let msgs = [
            FlushMessage::FlushEpoch(tag()),
            FlushMessage::EpochCmp(tag()),
            FlushMessage::PersistCmp(tag()),
            FlushMessage::FlushLine {
                tag: tag(),
                line: LineAddr::new(1),
                mc: McId::new(0),
            },
            FlushMessage::PersistAck {
                tag: tag(),
                line: LineAddr::new(1),
            },
            FlushMessage::BankAck {
                bank: BankId::new(3),
                tag: tag(),
            },
        ];
        for m in msgs {
            assert_eq!(m.tag(), tag());
        }
    }

    #[test]
    fn only_flush_line_carries_data() {
        assert!(FlushMessage::FlushLine {
            tag: tag(),
            line: LineAddr::new(0),
            mc: McId::new(0)
        }
        .carries_data());
        assert!(!FlushMessage::FlushEpoch(tag()).carries_data());
        assert!(!FlushMessage::BankAck {
            bank: BankId::new(0),
            tag: tag()
        }
        .carries_data());
    }
}
