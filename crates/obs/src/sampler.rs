//! Periodic time-series sampling.

use pbm_types::{Cycle, MetricSample};

/// Collects [`MetricSample`] rows on a fixed cycle cadence.
///
/// The simulator polls [`Sampler::due`] as simulated time advances and,
/// when due, builds a sample from its own state and pushes it. The next
/// deadline then snaps to the following multiple of the interval, so
/// sample timestamps depend only on simulated time — never on host timing
/// — keeping the CSV deterministic.
#[derive(Debug, Clone)]
pub struct Sampler {
    interval: u64,
    next_at: u64,
    samples: Vec<MetricSample>,
}

impl Sampler {
    /// A sampler firing every `interval` cycles (first at `interval`).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn every(interval: Cycle) -> Self {
        let interval = interval.as_u64();
        assert!(interval > 0, "sampler interval must be positive");
        Sampler {
            interval,
            next_at: interval,
            samples: Vec::new(),
        }
    }

    /// True if a sample should be taken at simulated time `now`.
    #[inline(always)]
    pub fn due(&self, now: Cycle) -> bool {
        now.as_u64() >= self.next_at
    }

    /// Stores `sample` and advances the deadline past `sample.cycle`.
    pub fn push(&mut self, sample: MetricSample) {
        let now = sample.cycle.as_u64();
        self.samples.push(sample);
        // Snap to the next interval boundary strictly after `now`; skipped
        // boundaries (when the event loop jumped time) collapse into one.
        self.next_at = (now / self.interval + 1) * self.interval;
    }

    /// Number of samples collected so far.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples have been collected.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Removes and returns the collected samples in time order.
    pub fn take(&mut self) -> Vec<MetricSample> {
        std::mem::take(&mut self.samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(cycle: u64) -> MetricSample {
        MetricSample {
            cycle: Cycle::new(cycle),
            ..MetricSample::default()
        }
    }

    #[test]
    fn fires_on_boundaries() {
        let mut s = Sampler::every(Cycle::new(10));
        assert!(!s.due(Cycle::new(9)));
        assert!(s.due(Cycle::new(10)));
        s.push(at(10));
        assert!(!s.due(Cycle::new(19)));
        assert!(s.due(Cycle::new(20)));
    }

    #[test]
    fn time_jumps_collapse_missed_boundaries() {
        let mut s = Sampler::every(Cycle::new(10));
        assert!(s.due(Cycle::new(55)));
        s.push(at(55));
        assert!(!s.due(Cycle::new(59)));
        assert!(s.due(Cycle::new(60)), "next boundary after 55 is 60");
        assert_eq!(s.len(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let _ = Sampler::every(Cycle::ZERO);
    }

    #[test]
    fn take_empties() {
        let mut s = Sampler::every(Cycle::new(5));
        s.push(at(5));
        s.push(at(10));
        assert_eq!(s.take().len(), 2);
        assert!(s.is_empty());
    }
}
