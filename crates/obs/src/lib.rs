//! Observability for the persist-barrier simulator.
//!
//! This crate turns the simulator's internal milestones — epoch lifecycle
//! transitions, the four-step flush handshake, IDT activity, stalls, NoC
//! traffic — into durable artifacts:
//!
//! * a **cycle-stamped structured event trace** ([`TraceEvent`] stream),
//!   exportable as Chrome trace-event JSON loadable in Perfetto
//!   ([`chrome::export_chrome_trace`]) or as a line-oriented JSON event
//!   log ([`codec`]);
//! * a **periodic time-series** of [`MetricSample`] rows, exportable as
//!   CSV ([`metrics_csv`]).
//!
//! The simulator talks to this crate through [`Observer`], which holds a
//! boxed [`TraceSink`]. The default sink is [`NullSink`] and the observer
//! keeps an `enabled` fast-path flag, so an un-instrumented run pays one
//! predictable branch per instrumentation point and never constructs an
//! event (verified by the `obs_overhead` Criterion bench in `pbm-bench`).
//!
//! Everything here is deterministic: traces carry simulated cycles, never
//! wall-clock time, so two runs of the same seed produce byte-identical
//! exports.

#![warn(missing_docs, missing_debug_implementations)]

pub mod chrome;
pub mod codec;
pub mod json;
mod sampler;
mod sink;

pub use pbm_types::{
    EpochPhase, FlushReason, MetricSample, NocClass, StallKind, TraceEvent, TraceEventKind,
};
pub use sampler::Sampler;
pub use sink::{NullSink, RingSink, TraceBuffer, TraceSink};

use pbm_types::Cycle;

/// The simulator's handle to the observability layer.
///
/// Construct with [`Observer::disabled`] (the default for ordinary runs)
/// or [`Observer::buffering`] to capture events in memory; attach a
/// [`Sampler`] with [`Observer::with_sampler`].
#[derive(Debug)]
pub struct Observer {
    enabled: bool,
    sink: Box<dyn TraceSink>,
    sampler: Option<Sampler>,
}

impl Observer {
    /// An observer that drops everything (the zero-cost default).
    pub fn disabled() -> Self {
        Observer {
            enabled: false,
            sink: Box::new(NullSink),
            sampler: None,
        }
    }

    /// An observer that records every event into an in-memory buffer,
    /// retrievable with [`Observer::take_events`].
    pub fn buffering() -> Self {
        Observer {
            enabled: true,
            sink: Box::new(TraceBuffer::new()),
            sampler: None,
        }
    }

    /// An observer that retains only the most recent `capacity` events in
    /// a bounded ring ([`RingSink`]): constant memory for arbitrarily long
    /// runs, at the cost of losing the oldest events (the sink's drop
    /// counter records how many).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn ring(capacity: usize) -> Self {
        Observer::with_sink(Box::new(RingSink::new(capacity)))
    }

    /// An observer feeding a custom sink.
    pub fn with_sink(sink: Box<dyn TraceSink>) -> Self {
        Observer {
            enabled: sink.is_enabled(),
            sink,
            sampler: None,
        }
    }

    /// Attaches a periodic metrics sampler.
    pub fn with_sampler(mut self, sampler: Sampler) -> Self {
        self.sampler = Some(sampler);
        self
    }

    /// Consumes the observer, returning its sampler (so a caller swapping
    /// sinks can carry the sampler — and any collected rows — across).
    pub fn into_sampler(self) -> Option<Sampler> {
        self.sampler
    }

    /// True if events will be recorded.
    ///
    /// Call sites should guard event *construction* behind this flag so a
    /// disabled observer never allocates or formats:
    ///
    /// ```
    /// # use pbm_obs::{Observer, TraceEvent, TraceEventKind};
    /// # use pbm_types::{Cycle, CoreId, EpochId};
    /// # let mut obs = Observer::disabled();
    /// # let now = Cycle::ZERO;
    /// if obs.is_enabled() {
    ///     obs.record(TraceEvent::new(
    ///         now,
    ///         TraceEventKind::DeadlockSplit { core: CoreId::new(0), epoch: EpochId::FIRST },
    ///     ));
    /// }
    /// ```
    #[inline(always)]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// True if a sampler is attached and due at or before `now`.
    #[inline(always)]
    pub fn sample_due(&self, now: Cycle) -> bool {
        match &self.sampler {
            Some(s) => s.due(now),
            None => false,
        }
    }

    /// Records one event. Cheap no-op when disabled, but prefer guarding
    /// with [`Observer::is_enabled`] to skip event construction entirely.
    #[inline]
    pub fn record(&mut self, event: TraceEvent) {
        if self.enabled {
            self.sink.record(event);
        }
    }

    /// Appends a metric sample row and advances the sampler deadline.
    /// Call only when [`Observer::sample_due`] returned true.
    pub fn push_sample(&mut self, sample: MetricSample) {
        if let Some(s) = &mut self.sampler {
            s.push(sample);
        }
    }

    /// Drains buffered events (empty unless built with
    /// [`Observer::buffering`] or a draining custom sink).
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        self.sink.drain()
    }

    /// Drains collected metric samples.
    pub fn take_samples(&mut self) -> Vec<MetricSample> {
        match &mut self.sampler {
            Some(s) => s.take(),
            None => Vec::new(),
        }
    }
}

impl Default for Observer {
    fn default() -> Self {
        Observer::disabled()
    }
}

/// Renders metric samples as a CSV document (header + one row per sample,
/// `\n` line endings, no trailing blank line variability — deterministic
/// for identical inputs).
pub fn metrics_csv(samples: &[MetricSample]) -> String {
    let mut out = String::with_capacity(64 * (samples.len() + 1));
    out.push_str(MetricSample::CSV_HEADER);
    out.push('\n');
    for s in samples {
        out.push_str(&s.csv_row());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbm_types::{CoreId, EpochId, EpochTag};

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent::new(
            Cycle::new(cycle),
            TraceEventKind::PersistCmp {
                tag: EpochTag::new(CoreId::new(1), EpochId::new(2)),
            },
        )
    }

    #[test]
    fn disabled_observer_drops_everything() {
        let mut obs = Observer::disabled();
        assert!(!obs.is_enabled());
        obs.record(ev(5));
        assert!(obs.take_events().is_empty());
        assert!(!obs.sample_due(Cycle::new(1_000_000)));
        assert!(obs.take_samples().is_empty());
    }

    #[test]
    fn buffering_observer_keeps_order() {
        let mut obs = Observer::buffering();
        assert!(obs.is_enabled());
        obs.record(ev(1));
        obs.record(ev(2));
        let events = obs.take_events();
        assert_eq!(events.len(), 2);
        assert!(events[0].cycle < events[1].cycle);
        assert!(obs.take_events().is_empty(), "drain empties the buffer");
    }

    #[test]
    fn sampler_cadence() {
        let mut obs = Observer::buffering().with_sampler(Sampler::every(Cycle::new(100)));
        assert!(!obs.sample_due(Cycle::new(50)));
        assert!(obs.sample_due(Cycle::new(100)));
        obs.push_sample(MetricSample {
            cycle: Cycle::new(100),
            ..MetricSample::default()
        });
        assert!(!obs.sample_due(Cycle::new(150)));
        assert!(obs.sample_due(Cycle::new(230)));
        obs.push_sample(MetricSample {
            cycle: Cycle::new(230),
            ..MetricSample::default()
        });
        let rows = obs.take_samples();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].cycle.as_u64(), 230);
    }

    #[test]
    fn csv_shape() {
        let rows = vec![
            MetricSample {
                cycle: Cycle::new(100),
                nvram_writes: 7,
                ..MetricSample::default()
            },
            MetricSample {
                cycle: Cycle::new(200),
                nvram_writes: 19,
                ..MetricSample::default()
            },
        ];
        let csv = metrics_csv(&rows);
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], MetricSample::CSV_HEADER);
        assert!(lines[1].starts_with("100,"));
        assert!(lines[2].starts_with("200,"));
    }
}
