//! A minimal, deterministic JSON document model.
//!
//! The exporters hand-roll their JSON through this module instead of a
//! serialization framework so the output is fully deterministic: objects
//! keep insertion order, numbers are unsigned integers (cycles and ids —
//! no float formatting variability), and strings escape exactly the
//! mandatory character set. The parser accepts standard JSON restricted to
//! the same value space (it rejects floats), which is all the round-trip
//! importer needs.

use std::fmt;

/// A JSON value restricted to what simulator traces contain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer (cycles, ids, counts).
    Num(u64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object preserving insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace). Deterministic: field order is
    /// insertion order.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => {
                use fmt::Write;
                let _ = write!(out, "{n}");
            }
            JsonValue::Str(s) => write_escaped(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Why a parse failed, with the byte offset of the problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

/// Parses one JSON document (surrounding whitespace allowed).
pub fn parse(input: &str) -> Result<JsonValue, JsonParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("floats are not part of the trace value space"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<u64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("integer out of range"))
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("surrogate \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basic_document() {
        let doc = JsonValue::Object(vec![
            ("name".into(), JsonValue::Str("flush \"fast\"\n".into())),
            ("ts".into(), JsonValue::Num(12345)),
            ("ok".into(), JsonValue::Bool(true)),
            ("none".into(), JsonValue::Null),
            (
                "items".into(),
                JsonValue::Array(vec![JsonValue::Num(1), JsonValue::Num(2)]),
            ),
        ]);
        let text = doc.to_json();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn serialization_is_deterministic() {
        let doc = JsonValue::Object(vec![
            ("b".into(), JsonValue::Num(2)),
            ("a".into(), JsonValue::Num(1)),
        ]);
        assert_eq!(doc.to_json(), "{\"b\":2,\"a\":1}");
        assert_eq!(doc.to_json(), doc.to_json());
    }

    #[test]
    fn accepts_whitespace() {
        let v = parse(" { \"a\" : [ 1 , 2 ] , \"b\" : \"x\" } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_floats_and_garbage() {
        assert!(parse("1.5").is_err());
        assert!(parse("1e9").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{} trailing").is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse("\"\\u0041\\u00e9\"").unwrap().as_str(), Some("Aé"));
    }
}
