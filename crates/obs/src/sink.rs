//! Trace sinks: where recorded events go.

use pbm_types::TraceEvent;
use std::fmt::Debug;

/// Destination for recorded trace events.
///
/// Implementations must be deterministic: no wall-clock reads, no
/// iteration-order-dependent state.
pub trait TraceSink: Debug {
    /// True if this sink actually stores events. [`Observer`] caches this
    /// at construction to keep the disabled path branch-predictable.
    ///
    /// [`Observer`]: crate::Observer
    fn is_enabled(&self) -> bool {
        true
    }

    /// Accepts one event.
    fn record(&mut self, event: TraceEvent);

    /// Removes and returns everything recorded so far, in record order.
    /// Sinks that forward events elsewhere may return an empty vector.
    fn drain(&mut self) -> Vec<TraceEvent> {
        Vec::new()
    }
}

/// Sink that drops every event — the zero-cost default.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn is_enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: TraceEvent) {}
}

/// Sink that stores events in memory, in record order.
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    events: Vec<TraceEvent>,
}

impl TraceBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        TraceBuffer::default()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Read-only view of the buffered events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }
}

impl TraceSink for TraceBuffer {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    fn drain(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbm_types::{CoreId, Cycle, EpochId, EpochTag, TraceEventKind};

    #[test]
    fn null_sink_reports_disabled() {
        let mut s = NullSink;
        assert!(!s.is_enabled());
        s.record(TraceEvent::new(
            Cycle::ZERO,
            TraceEventKind::PersistCmp {
                tag: EpochTag::new(CoreId::new(0), EpochId::FIRST),
            },
        ));
        assert!(s.drain().is_empty());
    }

    #[test]
    fn buffer_preserves_record_order() {
        let mut s = TraceBuffer::new();
        assert!(s.is_empty());
        for c in [3u64, 1, 2] {
            s.record(TraceEvent::new(
                Cycle::new(c),
                TraceEventKind::PersistCmp {
                    tag: EpochTag::new(CoreId::new(0), EpochId::FIRST),
                },
            ));
        }
        assert_eq!(s.len(), 3);
        let cycles: Vec<u64> = s.drain().iter().map(|e| e.cycle.as_u64()).collect();
        assert_eq!(cycles, vec![3, 1, 2], "record order, not sorted");
    }
}
