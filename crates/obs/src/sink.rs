//! Trace sinks: where recorded events go.

use pbm_types::TraceEvent;
use std::collections::VecDeque;
use std::fmt::Debug;

/// Destination for recorded trace events.
///
/// Implementations must be deterministic: no wall-clock reads, no
/// iteration-order-dependent state.
pub trait TraceSink: Debug {
    /// True if this sink actually stores events. [`Observer`] caches this
    /// at construction to keep the disabled path branch-predictable.
    ///
    /// [`Observer`]: crate::Observer
    fn is_enabled(&self) -> bool {
        true
    }

    /// Accepts one event.
    fn record(&mut self, event: TraceEvent);

    /// Removes and returns everything recorded so far, in record order.
    /// Sinks that forward events elsewhere may return an empty vector.
    fn drain(&mut self) -> Vec<TraceEvent> {
        Vec::new()
    }
}

/// Sink that drops every event — the zero-cost default.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn is_enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: TraceEvent) {}
}

/// Sink that stores events in memory, in record order.
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    events: Vec<TraceEvent>,
}

impl TraceBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        TraceBuffer::default()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Read-only view of the buffered events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }
}

impl TraceSink for TraceBuffer {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    fn drain(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

/// Bounded ring-buffer sink: keeps the **most recent** `capacity` events,
/// discarding the oldest on overflow, so long fuzz or profiling runs can
/// trace indefinitely in constant memory.
///
/// Every discarded event bumps the drop counter, which **survives
/// [`TraceSink::drain`]** — it is cumulative over the sink's lifetime, so
/// a consumer that drains periodically can difference
/// [`RingSink::dropped`] across drains to detect loss windows. A nonzero
/// count means the retained window is *truncated at the front*: analyses
/// that need complete causal chains (e.g. pbm-prof critical paths) should
/// either raise the capacity or treat barriers whose anchor events fell
/// off as incomplete.
#[derive(Debug, Clone)]
pub struct RingSink {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be nonzero");
        RingSink {
            capacity,
            events: VecDeque::with_capacity(capacity),
            dropped: 0,
        }
    }

    /// The fixed event capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events discarded to make room, cumulative over the sink's
    /// lifetime (NOT reset by [`TraceSink::drain`]).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    fn drain(&mut self) -> Vec<TraceEvent> {
        self.events.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbm_types::{CoreId, Cycle, EpochId, EpochTag, TraceEventKind};

    #[test]
    fn null_sink_reports_disabled() {
        let mut s = NullSink;
        assert!(!s.is_enabled());
        s.record(TraceEvent::new(
            Cycle::ZERO,
            TraceEventKind::PersistCmp {
                tag: EpochTag::new(CoreId::new(0), EpochId::FIRST),
            },
        ));
        assert!(s.drain().is_empty());
    }

    fn cmp_ev(c: u64) -> TraceEvent {
        TraceEvent::new(
            Cycle::new(c),
            TraceEventKind::PersistCmp {
                tag: EpochTag::new(CoreId::new(0), EpochId::FIRST),
            },
        )
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut s = RingSink::new(3);
        assert_eq!(s.capacity(), 3);
        assert!(s.is_empty());
        for c in 0..5 {
            s.record(cmp_ev(c));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.dropped(), 2, "two oldest events fell off");
        let cycles: Vec<u64> = s.drain().iter().map(|e| e.cycle.as_u64()).collect();
        assert_eq!(cycles, vec![2, 3, 4], "newest events, record order");
        assert!(s.is_empty());
        assert_eq!(s.dropped(), 2, "drop counter survives drain");
        s.record(cmp_ev(9));
        assert_eq!(s.len(), 1);
        assert_eq!(s.dropped(), 2, "no new drops until full again");
    }

    #[test]
    fn ring_under_capacity_drops_nothing() {
        let mut s = RingSink::new(8);
        for c in 0..8 {
            s.record(cmp_ev(c));
        }
        assert_eq!(s.dropped(), 0);
        assert_eq!(s.drain().len(), 8);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_ring_panics() {
        let _ = RingSink::new(0);
    }

    #[test]
    fn buffer_preserves_record_order() {
        let mut s = TraceBuffer::new();
        assert!(s.is_empty());
        for c in [3u64, 1, 2] {
            s.record(TraceEvent::new(
                Cycle::new(c),
                TraceEventKind::PersistCmp {
                    tag: EpochTag::new(CoreId::new(0), EpochId::FIRST),
                },
            ));
        }
        assert_eq!(s.len(), 3);
        let cycles: Vec<u64> = s.drain().iter().map(|e| e.cycle.as_u64()).collect();
        assert_eq!(cycles, vec![3, 1, 2], "record order, not sorted");
    }
}
