//! Chrome trace-event JSON export (loadable in Perfetto / `chrome://tracing`).
//!
//! The exporter lays the structured event stream out on tracks:
//!
//! * **cores: execution** (pid 1) — one thread per core; each epoch's
//!   *Ongoing* phase is a duration span (`ph:"X"`).
//! * **cores: persist pipeline** (pid 2) — each epoch's close-to-PersistCMP
//!   window is a duration span carrying the flush reason. Because several
//!   epochs of one core can be in flight at once, spans are packed onto
//!   per-core *lanes* (greedy interval assignment), guaranteeing tracks
//!   never hold overlapping slices.
//! * **cores: stalls** (pid 3) — per-core duration spans for
//!   online-persist and barrier stalls.
//! * **cores: events** (pid 4) — instant events (`ph:"i"`): FlushEpoch and
//!   PersistCMP handshake steps, IDT records/overflows, conflicts,
//!   deadlock splits.
//! * **llc banks** (pid 5) — one thread per bank; BankAck instants.
//! * **noc** (pid 6) — one thread per virtual network; injection instants.
//! * **memory controllers** (pid 7) — counter tracks (`ph:"C"`) from the
//!   periodic metric samples: MC queue depth, stalled cores, cumulative
//!   NVRAM writes.
//!
//! Timestamps are simulated cycles written as integer `ts` microseconds
//! (1 cycle ≙ 1 µs in the viewer); no wall-clock value ever enters the
//! document, so identical runs export byte-identical traces.

use crate::json::JsonValue;
use pbm_types::{MetricSample, TraceEvent, TraceEventKind};
use std::collections::BTreeMap;

const PID_EXEC: u64 = 1;
const PID_PERSIST: u64 = 2;
const PID_STALLS: u64 = 3;
const PID_EVENTS: u64 = 4;
const PID_BANKS: u64 = 5;
const PID_NOC: u64 = 6;
const PID_MC: u64 = 7;

/// Per-core lane stride for the persist pipeline's tid space.
const LANE_STRIDE: u64 = 1000;

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn s(v: impl Into<String>) -> JsonValue {
    JsonValue::Str(v.into())
}

fn n(v: u64) -> JsonValue {
    JsonValue::Num(v)
}

fn metadata(name: &str, pid: u64, tid: Option<u64>, value: &str) -> JsonValue {
    let mut fields = vec![("name", s(name)), ("ph", s("M")), ("pid", n(pid))];
    if let Some(tid) = tid {
        fields.push(("tid", n(tid)));
    }
    fields.push(("args", obj(vec![("name", s(value))])));
    obj(fields)
}

fn span(
    name: String,
    ts: u64,
    dur: u64,
    pid: u64,
    tid: u64,
    args: Vec<(&str, JsonValue)>,
) -> JsonValue {
    obj(vec![
        ("name", s(name)),
        ("ph", s("X")),
        ("ts", n(ts)),
        ("dur", n(dur)),
        ("pid", n(pid)),
        ("tid", n(tid)),
        ("args", obj(args)),
    ])
}

fn instant(name: String, ts: u64, pid: u64, tid: u64, args: Vec<(&str, JsonValue)>) -> JsonValue {
    obj(vec![
        ("name", s(name)),
        ("ph", s("i")),
        ("ts", n(ts)),
        ("pid", n(pid)),
        ("tid", n(tid)),
        ("s", s("t")),
        ("args", obj(args)),
    ])
}

fn counter(name: &str, ts: u64, value: u64) -> JsonValue {
    obj(vec![
        ("name", s(name)),
        ("ph", s("C")),
        ("ts", n(ts)),
        ("pid", n(PID_MC)),
        ("tid", n(0)),
        ("args", obj(vec![("value", n(value))])),
    ])
}

/// Lifecycle milestones of one epoch, reconstructed from the event stream.
#[derive(Debug, Default, Clone)]
struct EpochLife {
    ongoing_at: Option<u64>,
    completed_at: Option<u64>,
    flushing_at: Option<u64>,
    persisted_at: Option<u64>,
    reason: Option<&'static str>,
}

/// Exports the event stream plus metric samples as one Chrome trace-event
/// JSON document. Deterministic: identical inputs yield identical bytes.
pub fn export_chrome_trace(events: &[TraceEvent], samples: &[MetricSample]) -> String {
    // Reconstruct epoch lifecycles, keyed (core, epoch) in BTree order so
    // every later iteration is deterministic.
    let mut lives: BTreeMap<(u32, u64), EpochLife> = BTreeMap::new();
    let mut last_cycle = 0u64;
    for ev in events {
        let cycle = ev.cycle.as_u64();
        last_cycle = last_cycle.max(cycle);
        match ev.kind {
            TraceEventKind::EpochPhase { tag, phase } => {
                let life = lives
                    .entry((tag.core.as_u32(), tag.epoch.as_u64()))
                    .or_default();
                use pbm_types::EpochPhase::*;
                let slot = match phase {
                    Ongoing => &mut life.ongoing_at,
                    Completed => &mut life.completed_at,
                    Flushing => &mut life.flushing_at,
                    Persisted => &mut life.persisted_at,
                };
                slot.get_or_insert(cycle);
            }
            TraceEventKind::FlushEpoch { tag, reason } => {
                lives
                    .entry((tag.core.as_u32(), tag.epoch.as_u64()))
                    .or_default()
                    .reason
                    .get_or_insert(reason.name());
            }
            _ => {}
        }
    }

    let mut out: Vec<JsonValue> = Vec::with_capacity(events.len() + lives.len() * 2 + 64);

    // Execution spans: the Ongoing phase of each epoch.
    let mut exec_cores: Vec<u32> = Vec::new();
    for (&(core, epoch), life) in &lives {
        let Some(start) = life.ongoing_at else {
            continue;
        };
        let end = life
            .completed_at
            .or(life.flushing_at)
            .or(life.persisted_at)
            .unwrap_or(last_cycle);
        out.push(span(
            format!("E{epoch}"),
            start,
            end.saturating_sub(start),
            PID_EXEC,
            u64::from(core),
            vec![("epoch", s(format!("C{core}:E{epoch}")))],
        ));
        if !exec_cores.contains(&core) {
            exec_cores.push(core);
        }
    }

    // Persist-pipeline spans: close (or flush start) to PersistCMP, packed
    // onto per-core lanes so no track holds overlapping slices.
    let mut lanes: BTreeMap<u32, Vec<u64>> = BTreeMap::new(); // core -> lane busy-until
    let mut persist_tids: Vec<(u32, u64)> = Vec::new(); // (core, lane)
    for (&(core, epoch), life) in &lives {
        let Some(start) = life.completed_at.or(life.flushing_at) else {
            continue;
        };
        let end = life.persisted_at.unwrap_or(last_cycle);
        let lanes = lanes.entry(core).or_default();
        let lane = match lanes.iter().position(|&busy_until| busy_until <= start) {
            Some(free) => free,
            None => {
                lanes.push(0);
                lanes.len() - 1
            }
        };
        lanes[lane] = end.max(start + 1);
        let reason = life.reason.unwrap_or("unknown");
        out.push(span(
            format!("E{epoch} flush"),
            start,
            end.saturating_sub(start),
            PID_PERSIST,
            u64::from(core) * LANE_STRIDE + lane as u64,
            vec![
                ("epoch", s(format!("C{core}:E{epoch}"))),
                ("reason", s(reason)),
            ],
        ));
        if !persist_tids.contains(&(core, lane as u64)) {
            persist_tids.push((core, lane as u64));
        }
    }

    // Instants, stalls, bank acks, NoC injections, straight off the stream.
    let mut stall_cores: Vec<u32> = Vec::new();
    let mut bank_tids: Vec<u32> = Vec::new();
    let mut event_cores: Vec<u32> = Vec::new();
    let mut noc_vnets: Vec<&'static str> = Vec::new();
    for ev in events {
        let ts = ev.cycle.as_u64();
        match ev.kind {
            TraceEventKind::EpochPhase { .. } => {}
            TraceEventKind::FlushRequested { tag, reason } => {
                let core = tag.core.as_u32();
                out.push(instant(
                    format!("FlushRequested {}", tag),
                    ts,
                    PID_EVENTS,
                    u64::from(core),
                    vec![("reason", s(reason.name()))],
                ));
                if !event_cores.contains(&core) {
                    event_cores.push(core);
                }
            }
            TraceEventKind::BankFlushStart {
                tag, bank, lines, ..
            } => {
                out.push(instant(
                    format!("FlushStart {}", tag),
                    ts,
                    PID_BANKS,
                    u64::from(bank.as_u32()),
                    vec![
                        ("epoch", s(tag.to_string())),
                        ("lines", n(u64::from(lines))),
                    ],
                ));
                if !bank_tids.contains(&bank.as_u32()) {
                    bank_tids.push(bank.as_u32());
                }
            }
            TraceEventKind::PersistWrite { .. } => {
                // One event per flushed line — too dense for a viewer
                // track. pbm-prof consumes these from the structured-event
                // export instead.
            }
            TraceEventKind::FlushEpoch { tag, reason } => {
                let core = tag.core.as_u32();
                out.push(instant(
                    format!("FlushEpoch {}", tag),
                    ts,
                    PID_EVENTS,
                    u64::from(core),
                    vec![("reason", s(reason.name()))],
                ));
                if !event_cores.contains(&core) {
                    event_cores.push(core);
                }
            }
            TraceEventKind::BankAck { tag, bank } => {
                out.push(instant(
                    format!("BankAck {}", tag),
                    ts,
                    PID_BANKS,
                    u64::from(bank.as_u32()),
                    vec![("epoch", s(tag.to_string()))],
                ));
                if !bank_tids.contains(&bank.as_u32()) {
                    bank_tids.push(bank.as_u32());
                }
            }
            TraceEventKind::PersistCmp { tag } => {
                let core = tag.core.as_u32();
                out.push(instant(
                    format!("PersistCMP {}", tag),
                    ts,
                    PID_EVENTS,
                    u64::from(core),
                    vec![("epoch", s(tag.to_string()))],
                ));
                if !event_cores.contains(&core) {
                    event_cores.push(core);
                }
            }
            TraceEventKind::IdtRecord { source, dependent }
            | TraceEventKind::IdtOverflow { source, dependent }
            | TraceEventKind::ConflictInter { source, dependent } => {
                let core = dependent.core.as_u32();
                let name = match ev.kind {
                    TraceEventKind::IdtRecord { .. } => "IDT record",
                    TraceEventKind::IdtOverflow { .. } => "IDT overflow",
                    _ => "inter-thread conflict",
                };
                out.push(instant(
                    name.to_string(),
                    ts,
                    PID_EVENTS,
                    u64::from(core),
                    vec![
                        ("source", s(source.to_string())),
                        ("dependent", s(dependent.to_string())),
                    ],
                ));
                if !event_cores.contains(&core) {
                    event_cores.push(core);
                }
            }
            TraceEventKind::DeadlockSplit { core, epoch }
            | TraceEventKind::ConflictIntra { core, epoch } => {
                let name = match ev.kind {
                    TraceEventKind::DeadlockSplit { .. } => "deadlock split",
                    _ => "intra-thread conflict",
                };
                out.push(instant(
                    name.to_string(),
                    ts,
                    PID_EVENTS,
                    u64::from(core.as_u32()),
                    vec![("epoch", s(format!("{core}:{epoch}")))],
                ));
                if !event_cores.contains(&core.as_u32()) {
                    event_cores.push(core.as_u32());
                }
            }
            TraceEventKind::StallBegin { .. } => {
                // The matching StallEnd carries the duration; the span is
                // emitted there.
            }
            TraceEventKind::StallEnd { core, kind, waited } => {
                let start = ts.saturating_sub(waited.as_u64());
                out.push(span(
                    format!("stall: {}", kind.name()),
                    start,
                    waited.as_u64(),
                    PID_STALLS,
                    u64::from(core.as_u32()),
                    vec![("kind", s(kind.name()))],
                ));
                if !stall_cores.contains(&core.as_u32()) {
                    stall_cores.push(core.as_u32());
                }
            }
            TraceEventKind::NocSend {
                src,
                dst,
                class,
                arrival,
            } => {
                let vnet = class.name();
                out.push(instant(
                    format!("{src}->{dst}"),
                    ts,
                    PID_NOC,
                    class as u64,
                    vec![("class", s(vnet)), ("arrival", n(arrival.as_u64()))],
                ));
                if !noc_vnets.contains(&vnet) {
                    noc_vnets.push(vnet);
                }
            }
        }
    }

    // Counter tracks from the periodic samples.
    for sample in samples {
        let ts = sample.cycle.as_u64();
        out.push(counter("mc_queue_depth", ts, sample.mc_queue_depth));
        out.push(counter(
            "stalled_cores",
            ts,
            u64::from(sample.stalled_cores),
        ));
        out.push(counter("nvram_writes", ts, sample.nvram_writes));
    }

    // Stable sort by timestamp keeps ties in emission order, which is
    // itself deterministic.
    out.sort_by_key(|e| e.get("ts").and_then(JsonValue::as_u64).unwrap_or(0));

    // Track naming metadata, emitted ahead of the content.
    let mut doc: Vec<JsonValue> = Vec::with_capacity(out.len() + 32);
    for (pid, name, tids) in [
        (
            PID_EXEC,
            "cores: execution",
            exec_cores
                .iter()
                .map(|&c| (u64::from(c), format!("C{c}")))
                .collect::<Vec<_>>(),
        ),
        (
            PID_PERSIST,
            "cores: persist pipeline",
            persist_tids
                .iter()
                .map(|&(c, l)| (u64::from(c) * LANE_STRIDE + l, format!("C{c} lane{l}")))
                .collect(),
        ),
        (
            PID_STALLS,
            "cores: stalls",
            stall_cores
                .iter()
                .map(|&c| (u64::from(c), format!("C{c}")))
                .collect(),
        ),
        (
            PID_EVENTS,
            "cores: events",
            event_cores
                .iter()
                .map(|&c| (u64::from(c), format!("C{c}")))
                .collect(),
        ),
        (
            PID_BANKS,
            "llc banks",
            bank_tids
                .iter()
                .map(|&b| (u64::from(b), format!("B{b}")))
                .collect(),
        ),
        (
            PID_NOC,
            "noc",
            noc_vnets
                .iter()
                .enumerate()
                .map(|(i, v)| (i as u64, format!("vnet {v}")))
                .collect(),
        ),
        (
            PID_MC,
            "memory controllers",
            if samples.is_empty() {
                Vec::new()
            } else {
                vec![(0, "counters".to_string())]
            },
        ),
    ] {
        if tids.is_empty() {
            continue;
        }
        doc.push(metadata("process_name", pid, None, name));
        let mut tids = tids;
        tids.sort();
        for (tid, tname) in tids {
            doc.push(metadata("thread_name", pid, Some(tid), &tname));
        }
    }
    doc.extend(out);

    // Assemble the document with one event per line for greppability.
    let mut text = String::with_capacity(doc.len() * 128 + 64);
    text.push_str("{\"traceEvents\":[\n");
    for (i, event) in doc.iter().enumerate() {
        if i > 0 {
            text.push_str(",\n");
        }
        text.push_str(&event.to_json());
    }
    text.push_str("\n]}\n");
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use pbm_types::{BankId, CoreId, Cycle, EpochId, EpochPhase, EpochTag, FlushReason, StallKind};

    fn lifecycle(core: u32, epoch: u64, t0: u64) -> Vec<TraceEvent> {
        let tag = EpochTag::new(CoreId::new(core), EpochId::new(epoch));
        vec![
            TraceEvent::new(
                Cycle::new(t0),
                TraceEventKind::EpochPhase {
                    tag,
                    phase: EpochPhase::Ongoing,
                },
            ),
            TraceEvent::new(
                Cycle::new(t0 + 10),
                TraceEventKind::EpochPhase {
                    tag,
                    phase: EpochPhase::Completed,
                },
            ),
            TraceEvent::new(
                Cycle::new(t0 + 11),
                TraceEventKind::FlushEpoch {
                    tag,
                    reason: FlushReason::Barrier,
                },
            ),
            TraceEvent::new(
                Cycle::new(t0 + 11),
                TraceEventKind::EpochPhase {
                    tag,
                    phase: EpochPhase::Flushing,
                },
            ),
            TraceEvent::new(
                Cycle::new(t0 + 30),
                TraceEventKind::BankAck {
                    tag,
                    bank: BankId::new(0),
                },
            ),
            TraceEvent::new(
                Cycle::new(t0 + 40),
                TraceEventKind::EpochPhase {
                    tag,
                    phase: EpochPhase::Persisted,
                },
            ),
            TraceEvent::new(Cycle::new(t0 + 40), TraceEventKind::PersistCmp { tag }),
        ]
    }

    fn parsed_events(text: &str) -> Vec<JsonValue> {
        let doc = json::parse(text).unwrap();
        doc.get("traceEvents").unwrap().as_array().unwrap().to_vec()
    }

    #[test]
    fn exports_valid_json_with_spans_and_instants() {
        let mut events = lifecycle(0, 1, 100);
        events.extend(lifecycle(1, 1, 120));
        let text = export_chrome_trace(&events, &[]);
        let items = parsed_events(&text);

        let exec_spans: Vec<_> = items
            .iter()
            .filter(|e| {
                e.get("ph").and_then(JsonValue::as_str) == Some("X")
                    && e.get("pid").and_then(JsonValue::as_u64) == Some(PID_EXEC)
            })
            .collect();
        assert_eq!(exec_spans.len(), 2, "one ongoing span per core");
        let tids: Vec<_> = exec_spans
            .iter()
            .map(|e| e.get("tid").unwrap().as_u64().unwrap())
            .collect();
        assert!(tids.contains(&0) && tids.contains(&1), "per-core tracks");

        let flush_spans: Vec<_> = items
            .iter()
            .filter(|e| e.get("pid").and_then(JsonValue::as_u64) == Some(PID_PERSIST))
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
            .collect();
        assert_eq!(flush_spans.len(), 2);
        for span in &flush_spans {
            assert_eq!(
                span.get("args").unwrap().get("reason").unwrap().as_str(),
                Some("barrier")
            );
            assert_eq!(span.get("dur").unwrap().as_u64(), Some(30));
        }

        let instants: Vec<_> = items
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("i"))
            .collect();
        let names: Vec<_> = instants
            .iter()
            .map(|e| e.get("name").unwrap().as_str().unwrap())
            .collect();
        assert!(names.iter().any(|n| n.starts_with("FlushEpoch")));
        assert!(names.iter().any(|n| n.starts_with("PersistCMP")));
        assert!(names.iter().any(|n| n.starts_with("BankAck")));
    }

    #[test]
    fn overlapping_flushes_get_distinct_lanes() {
        let tag1 = EpochTag::new(CoreId::new(0), EpochId::new(1));
        let tag2 = EpochTag::new(CoreId::new(0), EpochId::new(2));
        let mut events = Vec::new();
        for (tag, close, persist) in [(tag1, 10u64, 100u64), (tag2, 20, 90)] {
            events.push(TraceEvent::new(
                Cycle::new(close),
                TraceEventKind::EpochPhase {
                    tag,
                    phase: EpochPhase::Completed,
                },
            ));
            events.push(TraceEvent::new(
                Cycle::new(persist),
                TraceEventKind::EpochPhase {
                    tag,
                    phase: EpochPhase::Persisted,
                },
            ));
        }
        let text = export_chrome_trace(&events, &[]);
        let items = parsed_events(&text);
        let tids: Vec<u64> = items
            .iter()
            .filter(|e| e.get("pid").and_then(JsonValue::as_u64) == Some(PID_PERSIST))
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
            .map(|e| e.get("tid").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(tids.len(), 2);
        assert_ne!(tids[0], tids[1], "overlapping spans must not share a track");
    }

    #[test]
    fn stall_spans_and_counters() {
        let tag = EpochTag::new(CoreId::new(3), EpochId::new(0));
        let events = vec![
            TraceEvent::new(
                Cycle::new(50),
                TraceEventKind::StallBegin {
                    core: CoreId::new(3),
                    kind: StallKind::Barrier,
                    tag,
                },
            ),
            TraceEvent::new(
                Cycle::new(80),
                TraceEventKind::StallEnd {
                    core: CoreId::new(3),
                    kind: StallKind::Barrier,
                    waited: Cycle::new(30),
                },
            ),
        ];
        let samples = vec![MetricSample {
            cycle: Cycle::new(64),
            mc_queue_depth: 5,
            stalled_cores: 1,
            ..MetricSample::default()
        }];
        let text = export_chrome_trace(&events, &samples);
        let items = parsed_events(&text);
        let stall = items
            .iter()
            .find(|e| {
                e.get("pid").and_then(JsonValue::as_u64) == Some(PID_STALLS)
                    && e.get("ph").and_then(JsonValue::as_str) == Some("X")
            })
            .unwrap();
        assert_eq!(stall.get("ts").unwrap().as_u64(), Some(50));
        assert_eq!(stall.get("dur").unwrap().as_u64(), Some(30));
        let counters: Vec<_> = items
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("C"))
            .collect();
        assert_eq!(counters.len(), 3);
    }

    #[test]
    fn deterministic_bytes() {
        let mut events = lifecycle(0, 1, 0);
        events.extend(lifecycle(1, 1, 5));
        let a = export_chrome_trace(&events, &[]);
        let b = export_chrome_trace(&events, &[]);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_trace_is_valid() {
        let text = export_chrome_trace(&[], &[]);
        assert!(json::parse(&text).is_ok());
    }
}
