//! Structured-event JSON codec: [`TraceEvent`] ⇄ JSON, with a round-trip
//! guarantee (`parse_events(export_events(ev)) == ev`).
//!
//! The document is an object `{"version":1,"events":[...]}` with one flat
//! object per event; field order is fixed, so exports are byte-identical
//! for identical event streams.

use crate::json::{parse, JsonParseError, JsonValue};
use pbm_types::{
    BankId, CoreId, Cycle, EpochId, EpochPhase, EpochTag, FlushReason, McId, NocClass, NodeId,
    StallKind, TraceEvent, TraceEventKind,
};
use std::fmt;

/// Current document version.
pub const VERSION: u64 = 1;

/// Why an event document failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The text is not valid JSON (or not in the trace value space).
    Json(JsonParseError),
    /// The JSON is structurally not an event document.
    Shape(String),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Json(e) => write!(f, "{e}"),
            DecodeError::Shape(m) => write!(f, "bad event document: {m}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<JsonParseError> for DecodeError {
    fn from(e: JsonParseError) -> Self {
        DecodeError::Json(e)
    }
}

fn shape(m: impl Into<String>) -> DecodeError {
    DecodeError::Shape(m.into())
}

fn node_to_string(n: NodeId) -> String {
    n.to_string() // "C3" / "B1" / "MC0"
}

fn node_from_str(s: &str) -> Result<NodeId, DecodeError> {
    if let Some(raw) = s.strip_prefix("MC") {
        let raw: u32 = raw.parse().map_err(|_| shape(format!("bad node {s}")))?;
        return Ok(NodeId::Mc(McId::new(raw)));
    }
    if let Some(raw) = s.strip_prefix('C') {
        let raw: u32 = raw.parse().map_err(|_| shape(format!("bad node {s}")))?;
        return Ok(NodeId::Core(CoreId::new(raw)));
    }
    if let Some(raw) = s.strip_prefix('B') {
        let raw: u32 = raw.parse().map_err(|_| shape(format!("bad node {s}")))?;
        return Ok(NodeId::Bank(BankId::new(raw)));
    }
    Err(shape(format!("bad node {s}")))
}

fn num(n: u64) -> JsonValue {
    JsonValue::Num(n)
}

fn s(v: impl Into<String>) -> JsonValue {
    JsonValue::Str(v.into())
}

fn tag_fields(prefix: &str, tag: EpochTag, out: &mut Vec<(String, JsonValue)>) {
    out.push((format!("{prefix}core"), num(u64::from(tag.core.as_u32()))));
    out.push((format!("{prefix}epoch"), num(tag.epoch.as_u64())));
}

/// Encodes one event as a flat JSON object.
pub fn event_to_json(event: &TraceEvent) -> JsonValue {
    let mut fields: Vec<(String, JsonValue)> = vec![
        ("cycle".into(), num(event.cycle.as_u64())),
        ("kind".into(), s(event.kind.name())),
    ];
    match event.kind {
        TraceEventKind::EpochPhase { tag, phase } => {
            tag_fields("", tag, &mut fields);
            fields.push(("phase".into(), s(phase.name())));
        }
        TraceEventKind::FlushRequested { tag, reason }
        | TraceEventKind::FlushEpoch { tag, reason } => {
            tag_fields("", tag, &mut fields);
            fields.push(("reason".into(), s(reason.name())));
        }
        TraceEventKind::BankFlushStart {
            tag,
            bank,
            cmd_at,
            wb_at,
            log_at,
            chk_at,
            lines,
        } => {
            tag_fields("", tag, &mut fields);
            fields.push(("bank".into(), num(u64::from(bank.as_u32()))));
            fields.push(("cmd_at".into(), num(cmd_at.as_u64())));
            fields.push(("wb_at".into(), num(wb_at.as_u64())));
            fields.push(("log_at".into(), num(log_at.as_u64())));
            fields.push(("chk_at".into(), num(chk_at.as_u64())));
            fields.push(("lines".into(), num(u64::from(lines))));
        }
        TraceEventKind::PersistWrite {
            tag,
            bank,
            mc,
            mc_at,
            begin,
            durable,
            ack_at,
        } => {
            tag_fields("", tag, &mut fields);
            fields.push(("bank".into(), num(u64::from(bank.as_u32()))));
            fields.push(("mc".into(), num(u64::from(mc.as_u32()))));
            fields.push(("mc_at".into(), num(mc_at.as_u64())));
            fields.push(("begin".into(), num(begin.as_u64())));
            fields.push(("durable".into(), num(durable.as_u64())));
            fields.push(("ack_at".into(), num(ack_at.as_u64())));
        }
        TraceEventKind::BankAck { tag, bank } => {
            tag_fields("", tag, &mut fields);
            fields.push(("bank".into(), num(u64::from(bank.as_u32()))));
        }
        TraceEventKind::PersistCmp { tag } => {
            tag_fields("", tag, &mut fields);
        }
        TraceEventKind::IdtRecord { source, dependent }
        | TraceEventKind::IdtOverflow { source, dependent }
        | TraceEventKind::ConflictInter { source, dependent } => {
            tag_fields("src_", source, &mut fields);
            tag_fields("dep_", dependent, &mut fields);
        }
        TraceEventKind::DeadlockSplit { core, epoch }
        | TraceEventKind::ConflictIntra { core, epoch } => {
            fields.push(("core".into(), num(u64::from(core.as_u32()))));
            fields.push(("epoch".into(), num(epoch.as_u64())));
        }
        TraceEventKind::StallBegin { core, kind, tag } => {
            fields.push(("core".into(), num(u64::from(core.as_u32()))));
            fields.push(("stall".into(), s(kind.name())));
            tag_fields("on_", tag, &mut fields);
        }
        TraceEventKind::StallEnd { core, kind, waited } => {
            fields.push(("core".into(), num(u64::from(core.as_u32()))));
            fields.push(("stall".into(), s(kind.name())));
            fields.push(("waited".into(), num(waited.as_u64())));
        }
        TraceEventKind::NocSend {
            src,
            dst,
            class,
            arrival,
        } => {
            fields.push(("src".into(), s(node_to_string(src))));
            fields.push(("dst".into(), s(node_to_string(dst))));
            fields.push(("class".into(), s(class.name())));
            fields.push(("arrival".into(), num(arrival.as_u64())));
        }
    }
    JsonValue::Object(fields)
}

fn get_u64(obj: &JsonValue, key: &str) -> Result<u64, DecodeError> {
    obj.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| shape(format!("missing integer field '{key}'")))
}

fn get_str<'a>(obj: &'a JsonValue, key: &str) -> Result<&'a str, DecodeError> {
    obj.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| shape(format!("missing string field '{key}'")))
}

fn get_tag(obj: &JsonValue, prefix: &str) -> Result<EpochTag, DecodeError> {
    let core = get_u64(obj, &format!("{prefix}core"))?;
    let epoch = get_u64(obj, &format!("{prefix}epoch"))?;
    Ok(EpochTag::new(CoreId::new(core as u32), EpochId::new(epoch)))
}

/// Decodes one event from its flat JSON object.
pub fn event_from_json(obj: &JsonValue) -> Result<TraceEvent, DecodeError> {
    let cycle = Cycle::new(get_u64(obj, "cycle")?);
    let kind_name = get_str(obj, "kind")?;
    let kind = match kind_name {
        "epoch_phase" => TraceEventKind::EpochPhase {
            tag: get_tag(obj, "")?,
            phase: EpochPhase::parse(get_str(obj, "phase")?).ok_or_else(|| shape("bad phase"))?,
        },
        "flush_requested" => TraceEventKind::FlushRequested {
            tag: get_tag(obj, "")?,
            reason: FlushReason::parse(get_str(obj, "reason")?)
                .ok_or_else(|| shape("bad reason"))?,
        },
        "flush_epoch" => TraceEventKind::FlushEpoch {
            tag: get_tag(obj, "")?,
            reason: FlushReason::parse(get_str(obj, "reason")?)
                .ok_or_else(|| shape("bad reason"))?,
        },
        "bank_flush_start" => TraceEventKind::BankFlushStart {
            tag: get_tag(obj, "")?,
            bank: BankId::new(get_u64(obj, "bank")? as u32),
            cmd_at: Cycle::new(get_u64(obj, "cmd_at")?),
            wb_at: Cycle::new(get_u64(obj, "wb_at")?),
            log_at: Cycle::new(get_u64(obj, "log_at")?),
            chk_at: Cycle::new(get_u64(obj, "chk_at")?),
            lines: get_u64(obj, "lines")? as u32,
        },
        "persist_write" => TraceEventKind::PersistWrite {
            tag: get_tag(obj, "")?,
            bank: BankId::new(get_u64(obj, "bank")? as u32),
            mc: McId::new(get_u64(obj, "mc")? as u32),
            mc_at: Cycle::new(get_u64(obj, "mc_at")?),
            begin: Cycle::new(get_u64(obj, "begin")?),
            durable: Cycle::new(get_u64(obj, "durable")?),
            ack_at: Cycle::new(get_u64(obj, "ack_at")?),
        },
        "bank_ack" => TraceEventKind::BankAck {
            tag: get_tag(obj, "")?,
            bank: BankId::new(get_u64(obj, "bank")? as u32),
        },
        "persist_cmp" => TraceEventKind::PersistCmp {
            tag: get_tag(obj, "")?,
        },
        "idt_record" => TraceEventKind::IdtRecord {
            source: get_tag(obj, "src_")?,
            dependent: get_tag(obj, "dep_")?,
        },
        "idt_overflow" => TraceEventKind::IdtOverflow {
            source: get_tag(obj, "src_")?,
            dependent: get_tag(obj, "dep_")?,
        },
        "conflict_inter" => TraceEventKind::ConflictInter {
            source: get_tag(obj, "src_")?,
            dependent: get_tag(obj, "dep_")?,
        },
        "deadlock_split" => TraceEventKind::DeadlockSplit {
            core: CoreId::new(get_u64(obj, "core")? as u32),
            epoch: EpochId::new(get_u64(obj, "epoch")?),
        },
        "conflict_intra" => TraceEventKind::ConflictIntra {
            core: CoreId::new(get_u64(obj, "core")? as u32),
            epoch: EpochId::new(get_u64(obj, "epoch")?),
        },
        "stall_begin" => TraceEventKind::StallBegin {
            core: CoreId::new(get_u64(obj, "core")? as u32),
            kind: StallKind::parse(get_str(obj, "stall")?)
                .ok_or_else(|| shape("bad stall kind"))?,
            tag: get_tag(obj, "on_")?,
        },
        "stall_end" => TraceEventKind::StallEnd {
            core: CoreId::new(get_u64(obj, "core")? as u32),
            kind: StallKind::parse(get_str(obj, "stall")?)
                .ok_or_else(|| shape("bad stall kind"))?,
            waited: Cycle::new(get_u64(obj, "waited")?),
        },
        "noc_send" => TraceEventKind::NocSend {
            src: node_from_str(get_str(obj, "src")?)?,
            dst: node_from_str(get_str(obj, "dst")?)?,
            class: NocClass::parse(get_str(obj, "class")?).ok_or_else(|| shape("bad noc class"))?,
            arrival: Cycle::new(get_u64(obj, "arrival")?),
        },
        other => return Err(shape(format!("unknown event kind '{other}'"))),
    };
    Ok(TraceEvent::new(cycle, kind))
}

/// Exports events as a JSON document, one event object per line inside the
/// array for greppability. Byte-identical for identical event streams.
pub fn export_events(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"version\":");
    out.push_str(&VERSION.to_string());
    out.push_str(",\"events\":[\n");
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&event_to_json(event).to_json());
    }
    out.push_str("\n]}\n");
    out
}

/// Parses a document produced by [`export_events`] back into events.
pub fn parse_events(text: &str) -> Result<Vec<TraceEvent>, DecodeError> {
    let doc = parse(text)?;
    let version = get_u64(&doc, "version")?;
    if version != VERSION {
        return Err(shape(format!("unsupported version {version}")));
    }
    let events = doc
        .get("events")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| shape("missing 'events' array"))?;
    events.iter().map(event_from_json).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        let t01 = EpochTag::new(CoreId::new(0), EpochId::new(1));
        let t13 = EpochTag::new(CoreId::new(1), EpochId::new(3));
        vec![
            TraceEvent::new(
                Cycle::new(10),
                TraceEventKind::EpochPhase {
                    tag: t01,
                    phase: EpochPhase::Completed,
                },
            ),
            TraceEvent::new(
                Cycle::new(10),
                TraceEventKind::FlushRequested {
                    tag: t01,
                    reason: FlushReason::Barrier,
                },
            ),
            TraceEvent::new(
                Cycle::new(11),
                TraceEventKind::FlushEpoch {
                    tag: t01,
                    reason: FlushReason::Conflict,
                },
            ),
            TraceEvent::new(
                Cycle::new(15),
                TraceEventKind::BankFlushStart {
                    tag: t01,
                    bank: BankId::new(1),
                    cmd_at: Cycle::new(15),
                    wb_at: Cycle::new(13),
                    log_at: Cycle::new(11),
                    chk_at: Cycle::new(11),
                    lines: 3,
                },
            ),
            TraceEvent::new(
                Cycle::new(15),
                TraceEventKind::PersistWrite {
                    tag: t01,
                    bank: BankId::new(1),
                    mc: McId::new(0),
                    mc_at: Cycle::new(19),
                    begin: Cycle::new(21),
                    durable: Cycle::new(381),
                    ack_at: Cycle::new(385),
                },
            ),
            TraceEvent::new(
                Cycle::new(40),
                TraceEventKind::BankAck {
                    tag: t01,
                    bank: BankId::new(2),
                },
            ),
            TraceEvent::new(Cycle::new(55), TraceEventKind::PersistCmp { tag: t01 }),
            TraceEvent::new(
                Cycle::new(60),
                TraceEventKind::IdtRecord {
                    source: t01,
                    dependent: t13,
                },
            ),
            TraceEvent::new(
                Cycle::new(61),
                TraceEventKind::IdtOverflow {
                    source: t13,
                    dependent: t01,
                },
            ),
            TraceEvent::new(
                Cycle::new(62),
                TraceEventKind::ConflictInter {
                    source: t01,
                    dependent: t13,
                },
            ),
            TraceEvent::new(
                Cycle::new(63),
                TraceEventKind::ConflictIntra {
                    core: CoreId::new(1),
                    epoch: EpochId::new(2),
                },
            ),
            TraceEvent::new(
                Cycle::new(64),
                TraceEventKind::DeadlockSplit {
                    core: CoreId::new(0),
                    epoch: EpochId::new(4),
                },
            ),
            TraceEvent::new(
                Cycle::new(70),
                TraceEventKind::StallBegin {
                    core: CoreId::new(1),
                    kind: StallKind::OnlinePersist,
                    tag: t01,
                },
            ),
            TraceEvent::new(
                Cycle::new(90),
                TraceEventKind::StallEnd {
                    core: CoreId::new(1),
                    kind: StallKind::OnlinePersist,
                    waited: Cycle::new(20),
                },
            ),
            TraceEvent::new(
                Cycle::new(95),
                TraceEventKind::NocSend {
                    src: NodeId::Core(CoreId::new(0)),
                    dst: NodeId::Mc(McId::new(1)),
                    class: NocClass::Writeback,
                    arrival: Cycle::new(103),
                },
            ),
        ]
    }

    #[test]
    fn every_kind_round_trips() {
        let events = sample_events();
        let text = export_events(&events);
        let back = parse_events(&text).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn export_is_byte_identical() {
        let events = sample_events();
        assert_eq!(export_events(&events), export_events(&events));
    }

    #[test]
    fn node_strings_round_trip() {
        for n in [
            NodeId::Core(CoreId::new(0)),
            NodeId::Bank(BankId::new(7)),
            NodeId::Mc(McId::new(3)),
        ] {
            assert_eq!(node_from_str(&node_to_string(n)).unwrap(), n);
        }
        assert!(node_from_str("X9").is_err());
        assert!(node_from_str("C").is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_events("{}").is_err());
        assert!(parse_events("{\"version\":99,\"events\":[]}").is_err());
        assert!(
            parse_events("{\"version\":1,\"events\":[{\"cycle\":1,\"kind\":\"nope\"}]}").is_err()
        );
        assert!(parse_events("{\"version\":1,\"events\":[{\"kind\":\"persist_cmp\"}]}").is_err());
    }

    #[test]
    fn empty_stream_round_trips() {
        let text = export_events(&[]);
        assert_eq!(parse_events(&text).unwrap(), vec![]);
    }
}
