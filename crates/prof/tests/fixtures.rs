//! Hand-built traces with critical paths known by construction: every
//! cycle of each fixture's persist latency is placed deliberately, and
//! the tests assert the analyzer attributes **exactly** those cycles to
//! exactly those components.

use pbm_prof::{analyze, Component};
use pbm_types::{
    BankId, CoreId, Cycle, EpochId, EpochTag, FlushReason, McId, TraceEvent, TraceEventKind,
};

fn tag(core: u32, epoch: u64) -> EpochTag {
    EpochTag::new(CoreId::new(core), EpochId::new(epoch))
}

fn ev(cycle: u64, kind: TraceEventKind) -> TraceEvent {
    TraceEvent::new(Cycle::new(cycle), kind)
}

fn bank_start(
    t: EpochTag,
    bank: u32,
    start: u64,
    (cmd_at, wb_at, log_at, chk_at): (u64, u64, u64, u64),
    lines: u32,
) -> TraceEvent {
    ev(
        start,
        TraceEventKind::BankFlushStart {
            tag: t,
            bank: BankId::new(bank),
            cmd_at: Cycle::new(cmd_at),
            wb_at: Cycle::new(wb_at),
            log_at: Cycle::new(log_at),
            chk_at: Cycle::new(chk_at),
            lines,
        },
    )
}

fn write(
    t: EpochTag,
    bank: u32,
    stamp: u64,
    (mc_at, begin, durable, ack_at): (u64, u64, u64, u64),
) -> TraceEvent {
    ev(
        stamp,
        TraceEventKind::PersistWrite {
            tag: t,
            bank: BankId::new(bank),
            mc: McId::new(0),
            mc_at: Cycle::new(mc_at),
            begin: Cycle::new(begin),
            durable: Cycle::new(durable),
            ack_at: Cycle::new(ack_at),
        },
    )
}

/// A single-core BEP barrier with every handshake segment nonzero:
///
/// ```text
/// request+flush @100 → bank gate held by command delivery until 110
/// → line: MC @115, queue exit @120, durable @480, ack @485
/// → BankAck @490 → PersistCMP @490
/// ```
///
/// Latency 390 = flush_cmd 10 + noc_to_mc 5 + mc_queue 5 +
/// nvram_write 360 + noc_ack 5 + bank_ack 5.
#[test]
fn single_core_bep_exact_attribution() {
    let t = tag(0, 0);
    let events = vec![
        ev(
            100,
            TraceEventKind::FlushRequested {
                tag: t,
                reason: FlushReason::Barrier,
            },
        ),
        ev(
            100,
            TraceEventKind::FlushEpoch {
                tag: t,
                reason: FlushReason::Barrier,
            },
        ),
        bank_start(t, 0, 110, (110, 105, 100, 100), 1),
        write(t, 0, 110, (115, 120, 480, 485)),
        ev(
            490,
            TraceEventKind::BankAck {
                tag: t,
                bank: BankId::new(0),
            },
        ),
        ev(490, TraceEventKind::PersistCmp { tag: t }),
    ];
    let profile = analyze(&events);
    assert_eq!(profile.barriers.len(), 1);
    let b = &profile.barriers[0];
    assert_eq!(b.tag, t);
    assert_eq!(b.reason, FlushReason::Barrier);
    assert_eq!(b.latency(), 390);
    assert_eq!(b.straggler_bank, Some(BankId::new(0)));
    let expect = [
        (Component::DepWait, 0),
        (Component::ArbQueue, 0),
        (Component::FlushCmd, 10),
        (Component::L1Writeback, 0),
        (Component::UndoLog, 0),
        (Component::Checkpoint, 0),
        (Component::NocToMc, 5),
        (Component::McQueue, 5),
        (Component::NvramWrite, 360),
        (Component::NocAck, 5),
        (Component::BankAck, 5),
        (Component::Retire, 0),
    ];
    for (c, n) in expect {
        assert_eq!(b.attribution.get(c), n, "{c}");
    }
    assert_eq!(b.attribution.total(), b.latency(), "conservation");
    assert_eq!(
        b.attribution.dominant(),
        Some((Component::NvramWrite, 360)),
        "the NVRAM cell write dominates a quiet single-core barrier"
    );
}

/// A two-core IDT chain: C1:E0's flush was requested at 100 but the
/// arbiter sat on it until its IDT source (C0:E0) persisted at 490 —
/// every one of those 390 cycles is `dep_wait`, witnessed by the
/// recorded source.
#[test]
fn idt_chain_attributes_dep_wait_with_witness() {
    let src = tag(0, 0);
    let dep = tag(1, 0);
    let events = vec![
        ev(
            90,
            TraceEventKind::IdtRecord {
                source: src,
                dependent: dep,
            },
        ),
        // Source epoch: flushes promptly, persists at 490.
        ev(
            100,
            TraceEventKind::FlushRequested {
                tag: src,
                reason: FlushReason::Conflict,
            },
        ),
        ev(
            100,
            TraceEventKind::FlushEpoch {
                tag: src,
                reason: FlushReason::Conflict,
            },
        ),
        ev(490, TraceEventKind::PersistCmp { tag: src }),
        // Dependent epoch: requested at 100, released only at 490.
        ev(
            100,
            TraceEventKind::FlushRequested {
                tag: dep,
                reason: FlushReason::Barrier,
            },
        ),
        ev(
            490,
            TraceEventKind::FlushEpoch {
                tag: dep,
                reason: FlushReason::Barrier,
            },
        ),
        ev(520, TraceEventKind::PersistCmp { tag: dep }),
    ];
    let profile = analyze(&events);
    assert_eq!(profile.barriers.len(), 2);
    assert_eq!(profile.idt_records, 1);
    let b = profile.barriers.iter().find(|b| b.tag == dep).unwrap();
    assert_eq!(b.latency(), 420);
    assert_eq!(b.attribution.get(Component::DepWait), 390);
    assert_eq!(
        b.attribution.get(Component::Retire),
        30,
        "no bank detail in this fixture: post-flush time is retirement"
    );
    assert_eq!(b.attribution.total(), b.latency(), "conservation");
    assert_eq!(b.dep_sources, vec![src], "the IDT witness survives");
    // The source itself never waited.
    let s = profile.barriers.iter().find(|b| b.tag == src).unwrap();
    assert_eq!(s.attribution.get(Component::DepWait), 0);
}

/// Same-core queueing: E1's flush was requested at 120, but E0's flush
/// window [100, 490) was still in flight (the arbiter serializes one
/// core's epochs), so E1 queues for 370 cycles (`arb_queue`) and then
/// waits 10 more (`dep_wait`) before its own FlushEpoch at 500.
#[test]
fn same_core_serialization_is_arb_queue() {
    let e0 = tag(0, 0);
    let e1 = tag(0, 1);
    let events = vec![
        ev(
            100,
            TraceEventKind::FlushRequested {
                tag: e0,
                reason: FlushReason::Barrier,
            },
        ),
        ev(
            100,
            TraceEventKind::FlushEpoch {
                tag: e0,
                reason: FlushReason::Barrier,
            },
        ),
        ev(490, TraceEventKind::PersistCmp { tag: e0 }),
        ev(
            120,
            TraceEventKind::FlushRequested {
                tag: e1,
                reason: FlushReason::Barrier,
            },
        ),
        ev(
            500,
            TraceEventKind::FlushEpoch {
                tag: e1,
                reason: FlushReason::Barrier,
            },
        ),
        ev(530, TraceEventKind::PersistCmp { tag: e1 }),
    ];
    let profile = analyze(&events);
    let b = profile.barriers.iter().find(|b| b.tag == e1).unwrap();
    assert_eq!(b.latency(), 410);
    assert_eq!(b.attribution.get(Component::ArbQueue), 370);
    assert_eq!(b.attribution.get(Component::DepWait), 10);
    assert_eq!(b.attribution.get(Component::Retire), 30);
    assert_eq!(b.attribution.total(), b.latency(), "conservation");
}

/// Two banks, one straggler: B0 finishes early, B1 was gated on a late
/// L1 writeback and its line persists last. The critical path must run
/// through B1 — its gate, its line, its ack — and ignore B0 entirely.
#[test]
fn straggler_bank_owns_the_critical_path() {
    let t = tag(0, 0);
    let events = vec![
        ev(
            0,
            TraceEventKind::FlushRequested {
                tag: t,
                reason: FlushReason::Drain,
            },
        ),
        ev(
            0,
            TraceEventKind::FlushEpoch {
                tag: t,
                reason: FlushReason::Drain,
            },
        ),
        bank_start(t, 0, 0, (0, 0, 0, 0), 1),
        bank_start(t, 1, 20, (5, 20, 0, 0), 1),
        write(t, 0, 0, (5, 5, 365, 370)),
        write(t, 1, 20, (25, 30, 390, 395)),
        ev(
            375,
            TraceEventKind::BankAck {
                tag: t,
                bank: BankId::new(0),
            },
        ),
        ev(
            400,
            TraceEventKind::BankAck {
                tag: t,
                bank: BankId::new(1),
            },
        ),
        ev(410, TraceEventKind::PersistCmp { tag: t }),
    ];
    let profile = analyze(&events);
    let b = &profile.barriers[0];
    assert_eq!(b.latency(), 410);
    assert_eq!(b.straggler_bank, Some(BankId::new(1)));
    let expect = [
        (Component::L1Writeback, 20),
        (Component::FlushCmd, 0),
        (Component::NocToMc, 5),
        (Component::McQueue, 5),
        (Component::NvramWrite, 360),
        (Component::NocAck, 5),
        (Component::BankAck, 5),
        (Component::Retire, 10),
    ];
    for (c, n) in expect {
        assert_eq!(b.attribution.get(c), n, "{c}");
    }
    assert_eq!(b.attribution.total(), b.latency(), "conservation");
}

/// Straggler ties break to the smallest bank id, so the choice is
/// deterministic regardless of event order.
#[test]
fn straggler_tie_breaks_to_smallest_bank() {
    let t = tag(0, 0);
    let events = vec![
        ev(
            0,
            TraceEventKind::FlushEpoch {
                tag: t,
                reason: FlushReason::Drain,
            },
        ),
        ev(
            50,
            TraceEventKind::BankAck {
                tag: t,
                bank: BankId::new(3),
            },
        ),
        ev(
            50,
            TraceEventKind::BankAck {
                tag: t,
                bank: BankId::new(1),
            },
        ),
        ev(60, TraceEventKind::PersistCmp { tag: t }),
    ];
    let profile = analyze(&events);
    assert_eq!(profile.barriers[0].straggler_bank, Some(BankId::new(1)));
}

/// Epochs whose PersistCMP never arrived (truncated trace) are counted,
/// not attributed.
#[test]
fn truncated_trace_counts_incomplete_epochs() {
    let t = tag(0, 0);
    let events = vec![ev(
        0,
        TraceEventKind::FlushEpoch {
            tag: t,
            reason: FlushReason::Drain,
        },
    )];
    let profile = analyze(&events);
    assert!(profile.barriers.is_empty());
    assert_eq!(profile.incomplete, 1);
}

/// A missing `FlushRequested` (older trace, or it fell off a ring sink)
/// falls back to the flush start — attribution still conserves.
#[test]
fn missing_request_anchor_falls_back_to_flush_start() {
    let t = tag(0, 0);
    let events = vec![
        ev(
            200,
            TraceEventKind::FlushEpoch {
                tag: t,
                reason: FlushReason::Eviction,
            },
        ),
        ev(260, TraceEventKind::PersistCmp { tag: t }),
    ];
    let profile = analyze(&events);
    let b = &profile.barriers[0];
    assert_eq!(b.requested.as_u64(), 200);
    assert_eq!(b.latency(), 60);
    assert_eq!(b.attribution.total(), 60);
    assert_eq!(b.attribution.get(Component::Retire), 60);
}
