//! The conservation invariant on real traces: for **every** barrier of
//! every built-in micro-benchmark, under both the baseline (LB) and the
//! full (LB++) barrier, the attributed segments sum *exactly* to the
//! barrier's end-to-end persist latency — and that latency itself matches
//! an independent recomputation from the raw event stream.

use pbm_prof::analyze;
use pbm_sim::System;
use pbm_types::{BarrierKind, PersistencyKind, SystemConfig, TraceEvent, TraceEventKind};
use pbm_workloads::micro::{self, MicroParams};
use std::collections::BTreeMap;

fn traced_events(kind: BarrierKind, wl: &pbm_workloads::Workload) -> Vec<TraceEvent> {
    let mut cfg = SystemConfig::small_test();
    cfg.persistency = PersistencyKind::BufferedEpoch;
    cfg.barrier = kind;
    let mut sys = System::new(cfg, wl.programs.clone()).expect("valid config");
    wl.apply_preloads(&mut sys);
    sys.enable_tracing();
    sys.run();
    sys.take_trace_events()
}

#[test]
fn attribution_conserves_for_every_barrier_under_lb_and_lbpp() {
    let mut params = MicroParams::paper();
    params.threads = 4;
    params.ops_per_thread = 6;
    let mut checked = 0usize;
    for wl in micro::all(&params) {
        for kind in [BarrierKind::Lb, BarrierKind::LbPp] {
            let events = traced_events(kind, &wl);
            let profile = analyze(&events);
            assert!(
                !profile.barriers.is_empty(),
                "{kind}/{}: expected persisted epochs",
                wl.name
            );
            assert_eq!(
                profile.incomplete, 0,
                "{kind}/{}: a drained run leaves no dangling flushes",
                wl.name
            );
            // Independent anchors straight from the raw stream: first
            // FlushRequested per tag (FlushEpoch as fallback), first
            // PersistCmp per tag.
            let mut requested: BTreeMap<(u32, u64), u64> = BTreeMap::new();
            let mut persisted: BTreeMap<(u32, u64), u64> = BTreeMap::new();
            for ev in &events {
                match ev.kind {
                    TraceEventKind::FlushRequested { tag, .. }
                    | TraceEventKind::FlushEpoch { tag, .. } => {
                        requested
                            .entry((tag.core.as_u32(), tag.epoch.as_u64()))
                            .or_insert(ev.cycle.as_u64());
                    }
                    TraceEventKind::PersistCmp { tag } => {
                        persisted
                            .entry((tag.core.as_u32(), tag.epoch.as_u64()))
                            .or_insert(ev.cycle.as_u64());
                    }
                    _ => {}
                }
            }
            for b in &profile.barriers {
                let key = (b.tag.core.as_u32(), b.tag.epoch.as_u64());
                let want = persisted[&key] - requested[&key];
                assert_eq!(
                    b.latency(),
                    want,
                    "{kind}/{}: {} latency disagrees with the raw stream",
                    wl.name,
                    b.tag
                );
                assert_eq!(
                    b.attribution.total(),
                    b.latency(),
                    "{kind}/{}: {} attribution does not conserve",
                    wl.name,
                    b.tag
                );
                checked += 1;
            }
            // The profile's totals are the sum over barriers.
            let lat_sum: u64 = profile.barriers.iter().map(|b| b.latency()).sum();
            assert_eq!(profile.totals.total(), lat_sum, "{kind}/{}", wl.name);
        }
    }
    assert!(checked > 50, "only {checked} barriers checked — scale up");
}
