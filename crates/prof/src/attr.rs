//! Dependency-chain reconstruction and exact cycle attribution.

use pbm_types::{BankId, Cycle, EpochTag, FlushReason, TraceEvent, TraceEventKind};
use std::collections::BTreeMap;

/// One segment class of a barrier's critical path. Every cycle of a
/// barrier's end-to-end persist latency is attributed to exactly one
/// component; the order below is the causal order along the path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Component {
    /// Waiting for IDT source epochs (or an idle arbiter gap) before a
    /// flush could start — `wait` phase.
    DepWait,
    /// Queued behind the same core's earlier in-flight epoch flushes (the
    /// arbiter serializes one core's epochs) — `wait` phase.
    ArbQueue,
    /// FlushEpoch command delivery to the straggler bank — `gate` phase.
    FlushCmd,
    /// L1 writebacks of the epoch's lines still in flight to the
    /// straggler bank — `gate` phase.
    L1Writeback,
    /// Undo-log write-ahead not yet durable (BSP) — `gate` phase.
    UndoLog,
    /// Processor-state checkpoint not yet complete (BSP) — `gate` phase.
    Checkpoint,
    /// The critical line's writeback traversing the NoC to its memory
    /// controller — `persist` phase.
    NocToMc,
    /// The critical line queued in the controller behind buffered
    /// persists — `persist` phase.
    McQueue,
    /// The NVRAM device write itself — `persist` phase.
    NvramWrite,
    /// The PersistAck returning to the bank — `persist` phase.
    NocAck,
    /// The straggler bank's BankAck returning to the core — `complete`
    /// phase.
    BankAck,
    /// PersistCMP broadcast / arbiter retirement after the last BankAck —
    /// `complete` phase.
    Retire,
}

impl Component {
    /// Every component, in causal path order.
    pub const ALL: [Component; 12] = [
        Component::DepWait,
        Component::ArbQueue,
        Component::FlushCmd,
        Component::L1Writeback,
        Component::UndoLog,
        Component::Checkpoint,
        Component::NocToMc,
        Component::McQueue,
        Component::NvramWrite,
        Component::NocAck,
        Component::BankAck,
        Component::Retire,
    ];

    /// Stable snake_case name used in every export.
    pub const fn name(self) -> &'static str {
        match self {
            Component::DepWait => "dep_wait",
            Component::ArbQueue => "arb_queue",
            Component::FlushCmd => "flush_cmd",
            Component::L1Writeback => "l1_writeback",
            Component::UndoLog => "undo_log",
            Component::Checkpoint => "checkpoint",
            Component::NocToMc => "noc_to_mc",
            Component::McQueue => "mc_queue",
            Component::NvramWrite => "nvram_write",
            Component::NocAck => "noc_ack",
            Component::BankAck => "bank_ack",
            Component::Retire => "retire",
        }
    }

    /// The flame-stack phase frame grouping related components:
    /// `wait` → `gate` → `persist` → `complete`.
    pub const fn phase(self) -> &'static str {
        match self {
            Component::DepWait | Component::ArbQueue => "wait",
            Component::FlushCmd
            | Component::L1Writeback
            | Component::UndoLog
            | Component::Checkpoint => "gate",
            Component::NocToMc | Component::McQueue | Component::NvramWrite | Component::NocAck => {
                "persist"
            }
            Component::BankAck | Component::Retire => "complete",
        }
    }

    /// Parses the name produced by [`Component::name`].
    pub fn parse(s: &str) -> Option<Component> {
        Component::ALL.into_iter().find(|c| c.name() == s)
    }

    const fn index(self) -> usize {
        self as usize
    }
}

impl std::fmt::Display for Component {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Cycles attributed per [`Component`]. The invariant [`analyze`]
/// maintains: a barrier's attribution totals exactly its end-to-end
/// latency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Attribution {
    cycles: [u64; Component::ALL.len()],
}

impl Attribution {
    /// Cycles attributed to `c`.
    pub fn get(&self, c: Component) -> u64 {
        self.cycles[c.index()]
    }

    pub(crate) fn add(&mut self, c: Component, n: u64) {
        self.cycles[c.index()] += n;
    }

    /// Sum over all components.
    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// `(component, cycles)` pairs in causal path order (zeros included).
    pub fn iter(&self) -> impl Iterator<Item = (Component, u64)> + '_ {
        Component::ALL.into_iter().map(|c| (c, self.get(c)))
    }

    /// Adds another attribution into this one.
    pub fn merge(&mut self, other: &Attribution) {
        for (a, b) in self.cycles.iter_mut().zip(other.cycles.iter()) {
            *a += b;
        }
    }

    /// The component holding the most cycles (ties resolved to the
    /// earliest along the path); `None` if everything is zero.
    pub fn dominant(&self) -> Option<(Component, u64)> {
        let (c, n) = Component::ALL
            .into_iter()
            .map(|c| (c, self.get(c)))
            .max_by_key(|&(c, n)| (n, std::cmp::Reverse(c.index())))?;
        (n > 0).then_some((c, n))
    }
}

/// One barrier's (flushed epoch's) reconstructed critical path.
#[derive(Debug, Clone)]
pub struct BarrierProfile {
    /// The epoch.
    pub tag: EpochTag,
    /// Why it flushed (the reason on `FlushEpoch`, post conflict-upgrade).
    pub reason: FlushReason,
    /// The causal anchor: when the flush was first requested
    /// (`FlushRequested`; falls back to the flush start on old traces).
    pub requested: Cycle,
    /// When `FlushEpoch` was issued.
    pub flush_start: Cycle,
    /// When `PersistCMP` was broadcast.
    pub persisted: Cycle,
    /// The bank whose BankAck arrived last (the within-flush critical
    /// path runs through it); `None` if the trace carried no BankAcks.
    pub straggler_bank: Option<BankId>,
    /// Per-component attribution; totals exactly [`Self::latency`].
    pub attribution: Attribution,
    /// IDT source epochs recorded against this epoch — the witnesses
    /// behind its `dep_wait` cycles.
    pub dep_sources: Vec<EpochTag>,
}

impl BarrierProfile {
    /// End-to-end persist latency: request to PersistCMP.
    pub fn latency(&self) -> u64 {
        self.persisted.as_u64() - self.requested.as_u64()
    }
}

/// The profile of one trace: every completed barrier, attributed.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Completed barriers, sorted by `(core, epoch)`.
    pub barriers: Vec<BarrierProfile>,
    /// Sum of all barriers' attributions.
    pub totals: Attribution,
    /// Epochs that started flushing but never reached `PersistCMP`
    /// (truncated trace, e.g. a ring sink that dropped the tail).
    pub incomplete: u64,
    /// Deadlock-avoidance epoch splits observed (§3.3).
    pub deadlock_splits: u64,
    /// IDT dependences recorded instead of flushing online.
    pub idt_records: u64,
    /// IDT register overflows (fell back to online flushes).
    pub idt_overflows: u64,
}

impl Profile {
    /// Every barrier's end-to-end latency, ascending.
    pub fn sorted_latencies(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.barriers.iter().map(BarrierProfile::latency).collect();
        v.sort_unstable();
        v
    }

    /// The `top_k` slowest barriers, slowest first (ties broken by
    /// `(core, epoch)` ascending, so the selection is deterministic).
    pub fn slowest(&self, top_k: usize) -> Vec<&BarrierProfile> {
        let mut v: Vec<&BarrierProfile> = self.barriers.iter().collect();
        v.sort_by_key(|b| {
            (
                std::cmp::Reverse(b.latency()),
                b.tag.core.as_u32(),
                b.tag.epoch.as_u64(),
            )
        });
        v.truncate(top_k);
        v
    }
}

/// Raw milestones gathered for one epoch before attribution.
#[derive(Debug, Default)]
struct EpochRec {
    requested: Option<u64>,
    reason: Option<FlushReason>,
    flush_start: Option<u64>,
    persisted: Option<u64>,
    /// `(bank, ack arrival at core)`.
    bank_acks: Vec<(u32, u64)>,
    /// `(bank, start, cmd_at, wb_at, log_at, chk_at)`.
    bank_starts: Vec<(u32, u64, u64, u64, u64, u64)>,
    /// `(bank, mc_at, begin, durable, ack_at)`.
    writes: Vec<(u32, u64, u64, u64, u64)>,
    dep_sources: Vec<EpochTag>,
}

/// Reconstructs every completed barrier's critical path from a structured
/// event stream and attributes each of its latency cycles to one
/// [`Component`].
///
/// Tolerant of partial traces: epochs missing their `PersistCMP` are
/// counted in [`Profile::incomplete`], missing `FlushRequested` anchors
/// fall back to the flush start, and all segment boundaries are clamped
/// into the enclosing window — so the conservation invariant (attribution
/// total == end-to-end latency) holds for *any* input, well-formed or not.
pub fn analyze(events: &[TraceEvent]) -> Profile {
    let mut recs: BTreeMap<(u32, u64), EpochRec> = BTreeMap::new();
    let mut profile = Profile::default();
    let key = |tag: EpochTag| (tag.core.as_u32(), tag.epoch.as_u64());
    for ev in events {
        let cycle = ev.cycle.as_u64();
        match ev.kind {
            TraceEventKind::FlushRequested { tag, reason } => {
                let rec = recs.entry(key(tag)).or_default();
                rec.requested.get_or_insert(cycle);
                rec.reason.get_or_insert(reason);
            }
            TraceEventKind::FlushEpoch { tag, reason } => {
                let rec = recs.entry(key(tag)).or_default();
                rec.flush_start.get_or_insert(cycle);
                // FlushEpoch carries the final attribution (a conflict may
                // have upgraded the reason after the first request).
                rec.reason = Some(reason);
            }
            TraceEventKind::BankFlushStart {
                tag,
                bank,
                cmd_at,
                wb_at,
                log_at,
                chk_at,
                ..
            } => {
                recs.entry(key(tag)).or_default().bank_starts.push((
                    bank.as_u32(),
                    cycle,
                    cmd_at.as_u64(),
                    wb_at.as_u64(),
                    log_at.as_u64(),
                    chk_at.as_u64(),
                ));
            }
            TraceEventKind::PersistWrite {
                tag,
                bank,
                mc_at,
                begin,
                durable,
                ack_at,
                ..
            } => {
                recs.entry(key(tag)).or_default().writes.push((
                    bank.as_u32(),
                    mc_at.as_u64(),
                    begin.as_u64(),
                    durable.as_u64(),
                    ack_at.as_u64(),
                ));
            }
            TraceEventKind::BankAck { tag, bank } => {
                recs.entry(key(tag))
                    .or_default()
                    .bank_acks
                    .push((bank.as_u32(), cycle));
            }
            TraceEventKind::PersistCmp { tag } => {
                recs.entry(key(tag))
                    .or_default()
                    .persisted
                    .get_or_insert(cycle);
            }
            TraceEventKind::IdtRecord { source, dependent } => {
                recs.entry(key(dependent))
                    .or_default()
                    .dep_sources
                    .push(source);
                profile.idt_records += 1;
            }
            TraceEventKind::IdtOverflow { .. } => profile.idt_overflows += 1,
            TraceEventKind::DeadlockSplit { .. } => profile.deadlock_splits += 1,
            _ => {}
        }
    }

    // Attribute per core, walking epochs in order so each barrier can see
    // the flush windows of the same core's earlier epochs (the arbiter
    // serializes them: queueing behind those windows is `arb_queue`).
    let mut prior_core = u32::MAX;
    let mut prior: Vec<(u64, u64)> = Vec::new(); // (flush_start, persisted)
    for (&(core, epoch), rec) in &recs {
        if core != prior_core {
            prior_core = core;
            prior.clear();
        }
        let (Some(fs), Some(cmp)) = (rec.flush_start, rec.persisted) else {
            if rec.flush_start.is_some() || rec.requested.is_some() {
                profile.incomplete += 1;
            }
            continue;
        };
        let requested = rec.requested.unwrap_or(fs).min(fs);
        let mut attr = Attribution::default();

        // [requested, fs): dependence waits vs queueing behind the core's
        // earlier epochs. While an earlier epoch's flush is in flight we
        // are queued (arb_queue); gaps where nothing of ours is flushing
        // are dependence waits (IDT sources on other cores, or an earlier
        // epoch's own gates).
        let mut t = requested;
        for &(pfs, pcmp) in &prior {
            let (pfs, pcmp) = (pfs.min(fs), pcmp.min(fs));
            if pcmp <= t {
                continue;
            }
            if pfs > t {
                attr.add(Component::DepWait, pfs - t);
                t = pfs;
            }
            attr.add(Component::ArbQueue, pcmp - t);
            t = pcmp;
        }
        if fs > t {
            attr.add(Component::DepWait, fs - t);
        }

        // [fs, cmp): the straggler bank's window. Its BankAck is the one
        // PersistCMP waited for, so the critical path runs through it.
        let straggler = rec
            .bank_acks
            .iter()
            .copied()
            .max_by_key(|&(bank, at)| (at, std::cmp::Reverse(bank)));
        match straggler {
            None => {
                // No handshake detail in the trace — everything after the
                // flush started is retirement.
                attr.add(Component::Retire, cmp - fs);
            }
            Some((bank, ack)) => {
                let t_ba = ack.clamp(fs, cmp);
                let gate = rec.bank_starts.iter().find(|b| b.0 == bank);
                let start = gate.map_or(fs, |g| g.1).clamp(fs, t_ba);
                if start > fs {
                    // The whole gate delay is attributed to the latest of
                    // the four gate inputs (the one that actually held the
                    // bank); ties resolve to the earliest candidate.
                    let comp = gate.map_or(Component::FlushCmd, |&(_, _, cmd, wb, log, chk)| {
                        let gates = [
                            (Component::FlushCmd, cmd),
                            (Component::L1Writeback, wb),
                            (Component::UndoLog, log),
                            (Component::Checkpoint, chk),
                        ];
                        let peak = gates.iter().map(|&(_, v)| v).max().unwrap_or(0);
                        gates
                            .iter()
                            .find(|&&(_, v)| v == peak)
                            .map(|&(c, _)| c)
                            .unwrap_or(Component::FlushCmd)
                    });
                    attr.add(comp, start - fs);
                }
                // The bank's last PersistAck bounds its line phase; the
                // slowest line's milestones decompose it.
                let bank_writes: Vec<_> = rec.writes.iter().filter(|w| w.0 == bank).collect();
                let done = bank_writes
                    .iter()
                    .map(|w| w.4)
                    .max()
                    .map_or(start, |ack| ack.clamp(start, t_ba));
                if let Some(w) = bank_writes.iter().rev().max_by_key(|w| w.4) {
                    let (_, mc_at, begin, durable, _) = **w;
                    let a = mc_at.clamp(start, done);
                    let b = begin.clamp(a, done);
                    let c = durable.clamp(b, done);
                    attr.add(Component::NocToMc, a - start);
                    attr.add(Component::McQueue, b - a);
                    attr.add(Component::NvramWrite, c - b);
                    attr.add(Component::NocAck, done - c);
                }
                attr.add(Component::BankAck, t_ba - done);
                attr.add(Component::Retire, cmp - t_ba);
            }
        }

        debug_assert_eq!(attr.total(), cmp - requested, "conservation");
        let mut dep_sources = rec.dep_sources.clone();
        dep_sources.sort_by_key(|s| (s.core.as_u32(), s.epoch.as_u64()));
        dep_sources.dedup();
        profile.totals.merge(&attr);
        profile.barriers.push(BarrierProfile {
            tag: EpochTag::new(pbm_types::CoreId::new(core), pbm_types::EpochId::new(epoch)),
            reason: rec.reason.unwrap_or(FlushReason::Drain),
            requested: Cycle::new(requested),
            flush_start: Cycle::new(fs),
            persisted: Cycle::new(cmp),
            straggler_bank: straggler.map(|(b, _)| BankId::new(b)),
            attribution: attr,
            dep_sources,
        });
        prior.push((fs, cmp));
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_names_round_trip_and_are_distinct() {
        let mut names: Vec<_> = Component::ALL.iter().map(|c| c.name()).collect();
        for c in Component::ALL {
            assert_eq!(Component::parse(c.name()), Some(c));
        }
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Component::ALL.len());
        assert_eq!(Component::parse("bogus"), None);
    }

    #[test]
    fn every_component_has_a_phase() {
        for c in Component::ALL {
            assert!(matches!(
                c.phase(),
                "wait" | "gate" | "persist" | "complete"
            ));
        }
    }

    #[test]
    fn attribution_bookkeeping() {
        let mut a = Attribution::default();
        a.add(Component::DepWait, 5);
        a.add(Component::NvramWrite, 360);
        assert_eq!(a.total(), 365);
        assert_eq!(a.get(Component::NvramWrite), 360);
        assert_eq!(a.dominant(), Some((Component::NvramWrite, 360)));
        let mut b = Attribution::default();
        b.add(Component::NvramWrite, 40);
        a.merge(&b);
        assert_eq!(a.get(Component::NvramWrite), 400);
        assert_eq!(Attribution::default().dominant(), None);
    }

    #[test]
    fn dominant_tie_breaks_to_earliest_on_path() {
        let mut a = Attribution::default();
        a.add(Component::McQueue, 7);
        a.add(Component::NocToMc, 7);
        assert_eq!(a.dominant(), Some((Component::NocToMc, 7)));
    }

    #[test]
    fn empty_trace_profiles_to_nothing() {
        let p = analyze(&[]);
        assert!(p.barriers.is_empty());
        assert_eq!(p.totals.total(), 0);
        assert_eq!(p.incomplete, 0);
    }
}
