//! Folded-stack flame-graph export.
//!
//! The folded-stack format is one line per unique stack:
//! `frame;frame;frame count\n`, exactly what `inferno-flamegraph` /
//! `flamegraph.pl` consume. Our "stacks" are the critical-path hierarchy
//! `prefix;phase;component`, so the rendered flame graph shows, per
//! config×workload, which phase of the persist handshake the cycles went
//! to, subdivided by component.

use crate::attr::{Attribution, Profile};
use std::fmt::Write;

/// Renders an attribution as folded-stack lines rooted at `prefix`
/// (typically `"config;workload"`). One line per nonzero component, in
/// causal path order; deterministic for identical inputs.
pub fn folded_stacks(prefix: &str, attribution: &Attribution) -> String {
    let mut out = String::new();
    for (component, cycles) in attribution.iter() {
        if cycles == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "{prefix};{};{} {cycles}",
            component.phase(),
            component.name()
        );
    }
    out
}

/// Folded stacks for a whole profile's totals (every barrier merged).
pub fn profile_stacks(prefix: &str, profile: &Profile) -> String {
    folded_stacks(prefix, &profile.totals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Component;

    #[test]
    fn nonzero_components_only_in_path_order() {
        let mut a = Attribution::default();
        a.add(Component::NvramWrite, 360);
        a.add(Component::DepWait, 40);
        a.add(Component::Retire, 7);
        let text = folded_stacks("lb++;micro48", &a);
        assert_eq!(
            text,
            "lb++;micro48;wait;dep_wait 40\n\
             lb++;micro48;persist;nvram_write 360\n\
             lb++;micro48;complete;retire 7\n"
        );
    }

    #[test]
    fn empty_attribution_renders_nothing() {
        assert_eq!(folded_stacks("x", &Attribution::default()), "");
    }
}
