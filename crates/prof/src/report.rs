//! JSON report documents: the per-trace `pbm-prof-report/v1` and the
//! per-grid `pbm-bench-prof/v1` (`BENCH_prof.json`) summary.
//!
//! Everything is built on [`pbm_obs::json::JsonValue`]: insertion-ordered
//! objects, unsigned integers only (the mean is exported in *milli-cycles*
//! to stay integral), so identical inputs serialize byte-identically.

use crate::attr::{Attribution, BarrierProfile, Profile};
use pbm_obs::json::JsonValue;

/// Schema tag of the per-trace report document.
pub const REPORT_SCHEMA: &str = "pbm-prof-report/v1";

/// Schema tag of the `BENCH_prof.json` grid summary.
pub const BENCH_SCHEMA: &str = "pbm-bench-prof/v1";

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Nearest-rank percentile of an ascending-sorted slice: the smallest
/// element with at least `p`% of the samples at or below it. Exact integer
/// arithmetic — no interpolation. Returns 0 for an empty slice.
pub fn percentile(sorted: &[u64], p: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * sorted.len() as u64).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Latency distribution summary: `{count, sum, mean_milli, p50, p99, max}`.
/// `mean_milli` is the mean in thousandths of a cycle (integer), keeping
/// the document float-free while preserving three decimal places.
pub fn latency_summary_json(sorted: &[u64]) -> JsonValue {
    let count = sorted.len() as u64;
    let sum: u64 = sorted.iter().sum();
    obj(vec![
        ("count", JsonValue::Num(count)),
        ("sum", JsonValue::Num(sum)),
        (
            "mean_milli",
            JsonValue::Num((sum * 1000).checked_div(count).unwrap_or(0)),
        ),
        ("p50", JsonValue::Num(percentile(sorted, 50))),
        ("p99", JsonValue::Num(percentile(sorted, 99))),
        ("max", JsonValue::Num(sorted.last().copied().unwrap_or(0))),
    ])
}

/// An attribution as an object with **every** component present (zeros
/// included), in causal path order — a stable shape for diffing.
pub fn attribution_json(attribution: &Attribution) -> JsonValue {
    JsonValue::Object(
        attribution
            .iter()
            .map(|(c, n)| (c.name().to_string(), JsonValue::Num(n)))
            .collect(),
    )
}

fn barrier_json(b: &BarrierProfile) -> JsonValue {
    obj(vec![
        ("core", JsonValue::Num(b.tag.core.as_u32() as u64)),
        ("epoch", JsonValue::Num(b.tag.epoch.as_u64())),
        ("reason", JsonValue::Str(b.reason.name().to_string())),
        ("requested", JsonValue::Num(b.requested.as_u64())),
        ("flush_start", JsonValue::Num(b.flush_start.as_u64())),
        ("persisted", JsonValue::Num(b.persisted.as_u64())),
        ("latency", JsonValue::Num(b.latency())),
        (
            "straggler_bank",
            match b.straggler_bank {
                Some(bank) => JsonValue::Num(bank.as_u32() as u64),
                None => JsonValue::Null,
            },
        ),
        (
            "dep_sources",
            JsonValue::Array(
                b.dep_sources
                    .iter()
                    .map(|t| JsonValue::Str(t.to_string()))
                    .collect(),
            ),
        ),
        ("attribution", attribution_json(&b.attribution)),
    ])
}

/// The `pbm-prof-report/v1` document for one analyzed trace: aggregate
/// counters, latency distribution, merged attribution, and the `top_k`
/// slowest barriers with their full critical-path witnesses.
pub fn report_json(profile: &Profile, top_k: usize) -> JsonValue {
    obj(vec![
        ("schema", JsonValue::Str(REPORT_SCHEMA.to_string())),
        ("barriers", JsonValue::Num(profile.barriers.len() as u64)),
        ("incomplete", JsonValue::Num(profile.incomplete)),
        ("deadlock_splits", JsonValue::Num(profile.deadlock_splits)),
        ("idt_records", JsonValue::Num(profile.idt_records)),
        ("idt_overflows", JsonValue::Num(profile.idt_overflows)),
        ("latency", latency_summary_json(&profile.sorted_latencies())),
        ("attribution", attribution_json(&profile.totals)),
        (
            "slowest",
            JsonValue::Array(
                profile
                    .slowest(top_k)
                    .into_iter()
                    .map(barrier_json)
                    .collect(),
            ),
        ),
    ])
}

/// One `BENCH_prof.json` grid cell: the profile of one config×workload
/// run, summarized.
pub fn cell_json(config: &str, workload: &str, profile: &Profile) -> JsonValue {
    obj(vec![
        ("config", JsonValue::Str(config.to_string())),
        ("workload", JsonValue::Str(workload.to_string())),
        ("barriers", JsonValue::Num(profile.barriers.len() as u64)),
        ("incomplete", JsonValue::Num(profile.incomplete)),
        ("deadlock_splits", JsonValue::Num(profile.deadlock_splits)),
        ("idt_records", JsonValue::Num(profile.idt_records)),
        ("idt_overflows", JsonValue::Num(profile.idt_overflows)),
        ("latency", latency_summary_json(&profile.sorted_latencies())),
        ("attribution", attribution_json(&profile.totals)),
    ])
}

/// The `pbm-bench-prof/v1` document: all grid cells, in grid order.
pub fn bench_doc(cells: Vec<JsonValue>, quick: bool) -> JsonValue {
    obj(vec![
        ("schema", JsonValue::Str(BENCH_SCHEMA.to_string())),
        ("quick", JsonValue::Bool(quick)),
        ("cells", JsonValue::Array(cells)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Component;

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&v, 100), 100);
        assert_eq!(percentile(&[7], 50), 7);
        assert_eq!(percentile(&[7], 99), 7);
        assert_eq!(percentile(&[10, 20], 50), 10);
        assert_eq!(percentile(&[10, 20], 51), 20);
        assert_eq!(percentile(&[], 99), 0);
        assert_eq!(percentile(&[5, 6], 0), 5, "p0 clamps to the minimum");
    }

    #[test]
    fn latency_summary_shape() {
        let s = latency_summary_json(&[100, 200, 300]);
        assert_eq!(s.get("count").unwrap().as_u64(), Some(3));
        assert_eq!(s.get("sum").unwrap().as_u64(), Some(600));
        assert_eq!(s.get("mean_milli").unwrap().as_u64(), Some(200_000));
        assert_eq!(s.get("p50").unwrap().as_u64(), Some(200));
        assert_eq!(s.get("p99").unwrap().as_u64(), Some(300));
        assert_eq!(s.get("max").unwrap().as_u64(), Some(300));
        let empty = latency_summary_json(&[]);
        assert_eq!(empty.get("mean_milli").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn attribution_json_has_stable_full_shape() {
        let j = attribution_json(&Attribution::default());
        let JsonValue::Object(fields) = &j else {
            panic!("not an object")
        };
        assert_eq!(fields.len(), Component::ALL.len(), "zeros included");
        assert_eq!(fields[0].0, "dep_wait");
        assert_eq!(fields.last().unwrap().0, "retire");
    }

    #[test]
    fn empty_profile_report_is_well_formed() {
        let doc = report_json(&Profile::default(), 5);
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(REPORT_SCHEMA));
        assert_eq!(doc.get("barriers").unwrap().as_u64(), Some(0));
        assert!(doc.get("slowest").unwrap().as_array().unwrap().is_empty());
        let text = doc.to_json();
        assert_eq!(pbm_obs::json::parse(&text).unwrap(), doc, "round-trips");
    }

    #[test]
    fn bench_doc_shape() {
        let cell = cell_json("lb", "micro48", &Profile::default());
        assert_eq!(cell.get("config").unwrap().as_str(), Some("lb"));
        let doc = bench_doc(vec![cell], true);
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(BENCH_SCHEMA));
        assert_eq!(doc.get("quick"), Some(&JsonValue::Bool(true)));
        assert_eq!(doc.get("cells").unwrap().as_array().unwrap().len(), 1);
    }
}
