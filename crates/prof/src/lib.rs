//! Causal critical-path profiler for persist-barrier traces.
//!
//! pbm-obs records *what happened*; this crate answers *why a persist
//! barrier took N cycles*. [`analyze`] consumes a structured event stream
//! and reconstructs, per flushed epoch, the dependency chain the paper's
//! Figure 8 handshake implies —
//!
//! ```text
//! FlushRequested ─▶ (IDT dependence waits, queueing behind the core's
//!                    earlier epochs) ─▶ FlushEpoch ─▶ per-bank gates
//! (command delivery | L1 writebacks | undo log | checkpoint) ─▶ line
//! writes (NoC ▶ MC queue ▶ NVRAM cell write ▶ PersistAck) ─▶ BankAck ─▶
//! PersistCMP
//! ```
//!
//! — walks the *straggler* path through it (the slowest bank, and that
//! bank's slowest line), and attributes **every cycle of end-to-end
//! persist latency to exactly one [`Component`]**. The attribution is
//! conservative by construction: for each barrier the per-component
//! cycles sum to `PersistCMP − FlushRequested` exactly, which is what
//! lets per-component totals be compared across barrier designs (LB vs
//! LB++) without double counting.
//!
//! Exports:
//!
//! * [`flame::folded_stacks`] — inferno-compatible folded-stack text
//!   (`phase;component cycles` lines) for flame graphs;
//! * [`report::report_json`] — the `pbm-prof-report/v1` document: totals,
//!   latency distribution, and the top-K slowest barriers with their
//!   critical-path witnesses;
//! * [`report::cell_json`] / [`report::bench_doc`] — the `pbm-bench-prof/v1`
//!   summary (`BENCH_prof.json`) the `prof` binary emits per fig11 grid
//!   cell, integer-only and byte-deterministic;
//! * [`regress`] — diffs `BENCH_prof.json` / `BENCH_runner.json` documents
//!   against committed baselines with per-metric tolerances (the CI
//!   perf-regression gate).
//!
//! Everything is deterministic: all arithmetic is integral, all iteration
//! orders are sorted, and no wall-clock value is ever consulted.

#![warn(missing_docs, missing_debug_implementations)]

mod attr;
pub mod flame;
pub mod regress;
pub mod report;

pub use attr::{analyze, Attribution, BarrierProfile, Component, Profile};
