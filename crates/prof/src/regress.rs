//! Perf-regression diffing: compare freshly produced `BENCH_*.json`
//! documents against committed baselines.
//!
//! Two comparison policies, matching what each document measures:
//!
//! * [`compare_prof`] — `BENCH_prof.json` holds **simulated-cycle**
//!   metrics, which are machine-independent and deterministic, so every
//!   divergence beyond the (default **zero**) tolerance is a hard
//!   [`Severity::Fail`] — in *either* direction. An improvement fails too:
//!   golden-file style, so baselines are consciously updated rather than
//!   silently drifting.
//! * [`compare_runner`] — `BENCH_runner.json` holds **wall-clock**
//!   timings, which depend on the machine, so timing drift and missing
//!   runs are [`Severity::Warn`]; only the deterministic cell counts can
//!   hard-fail.
//!
//! The CI gate (`regress` binary in `pbm-bench`) renders the findings as a
//! table, optionally emits a JSON verdict, and exits nonzero iff any
//! finding is a `Fail`.

use pbm_obs::json::JsonValue;
use std::fmt;

/// Schema tag of the JSON verdict document.
pub const VERDICT_SCHEMA: &str = "pbm-regress/v1";

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory (machine-dependent metric drifted); never gates CI.
    Warn,
    /// Deterministic metric diverged from the baseline; gates CI.
    Fail,
}

impl Severity {
    /// Stable upper-case name for tables and the verdict document.
    pub const fn name(self) -> &'static str {
        match self {
            Severity::Warn => "WARN",
            Severity::Fail => "FAIL",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One divergence between baseline and current.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Whether it gates CI.
    pub severity: Severity,
    /// Dotted path of the diverging metric (e.g.
    /// `cells[lb/micro48].latency.p99`).
    pub metric: String,
    /// Human-readable explanation with both values.
    pub detail: String,
}

/// The outcome of diffing one document pair.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Which document was compared (e.g. `BENCH_prof.json`).
    pub name: String,
    /// Every divergence found, in document order.
    pub findings: Vec<Finding>,
}

impl Comparison {
    fn new(name: &str) -> Self {
        Comparison {
            name: name.to_string(),
            findings: Vec::new(),
        }
    }

    fn push(&mut self, severity: Severity, metric: impl Into<String>, detail: impl Into<String>) {
        self.findings.push(Finding {
            severity,
            metric: metric.into(),
            detail: detail.into(),
        });
    }

    /// Number of gating findings.
    pub fn failures(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Fail)
            .count()
    }

    /// Number of advisory findings.
    pub fn warnings(&self) -> usize {
        self.findings.len() - self.failures()
    }

    /// True if nothing gates (warnings allowed).
    pub fn pass(&self) -> bool {
        self.failures() == 0
    }
}

/// True if `current` is outside `tol_pct` percent (relative) of
/// `baseline`, in either direction. A zero baseline tolerates only a zero
/// current. Exact integer arithmetic (no float rounding at the gate).
pub fn out_of_tolerance(baseline: u64, current: u64, tol_pct: u64) -> bool {
    let diff = baseline.abs_diff(current) as u128;
    diff * 100 > (tol_pct as u128) * (baseline as u128)
}

/// Structural diff of two integer-JSON trees: every leaf divergence (or
/// shape mismatch) becomes a finding at `severity`, numeric leaves judged
/// by [`out_of_tolerance`] with `tol_pct`.
fn diff_tree(
    out: &mut Comparison,
    severity: Severity,
    path: &str,
    baseline: &JsonValue,
    current: &JsonValue,
    tol_pct: u64,
) {
    match (baseline, current) {
        (JsonValue::Num(b), JsonValue::Num(c)) => {
            if out_of_tolerance(*b, *c, tol_pct) {
                out.push(
                    severity,
                    path,
                    format!("baseline {b}, current {c} (tolerance {tol_pct}%)"),
                );
            }
        }
        (JsonValue::Str(b), JsonValue::Str(c)) => {
            if b != c {
                out.push(severity, path, format!("baseline {b:?}, current {c:?}"));
            }
        }
        (JsonValue::Bool(b), JsonValue::Bool(c)) => {
            if b != c {
                out.push(severity, path, format!("baseline {b}, current {c}"));
            }
        }
        (JsonValue::Null, JsonValue::Null) => {}
        (JsonValue::Array(b), JsonValue::Array(c)) => {
            if b.len() != c.len() {
                out.push(
                    severity,
                    path,
                    format!(
                        "array length changed: baseline {}, current {}",
                        b.len(),
                        c.len()
                    ),
                );
                return;
            }
            for (i, (bv, cv)) in b.iter().zip(c).enumerate() {
                diff_tree(out, severity, &format!("{path}[{i}]"), bv, cv, tol_pct);
            }
        }
        (JsonValue::Object(b), JsonValue::Object(c)) => {
            for (k, bv) in b {
                match current.get(k) {
                    Some(cv) => diff_tree(out, severity, &format!("{path}.{k}"), bv, cv, tol_pct),
                    None => out.push(severity, format!("{path}.{k}"), "missing from current"),
                }
            }
            for (k, _) in c {
                if baseline.get(k).is_none() {
                    out.push(severity, format!("{path}.{k}"), "not in baseline");
                }
            }
        }
        _ => out.push(severity, path, "value type changed"),
    }
}

fn cell_key(cell: &JsonValue) -> (String, String) {
    let s = |k: &str| {
        cell.get(k)
            .and_then(JsonValue::as_str)
            .unwrap_or("?")
            .to_string()
    };
    (s("config"), s("workload"))
}

/// Diffs a current `pbm-bench-prof/v1` document against its baseline.
/// All metrics are simulated cycles — deterministic — so every divergence
/// beyond `tol_cycles_pct` (default policy: 0) is a [`Severity::Fail`].
pub fn compare_prof(baseline: &JsonValue, current: &JsonValue, tol_cycles_pct: u64) -> Comparison {
    let mut out = Comparison::new("BENCH_prof.json");
    diff_tree(
        &mut out,
        Severity::Fail,
        "schema",
        baseline.get("schema").unwrap_or(&JsonValue::Null),
        current.get("schema").unwrap_or(&JsonValue::Null),
        0,
    );
    diff_tree(
        &mut out,
        Severity::Fail,
        "quick",
        baseline.get("quick").unwrap_or(&JsonValue::Null),
        current.get("quick").unwrap_or(&JsonValue::Null),
        0,
    );
    let empty: [JsonValue; 0] = [];
    let bcells = baseline
        .get("cells")
        .and_then(JsonValue::as_array)
        .unwrap_or(&empty);
    let ccells = current
        .get("cells")
        .and_then(JsonValue::as_array)
        .unwrap_or(&empty);
    for bcell in bcells {
        let (cfg, wl) = cell_key(bcell);
        let path = format!("cells[{cfg}/{wl}]");
        match ccells
            .iter()
            .find(|c| cell_key(c) == (cfg.clone(), wl.clone()))
        {
            Some(ccell) => diff_tree(
                &mut out,
                Severity::Fail,
                &path,
                bcell,
                ccell,
                tol_cycles_pct,
            ),
            None => out.push(Severity::Fail, path, "cell missing from current run"),
        }
    }
    for ccell in ccells {
        let (cfg, wl) = cell_key(ccell);
        if !bcells
            .iter()
            .any(|b| cell_key(b) == (cfg.clone(), wl.clone()))
        {
            out.push(
                Severity::Fail,
                format!("cells[{cfg}/{wl}]"),
                "cell not in baseline (update results/baselines/)",
            );
        }
    }
    out
}

fn run_key(run: &JsonValue) -> (String, u64, bool) {
    (
        run.get("binary")
            .and_then(JsonValue::as_str)
            .unwrap_or("?")
            .to_string(),
        run.get("jobs").and_then(JsonValue::as_u64).unwrap_or(0),
        run.get("quick") == Some(&JsonValue::Bool(true)),
    )
}

/// Diffs a current `pbm-bench-runner/v1` document against its baseline.
/// Runs are matched by `(binary, jobs, quick)`. Wall-clock drift beyond
/// `tol_wall_pct` and missing runs are advisory ([`Severity::Warn`] —
/// wall-clock is machine-dependent); only a changed deterministic cell
/// count hard-fails.
pub fn compare_runner(baseline: &JsonValue, current: &JsonValue, tol_wall_pct: u64) -> Comparison {
    let mut out = Comparison::new("BENCH_runner.json");
    diff_tree(
        &mut out,
        Severity::Fail,
        "schema",
        baseline.get("schema").unwrap_or(&JsonValue::Null),
        current.get("schema").unwrap_or(&JsonValue::Null),
        0,
    );
    let empty: [JsonValue; 0] = [];
    let bruns = baseline
        .get("runs")
        .and_then(JsonValue::as_array)
        .unwrap_or(&empty);
    let cruns = current
        .get("runs")
        .and_then(JsonValue::as_array)
        .unwrap_or(&empty);
    for brun in bruns {
        let (bin, jobs, quick) = run_key(brun);
        let path = format!("runs[{bin} jobs={jobs} quick={quick}]");
        let Some(crun) = cruns
            .iter()
            .find(|c| run_key(c) == (bin.clone(), jobs, quick))
        else {
            out.push(Severity::Warn, path, "run missing from current document");
            continue;
        };
        let get = |doc: &JsonValue, k: &str| doc.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
        let (bc, cc) = (get(brun, "cells"), get(crun, "cells"));
        if bc != cc {
            out.push(
                Severity::Fail,
                format!("{path}.cells"),
                format!("baseline {bc}, current {cc}"),
            );
        }
        let (bw, cw) = (get(brun, "wall_ms"), get(crun, "wall_ms"));
        if out_of_tolerance(bw, cw, tol_wall_pct) {
            out.push(
                Severity::Warn,
                format!("{path}.wall_ms"),
                format!("baseline {bw} ms, current {cw} ms (tolerance {tol_wall_pct}%)"),
            );
        }
    }
    out
}

/// Renders comparisons as a human-readable table (one line per finding,
/// `ok` lines for clean documents).
pub fn render_table(comparisons: &[Comparison]) -> String {
    let mut out = String::new();
    for c in comparisons {
        if c.findings.is_empty() {
            out.push_str(&format!("ok    {}: matches baseline\n", c.name));
            continue;
        }
        for f in &c.findings {
            out.push_str(&format!(
                "{:<5} {}: {} — {}\n",
                f.severity.name(),
                c.name,
                f.metric,
                f.detail
            ));
        }
    }
    let failures: usize = comparisons.iter().map(Comparison::failures).sum();
    let warnings: usize = comparisons.iter().map(Comparison::warnings).sum();
    out.push_str(&format!(
        "# regress: {failures} failure(s), {warnings} warning(s)\n"
    ));
    out
}

/// The machine-readable verdict (`pbm-regress/v1`).
pub fn verdict_json(comparisons: &[Comparison]) -> JsonValue {
    let pass = comparisons.iter().all(Comparison::pass);
    JsonValue::Object(vec![
        ("schema".into(), JsonValue::Str(VERDICT_SCHEMA.into())),
        ("pass".into(), JsonValue::Bool(pass)),
        (
            "comparisons".into(),
            JsonValue::Array(
                comparisons
                    .iter()
                    .map(|c| {
                        JsonValue::Object(vec![
                            ("name".into(), JsonValue::Str(c.name.clone())),
                            (
                                "findings".into(),
                                JsonValue::Array(
                                    c.findings
                                        .iter()
                                        .map(|f| {
                                            JsonValue::Object(vec![
                                                (
                                                    "severity".into(),
                                                    JsonValue::Str(f.severity.name().into()),
                                                ),
                                                ("metric".into(), JsonValue::Str(f.metric.clone())),
                                                ("detail".into(), JsonValue::Str(f.detail.clone())),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbm_obs::json::parse;

    fn prof_doc(p99: u64, quick: bool) -> JsonValue {
        parse(&format!(
            r#"{{"schema":"pbm-bench-prof/v1","quick":{quick},
                "cells":[{{"config":"lb","workload":"micro48",
                           "barriers":10,
                           "latency":{{"count":10,"p99":{p99}}},
                           "attribution":{{"nvram_write":3600}}}}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn tolerance_is_relative_and_two_sided() {
        assert!(!out_of_tolerance(100, 100, 0));
        assert!(out_of_tolerance(100, 101, 0));
        assert!(out_of_tolerance(100, 99, 0), "improvements fail too");
        assert!(!out_of_tolerance(100, 105, 5));
        assert!(!out_of_tolerance(100, 95, 5));
        assert!(out_of_tolerance(100, 106, 5));
        assert!(
            out_of_tolerance(0, 1, 50),
            "zero baseline tolerates only zero"
        );
        assert!(!out_of_tolerance(0, 0, 0));
        assert!(
            !out_of_tolerance(u64::MAX, u64::MAX / 2 + 1, 50),
            "no overflow at the extremes"
        );
    }

    #[test]
    fn identical_prof_docs_pass() {
        let c = compare_prof(&prof_doc(500, true), &prof_doc(500, true), 0);
        assert!(c.pass(), "{:?}", c.findings);
        assert!(c.findings.is_empty());
    }

    #[test]
    fn cycle_drift_fails_both_directions() {
        let worse = compare_prof(&prof_doc(500, true), &prof_doc(600, true), 0);
        assert_eq!(worse.failures(), 1);
        assert!(worse.findings[0].metric.contains("latency.p99"));
        let better = compare_prof(&prof_doc(500, true), &prof_doc(400, true), 0);
        assert_eq!(better.failures(), 1, "golden-file: improvements gate too");
        let tolerated = compare_prof(&prof_doc(500, true), &prof_doc(510, true), 5);
        assert!(tolerated.pass());
    }

    #[test]
    fn quick_mode_mismatch_fails() {
        let c = compare_prof(&prof_doc(500, true), &prof_doc(500, false), 0);
        assert!(!c.pass());
        assert!(c.findings.iter().any(|f| f.metric == "quick"));
    }

    #[test]
    fn missing_and_extra_cells_fail() {
        let base = prof_doc(500, true);
        let none = parse(r#"{"schema":"pbm-bench-prof/v1","quick":true,"cells":[]}"#).unwrap();
        let missing = compare_prof(&base, &none, 0);
        assert!(missing
            .findings
            .iter()
            .any(|f| f.detail.contains("missing from current")));
        let extra = compare_prof(&none, &base, 0);
        assert!(extra
            .findings
            .iter()
            .any(|f| f.detail.contains("not in baseline")));
    }

    fn runner_doc(wall: u64, cells: u64) -> JsonValue {
        parse(&format!(
            r#"{{"schema":"pbm-bench-runner/v1",
                "runs":[{{"binary":"fig11","jobs":2,"cells":{cells},
                          "quick":true,"wall_ms":{wall}}}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn runner_wall_clock_only_warns() {
        let c = compare_runner(&runner_doc(1000, 20), &runner_doc(5000, 20), 50);
        assert!(c.pass(), "wall-clock drift never gates");
        assert_eq!(c.warnings(), 1);
        let within = compare_runner(&runner_doc(1000, 20), &runner_doc(1400, 20), 50);
        assert!(within.findings.is_empty());
    }

    #[test]
    fn runner_cell_count_change_fails() {
        let c = compare_runner(&runner_doc(1000, 20), &runner_doc(1000, 16), 50);
        assert_eq!(c.failures(), 1);
    }

    #[test]
    fn runner_missing_run_warns() {
        let none = parse(r#"{"schema":"pbm-bench-runner/v1","runs":[]}"#).unwrap();
        let c = compare_runner(&runner_doc(1000, 20), &none, 50);
        assert!(c.pass());
        assert_eq!(c.warnings(), 1);
    }

    #[test]
    fn table_and_verdict_shapes() {
        let clean = compare_prof(&prof_doc(500, true), &prof_doc(500, true), 0);
        let dirty = compare_prof(&prof_doc(500, true), &prof_doc(600, true), 0);
        let table = render_table(&[clean.clone(), dirty.clone()]);
        assert!(table.contains("ok    BENCH_prof.json"));
        assert!(table.contains("FAIL"));
        assert!(table.contains("1 failure(s)"));
        let v = verdict_json(&[clean, dirty]);
        assert_eq!(v.get("pass"), Some(&JsonValue::Bool(false)));
        assert_eq!(v.get("schema").unwrap().as_str(), Some(VERDICT_SCHEMA));
        let text = v.to_json();
        assert_eq!(parse(&text).unwrap(), v);
    }
}
