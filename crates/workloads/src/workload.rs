//! A packaged workload: per-core programs plus initial durable state.

use pbm_sim::{Program, System};
use pbm_types::Addr;

/// A ready-to-run workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short identifier (matches the paper's workload names).
    pub name: &'static str,
    /// One program per core (cores beyond `programs.len()` idle).
    pub programs: Vec<Program>,
    /// Initial durable memory image: `(addr, value)` pairs preloaded before
    /// the run (the pre-existing persistent data structure).
    pub preloads: Vec<(Addr, u32)>,
}

impl Workload {
    /// Applies the preloads to a freshly built system. Call after
    /// [`System::enable_checking`] (if used) so the checker learns the
    /// initial image, and before [`System::run`].
    pub fn apply_preloads(&self, sys: &mut System) {
        for &(addr, value) in &self.preloads {
            sys.preload(addr, value);
        }
    }

    /// Total operations across all programs.
    pub fn total_ops(&self) -> usize {
        self.programs.iter().map(Program::len).sum()
    }

    /// Total stores across all programs.
    pub fn total_stores(&self) -> usize {
        self.programs.iter().map(Program::store_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbm_sim::ProgramBuilder;

    #[test]
    fn totals() {
        let mut b = ProgramBuilder::new();
        b.store(Addr::new(0), 1).barrier();
        let wl = Workload {
            name: "t",
            programs: vec![b.build(), Program::empty()],
            preloads: vec![(Addr::new(64), 9)],
        };
        assert_eq!(wl.total_ops(), 2);
        assert_eq!(wl.total_stores(), 1);
    }
}
