//! Shared random-program generation for consistency testing.
//!
//! One generator, two front doors: [`random_program`] / [`random_programs`]
//! for explicitly-seeded use (the `pbm-check` fuzzing harness, where the
//! seed must round-trip through corpus artifacts), and [`programs`] — a
//! `proptest` [`Strategy`] over the same generator — for property tests.
//! `tests/consistency.rs` and the harness both draw from here, so a
//! program shape that exposes a bug in one shows up in the other.

use pbm_sim::{Op, Program, ProgramBuilder};
use pbm_types::Addr;
use proptest::strategy::Strategy;
use proptest::test_runner::TestRng;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape parameters of the random mixed workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomProgramParams {
    /// Operations per core (a trailing barrier is always appended).
    pub ops: usize,
    /// Number of shared lines (line indices `0..shared_lines`).
    pub shared_lines: u64,
    /// When `true`, every store goes to the core's private range and the
    /// "shared" loads read *other cores'* private ranges instead. Store
    /// sets are then per-core disjoint, so the final drained NVRAM state
    /// is schedule-independent — the property the differential checker
    /// compares across barrier kinds — while cross-core loads still
    /// create inter-thread dependences.
    pub disjoint_stores: bool,
    /// Cores in the workload (used to pick read targets in disjoint mode).
    pub cores: usize,
}

impl RandomProgramParams {
    /// The shape `tests/consistency.rs` historically used: 60 ops over 16
    /// shared lines with shared stores.
    pub fn mixed(ops: usize, shared_lines: u64) -> Self {
        RandomProgramParams {
            ops,
            shared_lines,
            disjoint_stores: false,
            cores: 4,
        }
    }

    /// Disjoint-store variant for differential final-state checks.
    pub fn disjoint(ops: usize, cores: usize) -> Self {
        RandomProgramParams {
            ops,
            shared_lines: 16,
            disjoint_stores: true,
            cores,
        }
    }
}

/// First private line index of `core` (32 lines per core).
fn private_base(core: usize) -> u64 {
    1_000 + core as u64 * 64
}

/// Generates the random program for `core` under `seed`.
///
/// With `disjoint_stores == false` this reproduces, byte for byte, the
/// generator that used to live in `tests/consistency.rs`: a 50/20/20/10
/// mix of stores (70% private) / shared loads / compute / barriers.
pub fn random_program(seed: u64, core: usize, params: &RandomProgramParams) -> Program {
    let mut rng = StdRng::seed_from_u64(seed ^ (core as u64) << 32);
    let mut b = ProgramBuilder::new();
    for i in 0..params.ops {
        match rng.gen_range(0..10) {
            0..=4 => {
                // Store, mostly private, sometimes shared (never shared in
                // disjoint mode).
                let line = if rng.gen_bool(0.3) && !params.disjoint_stores {
                    rng.gen_range(0..params.shared_lines)
                } else {
                    private_base(core) + rng.gen_range(0..32)
                };
                b.store(Addr::new(line * 64), i as u32);
            }
            5..=6 => {
                let line = if params.disjoint_stores {
                    // Read another core's private range: creates the
                    // inter-thread dependences without sharing stores.
                    let other = rng.gen_range(0..params.cores.max(1));
                    private_base(other) + rng.gen_range(0..32)
                } else {
                    rng.gen_range(0..params.shared_lines)
                };
                b.load(Addr::new(line * 64));
            }
            7..=8 => {
                b.compute(rng.gen_range(1..200));
            }
            _ => {
                b.barrier();
            }
        }
    }
    b.barrier();
    b.build()
}

/// One [`random_program`] per core, all derived from `seed`.
pub fn random_programs(seed: u64, cores: usize, params: &RandomProgramParams) -> Vec<Program> {
    (0..cores)
        .map(|c| random_program(seed, c, params))
        .collect()
}

/// Deliberate barrier misplacement, the static analyzer's negative corpus.
///
/// Applied *after* generation, so a misbarriered program differs from its
/// healthy sibling only in barrier placement — exactly the class of
/// programmer mistake `pbm-analyze` exists to catch (dropped barriers make
/// tail writes and un-closed epochs; moved barriers re-cut epochs around
/// the stores they were meant to order). The fuzzer reuses the knob to
/// reach program shapes the healthy generator never emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Misbarrier {
    /// Percent of barriers dropped outright (0–100).
    pub drop_pct: u8,
    /// Percent of surviving barriers moved earlier by 1–3 ops (0–100).
    pub move_pct: u8,
}

impl Misbarrier {
    /// Drop every barrier (the harshest negative corpus).
    pub const DROP_ALL: Misbarrier = Misbarrier {
        drop_pct: 100,
        move_pct: 0,
    };

    /// Drop half the barriers and nudge half the rest — mixed damage.
    pub const MIXED: Misbarrier = Misbarrier {
        drop_pct: 50,
        move_pct: 50,
    };

    /// True when the knob can alter a program at all.
    pub fn is_active(&self) -> bool {
        self.drop_pct > 0 || self.move_pct > 0
    }
}

/// Applies `knob` to `programs`, deterministically under `seed`.
///
/// Dropping removes the barrier op; moving swaps it 1–3 positions earlier
/// (clamped at the program start), which pulls trailing stores of the
/// previous epoch into the next one.
pub fn apply_misbarrier(programs: &[Program], seed: u64, knob: Misbarrier) -> Vec<Program> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6d69_7362_6172_7221); // "misbar!"
    programs
        .iter()
        .map(|p| {
            let mut ops: Vec<Op> = p.ops().to_vec();
            let mut i = 0;
            while i < ops.len() {
                if ops[i] == Op::Barrier {
                    if rng.gen_range(0..100) < u32::from(knob.drop_pct) {
                        ops.remove(i);
                        continue; // re-examine the op now at `i`
                    }
                    if rng.gen_range(0..100) < u32::from(knob.move_pct) {
                        let dist = rng.gen_range(1..=3).min(i);
                        for k in 0..dist {
                            ops.swap(i - k, i - k - 1);
                        }
                    }
                }
                i += 1;
            }
            ops.into_iter().collect()
        })
        .collect()
}

/// A `proptest` [`Strategy`] producing `(seed, programs)` pairs from the
/// shared generator; the seed is kept so failures can be re-run or handed
/// to the `pbm-check` harness verbatim.
#[derive(Debug, Clone)]
pub struct ProgramsStrategy {
    cores: usize,
    params: RandomProgramParams,
    misbarrier: Option<Misbarrier>,
}

impl ProgramsStrategy {
    /// Applies barrier misplacement to every generated program set (the
    /// same `seed` the programs derive from also drives the damage, so a
    /// failing `(seed, programs)` pair replays exactly).
    pub fn misbarrier(mut self, knob: Misbarrier) -> Self {
        self.misbarrier = Some(knob);
        self
    }
}

impl Strategy for ProgramsStrategy {
    type Value = (u64, Vec<Program>);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        // Keep seeds small enough to quote in a test name or CLI flag.
        let seed = rng.next_u64() % 1_000_000;
        let mut programs = random_programs(seed, self.cores, &self.params);
        if let Some(knob) = self.misbarrier {
            programs = apply_misbarrier(&programs, seed, knob);
        }
        (seed, programs)
    }
}

/// Strategy over [`random_programs`] with `cores` cores and `params`.
pub fn programs(cores: usize, params: RandomProgramParams) -> ProgramsStrategy {
    ProgramsStrategy {
        cores,
        params,
        misbarrier: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbm_sim::Op;
    use proptest::test_runner::TestRng;

    #[test]
    fn generator_is_deterministic_per_seed_and_core() {
        let p = RandomProgramParams::mixed(60, 16);
        assert_eq!(random_program(7, 1, &p), random_program(7, 1, &p));
        assert_ne!(random_program(7, 1, &p), random_program(8, 1, &p));
        assert_ne!(random_program(7, 1, &p), random_program(7, 2, &p));
    }

    #[test]
    fn disjoint_mode_stores_stay_in_private_ranges() {
        let p = RandomProgramParams::disjoint(80, 4);
        for core in 0..4 {
            let base = private_base(core) * 64;
            for op in random_program(3, core, &p).ops() {
                if let Op::Store(addr, _) = op {
                    assert!(
                        addr.as_u64() >= base && addr.as_u64() < base + 32 * 64,
                        "core {core} stored outside its range: {addr:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn misbarrier_drop_all_removes_every_barrier() {
        let p = RandomProgramParams::mixed(60, 16);
        let healthy = random_programs(11, 4, &p);
        let damaged = apply_misbarrier(&healthy, 11, Misbarrier::DROP_ALL);
        for prog in &damaged {
            assert!(!prog.ops().contains(&Op::Barrier));
        }
        // Only barriers were removed: op multiset minus barriers matches.
        for (h, d) in healthy.iter().zip(&damaged) {
            let h_rest: Vec<_> = h
                .ops()
                .iter()
                .filter(|o| !matches!(o, Op::Barrier))
                .collect();
            let d_rest: Vec<_> = d.ops().iter().collect();
            assert_eq!(h_rest, d_rest);
        }
    }

    #[test]
    fn misbarrier_is_deterministic_and_preserves_op_multiset_on_move() {
        let p = RandomProgramParams::mixed(60, 16);
        let healthy = random_programs(5, 4, &p);
        let knob = Misbarrier {
            drop_pct: 0,
            move_pct: 100,
        };
        let a = apply_misbarrier(&healthy, 5, knob);
        let b = apply_misbarrier(&healthy, 5, knob);
        assert_eq!(a, b, "same seed, same damage");
        for (h, d) in healthy.iter().zip(&a) {
            assert_eq!(h.len(), d.len(), "moving never drops ops");
            assert_eq!(h.store_count(), d.store_count());
            let barriers =
                |pr: &Program| pr.ops().iter().filter(|o| matches!(o, Op::Barrier)).count();
            assert_eq!(barriers(h), barriers(d));
        }
        assert_ne!(
            a, healthy,
            "60-op programs with ~10% barriers always move at 100%"
        );
    }

    #[test]
    fn strategy_applies_the_misbarrier_knob() {
        let strat = programs(2, RandomProgramParams::mixed(40, 8)).misbarrier(Misbarrier::DROP_ALL);
        let mut rng = TestRng::deterministic("misbarrier");
        let (seed, progs) = strat.generate(&mut rng);
        let expected = apply_misbarrier(
            &random_programs(seed, 2, &RandomProgramParams::mixed(40, 8)),
            seed,
            Misbarrier::DROP_ALL,
        );
        assert_eq!(progs, expected);
        for p in &progs {
            assert!(!p.ops().contains(&Op::Barrier));
        }
        assert!(Misbarrier::MIXED.is_active());
        assert!(!Misbarrier {
            drop_pct: 0,
            move_pct: 0
        }
        .is_active());
    }

    #[test]
    fn strategy_reuses_the_generator() {
        let strat = programs(2, RandomProgramParams::mixed(20, 8));
        let mut rng = TestRng::deterministic("random-programs");
        let (seed, progs) = strat.generate(&mut rng);
        assert_eq!(progs.len(), 2);
        assert_eq!(
            progs[0],
            random_program(seed, 0, &RandomProgramParams::mixed(20, 8))
        );
    }
}
