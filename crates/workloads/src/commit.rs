//! The Figure-10 commit protocol as a stand-alone two-core workload:
//! publish data, persist-barrier, publish the commit flag.
//!
//! This is the smallest program shape whose crash consistency depends on a
//! *programmer-inserted* barrier rather than on the hardware: the
//! publisher writes a span of data lines, persist-barriers, then writes a
//! flag line the consumer polls. Recovery reading a durable flag must find
//! every data line durable — guaranteed under BEP exactly because the
//! barrier puts the flag in a later epoch.
//!
//! [`publisher_consumer`] can build the protocol with the data barrier
//! *dropped*, which is the workload-level `dropped-barrier` injected bug:
//! `pbm-analyze` flags the resulting unordered publication statically, and
//! the `pbm-check` bug campaign catches the flag-before-data durable state
//! dynamically at some crash cycle. Both proofs run against the same
//! builder, so the static and dynamic verdicts are about the same program.

use crate::Workload;
use pbm_sim::ProgramBuilder;
use pbm_types::{Addr, LINE_SIZE};

/// Line index of the commit flag. Kept *below* the data lines so the
/// flag's LLC bank is serviced no later than the last data bank on the
/// default schedule — with the barrier dropped, some crash cycle exposes a
/// durable flag over missing data.
pub const FLAG_LINE: u64 = 0;
/// First data line.
pub const DATA_BASE_LINE: u64 = 1;
/// Number of data lines published per transaction.
pub const DATA_LINES: u64 = 8;
/// The value the publisher writes to every data line of transaction `t`.
pub fn data_value(tx: u64) -> u32 {
    100 + tx as u32
}
/// The value the publisher writes to the flag when transaction `t`'s data
/// is (supposedly) durable.
pub fn flag_value(tx: u64) -> u32 {
    1 + tx as u32
}

/// Builds the publisher/consumer commit workload.
///
/// * Core 0 runs `txs` publications: store [`DATA_LINES`] data lines,
///   persist barrier (omitted when `drop_barrier`), store the flag,
///   persist barrier.
/// * Core 1 polls: load the flag, then read a data line — the consumer
///   side of the protocol that makes the flag a cross-thread publication.
///
/// The crash invariant (checked by `pbm_check::campaign::bugs`): at every
/// crash cycle, if the flag is durable at [`flag_value`]`(t)` then every
/// data line is durable at [`data_value`]`(t)` or newer.
pub fn publisher_consumer(txs: u64, drop_barrier: bool) -> Workload {
    let flag = Addr::new(FLAG_LINE * LINE_SIZE);
    let data = |i: u64| Addr::new((DATA_BASE_LINE + i) * LINE_SIZE);

    let mut publisher = ProgramBuilder::new();
    for tx in 0..txs {
        for i in 0..DATA_LINES {
            publisher.store(data(i), data_value(tx));
        }
        if !drop_barrier {
            publisher.barrier();
        }
        publisher.store(flag, flag_value(tx));
        publisher.barrier();
        publisher.tx_end();
    }

    let mut consumer = ProgramBuilder::new();
    for i in 0..txs {
        consumer.load(flag);
        consumer.load(data(i % DATA_LINES));
        consumer.compute(40);
    }

    Workload {
        name: "commit",
        programs: vec![publisher.build(), consumer.build()],
        preloads: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbm_sim::Op;

    #[test]
    fn healthy_protocol_isolates_the_flag_epoch() {
        let wl = publisher_consumer(3, false);
        let pub_ops = wl.programs[0].ops();
        // Between a data store and the flag store there is always a
        // barrier; the flag epoch contains exactly the flag store.
        let mut stores_since_barrier = 0;
        for op in pub_ops {
            match op {
                Op::Store(a, _) if a.line().as_u64() == FLAG_LINE => {
                    assert_eq!(stores_since_barrier, 0, "flag shares an epoch with data");
                    stores_since_barrier += 1;
                }
                Op::Store(_, _) => stores_since_barrier += 1,
                Op::Barrier => stores_since_barrier = 0,
                _ => {}
            }
        }
        assert_eq!(wl.total_stores(), 3 * (DATA_LINES as usize + 1));
    }

    #[test]
    fn dropped_barrier_merges_data_and_flag() {
        let healthy = publisher_consumer(2, false);
        let broken = publisher_consumer(2, true);
        let barriers = |wl: &Workload| {
            wl.programs[0]
                .ops()
                .iter()
                .filter(|o| matches!(o, Op::Barrier))
                .count()
        };
        assert_eq!(barriers(&healthy), 4, "two barriers per tx");
        assert_eq!(barriers(&broken), 2, "only the trailing barrier per tx");
        assert_eq!(healthy.total_stores(), broken.total_stores());
    }
}
