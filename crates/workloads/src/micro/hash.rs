//! Hash-table micro-benchmark: insert/delete/search over a bucketed table
//! (the NVHeaps-style `hash` workload).

use super::MicroParams;
use crate::heap::{HeapRegion, PersistentHeap};
use crate::Workload;
use pbm_sim::ProgramBuilder;
use pbm_types::Addr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SLOTS_PER_BUCKET: usize = 4;

/// Builds the hash workload: each thread performs `ops_per_thread`
/// transactions (50% insert, 25% delete, 25% search) on a shared table.
///
/// Transaction recipe (insert), following Figure 10's discipline:
/// lock bucket → load bucket header → **epoch A**: write the 512-byte
/// entry, barrier → **epoch B**: update the bucket header (slot bitmap),
/// barrier → unlock. Deletes tombstone the entry in epoch A and update the
/// header in epoch B; searches take only loads.
pub fn hash(params: &MicroParams) -> Workload {
    let mut heap = PersistentHeap::new();
    let buckets = params.capacity.max(SLOTS_PER_BUCKET) / SLOTS_PER_BUCKET;
    // Layout: per bucket, one header line + SLOTS_PER_BUCKET entries.
    let (header_base, header_stride) = heap.alloc_array(HeapRegion::Persistent, 64, buckets as u64);
    let (entry_base, entry_stride) = heap.alloc_array(
        HeapRegion::Persistent,
        params.entry_bytes,
        (buckets * SLOTS_PER_BUCKET) as u64,
    );
    let (lock_base, lock_stride) = heap.alloc_array(HeapRegion::Volatile, 8, buckets as u64);

    let header = |b: usize| Addr::new(header_base.as_u64() + b as u64 * header_stride);
    let entry = |b: usize, s: usize| {
        Addr::new(entry_base.as_u64() + (b * SLOTS_PER_BUCKET + s) as u64 * entry_stride)
    };
    let lock = |b: usize| Addr::new(lock_base.as_u64() + b as u64 * lock_stride);

    // Host-side mirror: slot occupancy per bucket.
    let mut occupied = vec![[false; SLOTS_PER_BUCKET]; buckets];
    let mut preloads = Vec::new();
    let mut rng = StdRng::seed_from_u64(params.seed);

    // Pre-populate to ~50%.
    for (b, occ) in occupied.iter_mut().enumerate() {
        let mut mask = 0u32;
        for (s, slot) in occ.iter_mut().enumerate() {
            if rng.gen_bool(0.5) {
                *slot = true;
                mask |= 1 << s;
                let base = entry(b, s);
                for l in 0..(params.entry_bytes / 64) {
                    preloads.push((base.offset(l * 64), (b * 16 + s) as u32));
                }
            }
        }
        preloads.push((header(b), mask));
    }

    let mut builders: Vec<ProgramBuilder> =
        (0..params.threads).map(|_| ProgramBuilder::new()).collect();

    // Generate transactions in a global round-robin so the shared mirror
    // assigns each insert a distinct slot.
    let slice = (buckets / params.threads).max(1);
    for op in 0..params.ops_per_thread {
        for (t, b_prog) in builders.iter_mut().enumerate() {
            // Mostly our own bucket slice (intra-thread reuse), sometimes
            // anyone's (inter-thread sharing).
            let b = if rng.gen_bool(params.partition_locality) {
                (t * slice + rng.gen_range(0..slice)) % buckets
            } else {
                rng.gen_range(0..buckets)
            };
            let value = (op * params.threads + t) as u32;
            let kind = rng.gen_range(0..4);
            match kind {
                0 | 1 => {
                    // Insert into a free slot (fall back to overwrite if full).
                    let slot = occupied[b]
                        .iter()
                        .position(|o| !o)
                        .unwrap_or(rng.gen_range(0..SLOTS_PER_BUCKET));
                    occupied[b][slot] = true;
                    b_prog.lock(lock(b));
                    b_prog.compute(params.work_cycles);
                    b_prog.load(header(b));
                    b_prog.store_span(entry(b, slot), params.entry_bytes, value);
                    b_prog.barrier();
                    b_prog.store(header(b), value);
                    b_prog.barrier();
                    b_prog.unlock(lock(b));
                }
                2 => {
                    // Delete an occupied slot (no-op load if empty).
                    match occupied[b].iter().position(|o| *o) {
                        Some(slot) => {
                            occupied[b][slot] = false;
                            b_prog.lock(lock(b));
                            b_prog.compute(params.work_cycles);
                            b_prog.load(header(b));
                            b_prog.store(entry(b, slot), u32::MAX); // tombstone
                            b_prog.barrier();
                            b_prog.store(header(b), value);
                            b_prog.barrier();
                            b_prog.unlock(lock(b));
                        }
                        None => {
                            b_prog.load(header(b));
                        }
                    }
                }
                _ => {
                    // Search: header + probe two slots.
                    b_prog.load(header(b));
                    let s = rng.gen_range(0..SLOTS_PER_BUCKET);
                    b_prog.load(entry(b, s));
                    b_prog.load(entry(b, (s + 1) % SLOTS_PER_BUCKET));
                }
            }
            b_prog.compute(params.think_cycles);
            b_prog.tx_end();
        }
    }

    Workload {
        name: "hash",
        programs: builders.iter().map(ProgramBuilder::build).collect(),
        preloads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_expected_shape() {
        let params = MicroParams::tiny();
        let wl = hash(&params);
        assert_eq!(wl.programs.len(), params.threads);
        assert!(wl.total_stores() > 0);
        assert!(!wl.preloads.is_empty());
        // Every program ends each transaction with TxEnd.
        let tx: usize = wl
            .programs
            .iter()
            .flat_map(|p| p.ops())
            .filter(|o| matches!(o, pbm_sim::Op::TxEnd))
            .count();
        assert_eq!(tx, params.threads * params.ops_per_thread);
    }

    #[test]
    fn entries_do_not_alias_headers() {
        let params = MicroParams::tiny();
        let wl = hash(&params);
        // Preload addresses are unique per line.
        let mut lines: Vec<u64> = wl.preloads.iter().map(|(a, _)| a.line().as_u64()).collect();
        lines.sort_unstable();
        let before = lines.len();
        lines.dedup();
        assert_eq!(before, lines.len(), "preload lines must be distinct");
    }
}
