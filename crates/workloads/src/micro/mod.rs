//! Persistent data-structure micro-benchmarks (Table 2 of the paper).
//!
//! Each generator *executes* its data structure's operations against a
//! simulated persistent heap — maintaining a host-side mirror of the
//! structure — and emits the memory operations a real implementation would
//! issue: loads to traverse, 512-byte entry writes, pointer/header updates,
//! spin locks for mutual exclusion, and persist barriers placed as in
//! Figure 10 (data first, barrier, then the commit pointer, barrier).
//!
//! All randomness comes from a seeded [`rand::rngs::StdRng`], so workloads
//! are reproducible byte-for-byte.

mod hash;
mod queue;
mod rbtree;
mod sdg;
mod sps;

pub use hash::hash;
pub use queue::queue;
pub use rbtree::rbtree;
pub use sdg::sdg;
pub use sps::sps;

use crate::Workload;

/// Parameters shared by every micro-benchmark.
#[derive(Debug, Clone)]
pub struct MicroParams {
    /// Worker threads (one per core).
    pub threads: usize,
    /// Data-structure operations (transactions) per thread.
    pub ops_per_thread: usize,
    /// Entry payload size in bytes (the paper uses 512).
    pub entry_bytes: u64,
    /// Structure capacity (buckets / slots / vertices), pre-populated to
    /// roughly half.
    pub capacity: usize,
    /// Local compute cycles between transactions (think time).
    pub think_cycles: u32,
    /// Compute cycles inside each critical section (the transaction's own
    /// logic: key hashing, comparisons, bookkeeping).
    pub work_cycles: u32,
    /// Probability that a thread's operation targets its own partition of
    /// the structure (hash buckets / sps entries / sdg vertices are
    /// statically sliced per thread). High values reproduce the paper's
    /// intra-thread-conflict dominance: each thread mostly re-touches data
    /// it wrote in its own recent epochs.
    pub partition_locality: f64,
    /// RNG seed.
    pub seed: u64,
}

impl MicroParams {
    /// The paper-scale configuration: 32 threads, 512-byte entries, a
    /// structure small enough to be reused heavily (the paper's ~90%
    /// conflicting epochs under LB), and enough per-transaction
    /// application work that the flush pipeline is not the bottleneck.
    pub fn paper() -> Self {
        MicroParams {
            threads: 32,
            ops_per_thread: 64,
            entry_bytes: 512,
            capacity: 384,
            think_cycles: 6000,
            work_cycles: 1200,
            partition_locality: 0.90,
            seed: 0x5eed_0001,
        }
    }

    /// A tiny configuration for unit tests.
    pub fn tiny() -> Self {
        MicroParams {
            threads: 2,
            ops_per_thread: 8,
            entry_bytes: 512,
            capacity: 64,
            think_cycles: 50,
            work_cycles: 20,
            partition_locality: 0.75,
            seed: 0x5eed_0002,
        }
    }
}

/// All five micro-benchmarks under the same parameters, in the paper's
/// plotting order.
pub fn all(params: &MicroParams) -> Vec<Workload> {
    vec![
        hash(params),
        queue(params),
        rbtree(params),
        sdg(params),
        sps(params),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbm_sim::System;
    use pbm_types::{BarrierKind, Cycle, SystemConfig};

    fn run_checked(wl: &Workload) -> pbm_types::SimStats {
        let mut cfg = SystemConfig::small_test();
        cfg.cores = 2;
        cfg.llc_banks = 2;
        cfg.mcs = 2;
        cfg.barrier = BarrierKind::LbPp;
        let mut sys = System::new(cfg, wl.programs.clone()).expect("valid");
        sys.enable_checking();
        wl.apply_preloads(&mut sys);
        let stats = sys.run();
        // Every micro-benchmark run must be BEP-consistent at arbitrary
        // crash points.
        let ck = sys.checker().expect("checking enabled");
        let horizon = stats.cycles + 20_000;
        for k in 0..20 {
            let snap = sys.persistent_snapshot_at(Cycle::new(horizon * k / 19));
            ck.check_bep(&snap)
                .unwrap_or_else(|v| panic!("{}: violation: {v}", wl.name));
        }
        stats
    }

    #[test]
    fn all_micros_run_and_are_consistent() {
        let params = MicroParams::tiny();
        for wl in all(&params) {
            let stats = run_checked(&wl);
            assert_eq!(
                stats.transactions,
                (params.threads * params.ops_per_thread) as u64,
                "{}",
                wl.name
            );
            assert!(stats.barriers > 0, "{}", wl.name);
            assert!(stats.stores > 0, "{}", wl.name);
        }
    }

    #[test]
    fn names_match_table2() {
        let names: Vec<_> = all(&MicroParams::tiny())
            .into_iter()
            .map(|w| w.name)
            .collect();
        assert_eq!(names, vec!["hash", "queue", "rbtree", "sdg", "sps"]);
    }

    #[test]
    fn generators_are_deterministic() {
        let params = MicroParams::tiny();
        let a = queue(&params);
        let b = queue(&params);
        assert_eq!(a.total_ops(), b.total_ops());
        for (pa, pb) in a.programs.iter().zip(&b.programs) {
            assert_eq!(pa.ops(), pb.ops());
        }
    }
}
