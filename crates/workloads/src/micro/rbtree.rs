//! Red-black-tree micro-benchmark: insert/delete/search on a persistent
//! red-black tree (the NVHeaps-style `rbtree` workload).
//!
//! The generator maintains a *real* red-black tree (arena-based, with the
//! standard insert fixup: recolouring and rotations) as the host-side
//! mirror. Every visited node costs a header load; every node whose
//! colour/child/parent fields change during the fixup costs a header
//! store; the new node's 512-byte payload is written in epoch A and the
//! structural updates (pointers + colours) form epoch B, mirroring the
//! data-then-commit discipline of Figure 10.

use super::MicroParams;
use crate::heap::{HeapRegion, PersistentHeap};
use crate::Workload;
use pbm_sim::ProgramBuilder;
use pbm_types::Addr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Colour {
    Red,
    Black,
}

#[derive(Debug, Clone)]
struct Node {
    key: u32,
    colour: Colour,
    parent: Option<usize>,
    left: Option<usize>,
    right: Option<usize>,
    /// The node is logically deleted (tombstoned).
    dead: bool,
}

/// The host-side red-black tree mirror. It records, per operation, which
/// node indices were *visited* and which were *mutated*, so the generator
/// can emit the corresponding loads and stores.
#[derive(Debug, Default)]
struct RbMirror {
    nodes: Vec<Node>,
    root: Option<usize>,
    visited: Vec<usize>,
    mutated: Vec<usize>,
}

impl RbMirror {
    fn new() -> Self {
        Self::default()
    }

    fn len(&self) -> usize {
        self.nodes.len()
    }

    fn touch(&mut self, idx: usize) {
        self.visited.push(idx);
    }

    fn mutate(&mut self, idx: usize) {
        if !self.mutated.contains(&idx) {
            self.mutated.push(idx);
        }
    }

    /// Standard BST descent; returns the parent for attachment (or the
    /// matching node).
    fn descend(&mut self, key: u32) -> (Option<usize>, bool) {
        let mut cur = self.root;
        let mut parent = None;
        while let Some(c) = cur {
            self.touch(c);
            parent = Some(c);
            if key == self.nodes[c].key {
                return (Some(c), true);
            }
            cur = if key < self.nodes[c].key {
                self.nodes[c].left
            } else {
                self.nodes[c].right
            };
        }
        (parent, false)
    }

    fn rotate_left(&mut self, x: usize) {
        let y = self.nodes[x].right.expect("rotate_left needs right child");
        self.nodes[x].right = self.nodes[y].left;
        if let Some(yl) = self.nodes[y].left {
            self.nodes[yl].parent = Some(x);
            self.mutate(yl);
        }
        self.nodes[y].parent = self.nodes[x].parent;
        match self.nodes[x].parent {
            None => self.root = Some(y),
            Some(p) => {
                if self.nodes[p].left == Some(x) {
                    self.nodes[p].left = Some(y);
                } else {
                    self.nodes[p].right = Some(y);
                }
                self.mutate(p);
            }
        }
        self.nodes[y].left = Some(x);
        self.nodes[x].parent = Some(y);
        self.mutate(x);
        self.mutate(y);
    }

    fn rotate_right(&mut self, x: usize) {
        let y = self.nodes[x].left.expect("rotate_right needs left child");
        self.nodes[x].left = self.nodes[y].right;
        if let Some(yr) = self.nodes[y].right {
            self.nodes[yr].parent = Some(x);
            self.mutate(yr);
        }
        self.nodes[y].parent = self.nodes[x].parent;
        match self.nodes[x].parent {
            None => self.root = Some(y),
            Some(p) => {
                if self.nodes[p].left == Some(x) {
                    self.nodes[p].left = Some(y);
                } else {
                    self.nodes[p].right = Some(y);
                }
                self.mutate(p);
            }
        }
        self.nodes[y].right = Some(x);
        self.nodes[x].parent = Some(y);
        self.mutate(x);
        self.mutate(y);
    }

    /// Inserts `key`; returns the new node's index (or the existing one).
    fn insert(&mut self, key: u32) -> usize {
        self.visited.clear();
        self.mutated.clear();
        let (attach, found) = self.descend(key);
        if found {
            let idx = attach.expect("found implies node");
            self.nodes[idx].dead = false;
            self.mutate(idx);
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(Node {
            key,
            colour: Colour::Red,
            parent: attach,
            left: None,
            right: None,
            dead: false,
        });
        self.mutate(idx);
        match attach {
            None => self.root = Some(idx),
            Some(p) => {
                if key < self.nodes[p].key {
                    self.nodes[p].left = Some(idx);
                } else {
                    self.nodes[p].right = Some(idx);
                }
                self.mutate(p);
            }
        }
        self.insert_fixup(idx);
        idx
    }

    /// CLRS insert fixup: recolouring and rotations.
    fn insert_fixup(&mut self, mut z: usize) {
        while let Some(p) = self.nodes[z].parent {
            if self.nodes[p].colour != Colour::Red {
                break;
            }
            let g = self.nodes[p].parent.expect("red node has a parent");
            if Some(p) == self.nodes[g].left {
                let uncle = self.nodes[g].right;
                if uncle.is_some_and(|u| self.nodes[u].colour == Colour::Red) {
                    let u = uncle.expect("checked");
                    self.nodes[p].colour = Colour::Black;
                    self.nodes[u].colour = Colour::Black;
                    self.nodes[g].colour = Colour::Red;
                    self.mutate(p);
                    self.mutate(u);
                    self.mutate(g);
                    z = g;
                } else {
                    if Some(z) == self.nodes[p].right {
                        z = p;
                        self.rotate_left(z);
                    }
                    let p2 = self.nodes[z].parent.expect("rotated");
                    let g2 = self.nodes[p2].parent.expect("rotated");
                    self.nodes[p2].colour = Colour::Black;
                    self.nodes[g2].colour = Colour::Red;
                    self.mutate(p2);
                    self.mutate(g2);
                    self.rotate_right(g2);
                }
            } else {
                let uncle = self.nodes[g].left;
                if uncle.is_some_and(|u| self.nodes[u].colour == Colour::Red) {
                    let u = uncle.expect("checked");
                    self.nodes[p].colour = Colour::Black;
                    self.nodes[u].colour = Colour::Black;
                    self.nodes[g].colour = Colour::Red;
                    self.mutate(p);
                    self.mutate(u);
                    self.mutate(g);
                    z = g;
                } else {
                    if Some(z) == self.nodes[p].left {
                        z = p;
                        self.rotate_right(z);
                    }
                    let p2 = self.nodes[z].parent.expect("rotated");
                    let g2 = self.nodes[p2].parent.expect("rotated");
                    self.nodes[p2].colour = Colour::Black;
                    self.nodes[g2].colour = Colour::Red;
                    self.mutate(p2);
                    self.mutate(g2);
                    self.rotate_left(g2);
                }
            }
        }
        if let Some(r) = self.root {
            if self.nodes[r].colour != Colour::Black {
                self.nodes[r].colour = Colour::Black;
                self.mutate(r);
            }
        }
    }

    /// Tombstone-delete: find and mark dead (structure unchanged, the
    /// common persistent-tree deletion strategy that avoids structural
    /// fixup on the persistence path).
    fn delete(&mut self, key: u32) -> Option<usize> {
        self.visited.clear();
        self.mutated.clear();
        let (node, found) = self.descend(key);
        if found {
            let idx = node.expect("found");
            self.nodes[idx].dead = true;
            self.mutate(idx);
            Some(idx)
        } else {
            None
        }
    }

    fn search(&mut self, key: u32) {
        self.visited.clear();
        self.mutated.clear();
        let _ = self.descend(key);
    }

    /// Red-black invariants, for tests: root black, no red-red edges,
    /// equal black height on every path.
    #[cfg(test)]
    fn check_invariants(&self) {
        fn black_height(t: &RbMirror, n: Option<usize>) -> usize {
            match n {
                None => 1,
                Some(i) => {
                    let node = &t.nodes[i];
                    if node.colour == Colour::Red {
                        for c in [node.left, node.right].into_iter().flatten() {
                            assert_eq!(t.nodes[c].colour, Colour::Black, "red-red edge");
                        }
                    }
                    let lh = black_height(t, node.left);
                    let rh = black_height(t, node.right);
                    assert_eq!(lh, rh, "black-height mismatch at key {}", node.key);
                    lh + usize::from(node.colour == Colour::Black)
                }
            }
        }
        if let Some(r) = self.root {
            assert_eq!(self.nodes[r].colour, Colour::Black, "root must be black");
            black_height(self, Some(r));
        }
    }
}

/// Builds the rbtree workload: 50% insert / 25% delete / 25% search over a
/// shared red-black tree under a global lock (matching coarse-grained
/// persistent-heap implementations of the period).
pub fn rbtree(params: &MicroParams) -> Workload {
    let mut heap = PersistentHeap::new();
    // Node layout: one header line (key, colour, pointers) + 512-byte
    // payload. Reserve room for preloaded + inserted nodes.
    let max_nodes = (params.capacity + params.threads * params.ops_per_thread + 1) as u64;
    let (hdr_base, hdr_stride) = heap.alloc_array(HeapRegion::Persistent, 64, max_nodes);
    let (pay_base, pay_stride) =
        heap.alloc_array(HeapRegion::Persistent, params.entry_bytes, max_nodes);
    let root_ptr = heap.alloc(HeapRegion::Persistent, 8);
    let tlock = heap.alloc(HeapRegion::Volatile, 8);
    let hdr = |i: usize| Addr::new(hdr_base.as_u64() + i as u64 * hdr_stride);
    let pay = |i: usize| Addr::new(pay_base.as_u64() + i as u64 * pay_stride);

    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut tree = RbMirror::new();
    let mut keys = BTreeSet::new();

    // Pre-populate with capacity/2 random keys.
    while tree.len() < params.capacity / 2 {
        let k = rng.gen_range(0..u32::MAX / 2);
        if keys.insert(k) {
            tree.insert(k);
        }
    }
    let mut preloads = Vec::new();
    for (i, n) in tree.nodes.iter().enumerate() {
        preloads.push((hdr(i), n.key));
        let base = pay(i);
        for l in 0..(params.entry_bytes / 64) {
            preloads.push((base.offset(l * 64), n.key));
        }
    }
    preloads.push((root_ptr, tree.root.unwrap_or(0) as u32));

    let mut builders: Vec<ProgramBuilder> =
        (0..params.threads).map(|_| ProgramBuilder::new()).collect();

    for op in 0..params.ops_per_thread {
        for (t, b) in builders.iter_mut().enumerate() {
            let value = (op * params.threads + t) as u32;
            let kind = rng.gen_range(0..4);
            match kind {
                0 | 1 => {
                    let k = rng.gen_range(0..u32::MAX / 2);
                    keys.insert(k);
                    b.lock(tlock);
                    b.compute(params.work_cycles);
                    b.load(root_ptr);
                    let idx = tree.insert(k);
                    for &v in &tree.visited {
                        b.load(hdr(v));
                    }
                    // Epoch A: the new node's payload.
                    b.store_span(pay(idx), params.entry_bytes, value);
                    b.barrier();
                    // Epoch B: structural updates (headers of every node
                    // the fixup touched, possibly the root pointer).
                    for &m in &tree.mutated.clone() {
                        b.store(hdr(m), value);
                    }
                    b.store(root_ptr, tree.root.unwrap_or(0) as u32);
                    b.barrier();
                    b.unlock(tlock);
                }
                2 => {
                    let k = keys
                        .iter()
                        .next()
                        .copied()
                        .unwrap_or_else(|| rng.gen_range(0..u32::MAX / 2));
                    keys.remove(&k);
                    b.lock(tlock);
                    b.compute(params.work_cycles);
                    b.load(root_ptr);
                    let hit = tree.delete(k);
                    for &v in &tree.visited {
                        b.load(hdr(v));
                    }
                    if let Some(idx) = hit {
                        // Tombstone: single-line header update, one epoch.
                        b.store(hdr(idx), u32::MAX);
                        b.barrier();
                    }
                    b.unlock(tlock);
                }
                _ => {
                    let k = rng.gen_range(0..u32::MAX / 2);
                    tree.search(k);
                    b.load(root_ptr);
                    for &v in &tree.visited.clone() {
                        b.load(hdr(v));
                    }
                }
            }
            b.compute(params.think_cycles);
            b.tx_end();
        }
    }

    Workload {
        name: "rbtree",
        programs: builders.iter().map(ProgramBuilder::build).collect(),
        preloads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirror_maintains_rb_invariants() {
        let mut t = RbMirror::new();
        for k in [50u32, 20, 70, 10, 30, 60, 80, 25, 27, 5, 1, 99, 65] {
            t.insert(k);
            t.check_invariants();
        }
        assert_eq!(t.len(), 13);
    }

    #[test]
    fn mirror_handles_sorted_insertions() {
        let mut t = RbMirror::new();
        for k in 0..256u32 {
            t.insert(k);
        }
        t.check_invariants();
        // A red-black tree of 256 sorted inserts must stay shallow: the
        // longest root path is at most 2*log2(n+1).
        let mut max_depth = 0;
        for i in 0..t.nodes.len() {
            let mut d = 0;
            let mut cur = Some(i);
            while let Some(c) = cur {
                d += 1;
                cur = t.nodes[c].parent;
            }
            max_depth = max_depth.max(d);
        }
        assert!(max_depth <= 16, "depth {max_depth} too deep for RB tree");
    }

    #[test]
    fn tombstone_delete_marks_dead() {
        let mut t = RbMirror::new();
        t.insert(5);
        t.insert(9);
        assert!(t.delete(5).is_some());
        assert!(t.delete(404).is_none());
        let alive: Vec<u32> = t.nodes.iter().filter(|n| !n.dead).map(|n| n.key).collect();
        assert_eq!(alive, vec![9]);
    }

    #[test]
    fn workload_generates() {
        let wl = rbtree(&MicroParams::tiny());
        assert_eq!(wl.programs.len(), 2);
        assert!(wl.total_stores() > 0);
        assert!(!wl.preloads.is_empty());
    }
}
