//! Random-swaps micro-benchmark (`sps`): swap 512-byte entries of a shared
//! persistent array.

use super::MicroParams;
use crate::heap::{HeapRegion, PersistentHeap};
use crate::Workload;
use pbm_sim::ProgramBuilder;
use pbm_types::Addr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds the sps workload: each transaction picks two random entries,
/// locks them in index order (deadlock-free), reads both, writes both, and
/// closes the swap with a persist barrier (one epoch per swap — the swap
/// is recoverable because both entries persist together before the next
/// swap's epoch may persist).
pub fn sps(params: &MicroParams) -> Workload {
    let mut heap = PersistentHeap::new();
    let entries = params.capacity.max(4);
    let (entry_base, stride) =
        heap.alloc_array(HeapRegion::Persistent, params.entry_bytes, entries as u64);
    let (lock_base, lock_stride) = heap.alloc_array(HeapRegion::Volatile, 8, entries as u64);
    let entry = |i: usize| Addr::new(entry_base.as_u64() + i as u64 * stride);
    let lock = |i: usize| Addr::new(lock_base.as_u64() + i as u64 * lock_stride);

    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut preloads = Vec::new();
    for i in 0..entries {
        let base = entry(i);
        for l in 0..(params.entry_bytes / 64) {
            preloads.push((base.offset(l * 64), i as u32));
        }
    }

    let mut builders: Vec<ProgramBuilder> =
        (0..params.threads).map(|_| ProgramBuilder::new()).collect();

    let slice = (entries / params.threads).max(2);
    for op in 0..params.ops_per_thread {
        for (t, b) in builders.iter_mut().enumerate() {
            let pick = |rng: &mut StdRng| {
                if rng.gen_bool(params.partition_locality) {
                    (t * slice + rng.gen_range(0..slice)) % entries
                } else {
                    rng.gen_range(0..entries)
                }
            };
            let i = pick(&mut rng);
            let mut j = pick(&mut rng);
            if j == i {
                j = (j + 1) % entries;
            }
            let (lo, hi) = (i.min(j), i.max(j));
            let value = (op * params.threads + t) as u32;
            b.lock(lock(lo));
            b.compute(params.work_cycles);
            b.lock(lock(hi));
            b.compute(params.work_cycles);
            // Read both entries...
            for l in 0..(params.entry_bytes / 64) {
                b.load(entry(lo).offset(l * 64));
                b.load(entry(hi).offset(l * 64));
            }
            // ...write both back swapped, persist as one epoch.
            b.store_span(entry(lo), params.entry_bytes, value);
            b.store_span(entry(hi), params.entry_bytes, value);
            b.barrier();
            b.unlock(lock(hi));
            b.unlock(lock(lo));
            b.compute(params.think_cycles);
            b.tx_end();
        }
    }

    Workload {
        name: "sps",
        programs: builders.iter().map(ProgramBuilder::build).collect(),
        preloads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbm_sim::Op;

    #[test]
    fn locks_taken_in_index_order() {
        let wl = sps(&MicroParams::tiny());
        for p in &wl.programs {
            let mut pending: Option<u64> = None;
            for op in p.ops() {
                match op {
                    Op::Lock(a) => match pending {
                        None => pending = Some(a.as_u64()),
                        Some(first) => {
                            assert!(a.as_u64() > first, "locks must be ordered");
                            pending = None;
                        }
                    },
                    Op::TxEnd => pending = None,
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn swap_is_one_epoch() {
        let wl = sps(&MicroParams::tiny());
        // Exactly one barrier per transaction.
        for p in &wl.programs {
            let barriers = p.ops().iter().filter(|o| matches!(o, Op::Barrier)).count();
            let txs = p.ops().iter().filter(|o| matches!(o, Op::TxEnd)).count();
            assert_eq!(barriers, txs);
        }
    }
}
