//! Scalable-graph micro-benchmark (`sdg`): insert/delete edges in a
//! adjacency-list graph with per-vertex locks.

use super::MicroParams;
use crate::heap::{HeapRegion, PersistentHeap};
use crate::Workload;
use pbm_sim::ProgramBuilder;
use pbm_types::Addr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const EDGES_PER_VERTEX: usize = 8;

/// Builds the sdg workload: threads add (60%), remove (20%) and scan (20%)
/// edges of a shared graph. Each vertex has a header line (degree, version)
/// and a fixed-capacity adjacency array of 512-byte edge entries; vertices
/// are locked individually, so disjoint updates proceed in parallel —
/// the "scalable" in scalable data graph.
///
/// Edge insert: lock source vertex → **epoch A**: write the edge entry,
/// barrier → **epoch B**: bump the vertex header, barrier → unlock.
pub fn sdg(params: &MicroParams) -> Workload {
    let mut heap = PersistentHeap::new();
    let vertices = (params.capacity / EDGES_PER_VERTEX).max(params.threads * 2);
    let (hdr_base, hdr_stride) = heap.alloc_array(HeapRegion::Persistent, 64, vertices as u64);
    let (edge_base, edge_stride) = heap.alloc_array(
        HeapRegion::Persistent,
        params.entry_bytes,
        (vertices * EDGES_PER_VERTEX) as u64,
    );
    let (lock_base, lock_stride) = heap.alloc_array(HeapRegion::Volatile, 8, vertices as u64);
    let hdr = |v: usize| Addr::new(hdr_base.as_u64() + v as u64 * hdr_stride);
    let edge = |v: usize, e: usize| {
        Addr::new(edge_base.as_u64() + (v * EDGES_PER_VERTEX + e) as u64 * edge_stride)
    };
    let lock = |v: usize| Addr::new(lock_base.as_u64() + v as u64 * lock_stride);

    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut degree = vec![0usize; vertices];
    let mut preloads = Vec::new();

    // Pre-populate: each vertex starts with ~half its edge slots used.
    for (v, deg) in degree.iter_mut().enumerate() {
        *deg = rng.gen_range(0..=EDGES_PER_VERTEX / 2);
        for e in 0..*deg {
            let base = edge(v, e);
            for l in 0..(params.entry_bytes / 64) {
                preloads.push((base.offset(l * 64), (v * 100 + e) as u32));
            }
        }
        preloads.push((hdr(v), *deg as u32));
    }

    let mut builders: Vec<ProgramBuilder> =
        (0..params.threads).map(|_| ProgramBuilder::new()).collect();

    let slice = (vertices / params.threads).max(1);
    for op in 0..params.ops_per_thread {
        for (t, b) in builders.iter_mut().enumerate() {
            let v = if rng.gen_bool(params.partition_locality) {
                (t * slice + rng.gen_range(0..slice)) % vertices
            } else {
                rng.gen_range(0..vertices)
            };
            let value = (op * params.threads + t) as u32;
            let kind = rng.gen_range(0..5);
            match kind {
                0..=2 => {
                    // Add an edge if there is room, else rewrite slot 0.
                    let e = if degree[v] < EDGES_PER_VERTEX {
                        degree[v] += 1;
                        degree[v] - 1
                    } else {
                        0
                    };
                    b.lock(lock(v));
                    b.compute(params.work_cycles);
                    b.load(hdr(v));
                    b.store_span(edge(v, e), params.entry_bytes, value);
                    b.barrier();
                    b.store(hdr(v), degree[v] as u32);
                    b.barrier();
                    b.unlock(lock(v));
                }
                3 => {
                    // Remove the newest edge (tombstone + header).
                    b.lock(lock(v));
                    b.compute(params.work_cycles);
                    b.load(hdr(v));
                    if degree[v] > 0 {
                        degree[v] -= 1;
                        b.store(edge(v, degree[v]), u32::MAX);
                        b.barrier();
                        b.store(hdr(v), degree[v] as u32);
                        b.barrier();
                    }
                    b.unlock(lock(v));
                }
                _ => {
                    // Scan the adjacency list (lock-free read).
                    b.load(hdr(v));
                    for e in 0..degree[v].min(3) {
                        b.load(edge(v, e));
                    }
                }
            }
            b.compute(params.think_cycles);
            b.tx_end();
        }
    }

    Workload {
        name: "sdg",
        programs: builders.iter().map(ProgramBuilder::build).collect(),
        preloads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates() {
        let wl = sdg(&MicroParams::tiny());
        assert_eq!(wl.programs.len(), 2);
        assert!(wl.total_stores() > 0);
        assert!(!wl.preloads.is_empty());
    }

    #[test]
    fn per_vertex_locks_are_volatile() {
        let wl = sdg(&MicroParams::tiny());
        for p in &wl.programs {
            for op in p.ops() {
                if let pbm_sim::Op::Lock(a) | pbm_sim::Op::Unlock(a) = op {
                    assert!(a.as_u64() >= pbm_sim::VOLATILE_BASE);
                }
            }
        }
    }
}
