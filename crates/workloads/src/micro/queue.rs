//! Queue micro-benchmark: the copy-while-locked persistent queue of the
//! paper's Figure 10 (after Pelley et al.).

use super::MicroParams;
use crate::heap::{HeapRegion, PersistentHeap};
use crate::Workload;
use pbm_sim::ProgramBuilder;
use pbm_types::Addr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds the queue workload: threads insert (75%) and delete (25%)
/// 512-byte entries in one shared circular queue under a global lock.
///
/// Insert follows Figure 10(a) exactly: **epoch A** copies the entry into
/// the slot at `head`, barrier; **epoch B** advances the `head` pointer,
/// barrier. Delete advances `tail` symmetrically (the entry itself is not
/// touched — exactly the recovery-safe pattern the paper describes, where
/// a crash between the epochs simply ignores the half-inserted entry).
pub fn queue(params: &MicroParams) -> Workload {
    let mut heap = PersistentHeap::new();
    let slots = params.capacity as u64;
    let (slot_base, slot_stride) =
        heap.alloc_array(HeapRegion::Persistent, params.entry_bytes, slots);
    let head_ptr = heap.alloc(HeapRegion::Persistent, 8);
    let tail_ptr = heap.alloc(HeapRegion::Persistent, 8);
    let qlock = heap.alloc(HeapRegion::Volatile, 8);
    let slot = |i: u64| Addr::new(slot_base.as_u64() + (i % slots) * slot_stride);

    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut preloads = Vec::new();

    // Pre-populate half the queue: tail = 0, head = slots/2.
    let mut head = slots / 2;
    let mut tail = 0u64;
    for i in 0..head {
        let base = slot(i);
        for l in 0..(params.entry_bytes / 64) {
            preloads.push((base.offset(l * 64), i as u32));
        }
    }
    preloads.push((head_ptr, head as u32));
    preloads.push((tail_ptr, tail as u32));

    let mut builders: Vec<ProgramBuilder> =
        (0..params.threads).map(|_| ProgramBuilder::new()).collect();

    for op in 0..params.ops_per_thread {
        for (t, b) in builders.iter_mut().enumerate() {
            let value = (op * params.threads + t) as u32;
            let insert = head - tail < slots - 1 && (head == tail || rng.gen_bool(0.75));
            b.lock(qlock);
            b.compute(params.work_cycles);
            if insert {
                // Figure 10: copy entry at head, barrier, bump head, barrier.
                b.load(head_ptr);
                b.store_span(slot(head), params.entry_bytes, value);
                b.barrier();
                head += 1;
                b.store(head_ptr, (head % slots) as u32);
                b.barrier();
            } else {
                // Delete: read tail, bump it past the oldest entry.
                b.load(tail_ptr);
                b.load(slot(tail));
                tail += 1;
                b.store(tail_ptr, (tail % slots) as u32);
                b.barrier();
            }
            b.unlock(qlock);
            b.compute(params.think_cycles);
            b.tx_end();
        }
    }

    Workload {
        name: "queue",
        programs: builders.iter().map(ProgramBuilder::build).collect(),
        preloads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbm_sim::Op;

    #[test]
    fn inserts_follow_figure10_discipline() {
        let params = MicroParams::tiny();
        let wl = queue(&params);
        // In every program, a store burst to slot lines is separated from
        // the head-pointer store by a barrier.
        for p in &wl.programs {
            let ops = p.ops();
            for w in ops.windows(3) {
                if let (Op::Barrier, Op::Store(_, _), Op::Barrier) = (w[0], w[1], w[2]) {
                    return; // found the epoch-B pattern
                }
            }
        }
        panic!("no barrier-isolated pointer update found");
    }

    #[test]
    fn head_updates_are_single_line() {
        let params = MicroParams::tiny();
        let wl = queue(&params);
        assert_eq!(wl.programs.len(), params.threads);
        assert!(wl.total_stores() > 0);
    }
}
