//! Synthetic proxies for the PARSEC / SPLASH-2 / STAMP applications used
//! in the paper's BSP evaluation (Figures 13 and 14).
//!
//! The real benchmarks cannot run on this simulator (no ISA, no OS), and
//! BSP bulk-mode results depend only on the *memory behaviour* of the
//! application: store rate, store locality (coalescing opportunity), the
//! size of the working set (natural eviction rate) and the degree and
//! granularity of inter-thread sharing (inter-thread conflicts — 86% of
//! all conflicts in the paper's measurements). Each proxy is therefore a
//! seeded random-traffic generator with a per-application profile matched
//! to the published characterization of its namesake:
//!
//! | app      | suite    | profile highlights                                   |
//! |----------|----------|------------------------------------------------------|
//! | canneal  | PARSEC   | huge working set, random pointer chasing, low sharing |
//! | dedup    | PARSEC   | pipeline stages, medium sharing, write-heavy bursts   |
//! | freqmine | PARSEC   | read-dominated tree mining, low sharing               |
//! | barnes   | SPLASH-2 | octree walks, read-mostly with update phases          |
//! | cholesky | SPLASH-2 | blocked factorization, high locality, private writes  |
//! | radix    | SPLASH-2 | streaming permutation writes, very high locality      |
//! | intruder | STAMP    | shared queues/maps, high contention                   |
//! | ssca2    | STAMP    | graph kernel: write-intensive, fine-grained sharing   |
//! | vacation | STAMP    | travel DB transactions, moderate sharing              |

use crate::heap::{HeapRegion, PersistentHeap};
use crate::Workload;
use pbm_sim::ProgramBuilder;
use pbm_types::{Addr, LINE_SIZE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scale parameters shared by all proxies.
#[derive(Debug, Clone)]
pub struct AppParams {
    /// Worker threads (one per core).
    pub threads: usize,
    /// Memory operations per thread.
    pub ops_per_thread: usize,
    /// RNG seed.
    pub seed: u64,
}

impl AppParams {
    /// Paper-scale: 32 threads.
    pub fn paper() -> Self {
        AppParams {
            threads: 32,
            ops_per_thread: 8_000,
            seed: 0x00AA_5EED,
        }
    }

    /// Tiny configuration for unit tests.
    pub fn tiny() -> Self {
        AppParams {
            threads: 2,
            ops_per_thread: 300,
            seed: 0xbeef,
        }
    }
}

/// The memory-behaviour profile of one application proxy.
#[derive(Debug, Clone, Copy)]
pub struct AppProfile {
    /// Workload name (matches the paper's figures).
    pub name: &'static str,
    /// Fraction of memory operations that are stores.
    pub write_ratio: f64,
    /// Probability an access targets the shared region.
    pub shared_fraction: f64,
    /// Per-thread private working set, in cache lines.
    pub private_lines: u64,
    /// Shared region size, in cache lines.
    pub shared_lines: u64,
    /// Probability of re-touching one of the last few lines (coalescing /
    /// cache locality).
    pub locality: f64,
    /// Compute cycles between memory operations.
    pub compute_per_op: u32,
}

/// The nine profiles, in the paper's plotting order.
pub const PROFILES: [AppProfile; 9] = [
    AppProfile {
        name: "canneal",
        write_ratio: 0.45,
        shared_fraction: 0.03,
        private_lines: 16384,
        shared_lines: 16384,
        locality: 0.5,
        compute_per_op: 10,
    },
    AppProfile {
        name: "dedup",
        write_ratio: 0.55,
        shared_fraction: 0.04,
        private_lines: 4096,
        shared_lines: 8192,
        locality: 0.68,
        compute_per_op: 14,
    },
    AppProfile {
        name: "freqmine",
        write_ratio: 0.3,
        shared_fraction: 0.02,
        private_lines: 4096,
        shared_lines: 8192,
        locality: 0.72,
        compute_per_op: 10,
    },
    AppProfile {
        name: "barnes",
        write_ratio: 0.4,
        shared_fraction: 0.04,
        private_lines: 2048,
        shared_lines: 8192,
        locality: 0.68,
        compute_per_op: 12,
    },
    AppProfile {
        name: "cholesky",
        write_ratio: 0.5,
        shared_fraction: 0.015,
        private_lines: 4096,
        shared_lines: 8192,
        locality: 0.75,
        compute_per_op: 10,
    },
    AppProfile {
        name: "radix",
        write_ratio: 0.65,
        shared_fraction: 0.008,
        private_lines: 8192,
        shared_lines: 8192,
        locality: 0.85,
        compute_per_op: 12,
    },
    AppProfile {
        name: "intruder",
        write_ratio: 0.55,
        shared_fraction: 0.06,
        private_lines: 1024,
        shared_lines: 2048,
        locality: 0.65,
        compute_per_op: 16,
    },
    AppProfile {
        name: "ssca2",
        write_ratio: 0.7,
        shared_fraction: 0.045,
        private_lines: 2048,
        shared_lines: 4096,
        locality: 0.5,
        compute_per_op: 24,
    },
    AppProfile {
        name: "vacation",
        write_ratio: 0.45,
        shared_fraction: 0.05,
        private_lines: 2048,
        shared_lines: 8192,
        locality: 0.68,
        compute_per_op: 12,
    },
];

/// Builds the proxy for `profile` at the given scale. No persist barriers
/// are emitted: under BSP bulk mode the hardware cuts epochs.
pub fn build(profile: &AppProfile, params: &AppParams) -> Workload {
    let mut heap = PersistentHeap::new();
    let shared_base = heap.alloc(HeapRegion::Persistent, profile.shared_lines * LINE_SIZE);
    let private_bases: Vec<Addr> = (0..params.threads)
        .map(|_| heap.alloc(HeapRegion::Persistent, profile.private_lines * LINE_SIZE))
        .collect();

    let mut programs = Vec::with_capacity(params.threads);
    for (t, private_base) in private_bases.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(params.seed ^ (t as u64).wrapping_mul(0x9E37_79B9));
        let mut b = ProgramBuilder::new();
        // A 64-line reuse window: repeated stores to recently-touched
        // lines coalesce in the cache, and the bigger the hardware epoch,
        // the more of them collapse into one flush (Figure 13's lever).
        let mut recent: Vec<Addr> = Vec::with_capacity(64);
        for op in 0..params.ops_per_thread {
            let addr = if !recent.is_empty() && rng.gen_bool(profile.locality) {
                recent[rng.gen_range(0..recent.len())]
            } else if rng.gen_bool(profile.shared_fraction) {
                shared_base.offset(rng.gen_range(0..profile.shared_lines) * LINE_SIZE)
            } else {
                private_base.offset(rng.gen_range(0..profile.private_lines) * LINE_SIZE)
            };
            if recent.len() == 64 {
                recent.remove(0);
            }
            recent.push(addr);
            if rng.gen_bool(profile.write_ratio) {
                b.store(addr, op as u32);
            } else {
                b.load(addr);
            }
            if profile.compute_per_op > 0 {
                b.compute(profile.compute_per_op);
            }
        }
        b.tx_end();
        programs.push(b.build());
    }

    Workload {
        name: profile.name,
        programs,
        preloads: Vec::new(),
    }
}

/// Looks a profile up by name.
pub fn profile(name: &str) -> Option<&'static AppProfile> {
    PROFILES.iter().find(|p| p.name == name)
}

/// All nine proxies at the given scale, in the paper's plotting order.
pub fn all(params: &AppParams) -> Vec<Workload> {
    PROFILES.iter().map(|p| build(p, params)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_profiles_in_paper_order() {
        let names: Vec<_> = PROFILES.iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec![
                "canneal", "dedup", "freqmine", "barnes", "cholesky", "radix", "intruder", "ssca2",
                "vacation"
            ]
        );
    }

    #[test]
    fn ssca2_is_the_most_write_and_share_intensive() {
        let ssca2 = profile("ssca2").unwrap();
        for p in &PROFILES {
            assert!(
                ssca2.write_ratio >= p.write_ratio,
                "ssca2 must be the most write-intensive (vs {})",
                p.name
            );
            assert!(
                ssca2.shared_fraction * 1.5 >= p.shared_fraction,
                "ssca2 must be among the most share-intensive (vs {})",
                p.name
            );
        }
    }

    #[test]
    fn build_respects_write_ratio() {
        let params = AppParams {
            threads: 1,
            ops_per_thread: 2000,
            seed: 7,
        };
        let prof = profile("radix").unwrap();
        let wl = build(prof, &params);
        let stores = wl.total_stores() as f64;
        let ratio = stores / 2000.0;
        assert!(
            (ratio - prof.write_ratio).abs() < 0.05,
            "measured write ratio {ratio} too far from profile {}",
            prof.write_ratio
        );
    }

    #[test]
    fn private_regions_do_not_overlap() {
        let params = AppParams::tiny();
        let wl = build(profile("intruder").unwrap(), &params);
        assert_eq!(wl.programs.len(), 2);
        // Thread programs differ (different seeds, different regions).
        assert_ne!(wl.programs[0].ops(), wl.programs[1].ops());
    }

    #[test]
    fn lookup_unknown_is_none() {
        assert!(profile("doom").is_none());
    }
}
