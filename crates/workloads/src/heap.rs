//! Address-space layout helpers: bump allocation over the persistent and
//! volatile regions.

use pbm_sim::VOLATILE_BASE;
use pbm_types::{Addr, LINE_SIZE};

/// Which region an allocation lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapRegion {
    /// NVRAM-persistent data (epoch-tagged under lazy barriers).
    Persistent,
    /// Volatile data (locks, scratch) — addresses above
    /// [`VOLATILE_BASE`], never tagged or logged.
    Volatile,
}

/// A line-aligned bump allocator over the simulated address space.
///
/// Deterministic and collision-free: every workload builds its layout
/// through one of these, so two generators never alias unless they share
/// the allocator.
#[derive(Debug, Clone)]
pub struct PersistentHeap {
    persistent_next: u64,
    volatile_next: u64,
}

impl PersistentHeap {
    /// A fresh heap starting at address 0 (persistent) and
    /// [`VOLATILE_BASE`] (volatile).
    pub fn new() -> Self {
        PersistentHeap {
            persistent_next: 0,
            volatile_next: VOLATILE_BASE,
        }
    }

    /// Allocates `bytes` (rounded up to whole 64-byte lines) in `region`,
    /// returning the line-aligned base address.
    pub fn alloc(&mut self, region: HeapRegion, bytes: u64) -> Addr {
        let lines = pbm_types::LineAddr::lines_for(bytes.max(1));
        let size = lines * LINE_SIZE;
        match region {
            HeapRegion::Persistent => {
                let base = self.persistent_next;
                self.persistent_next += size;
                assert!(
                    self.persistent_next <= VOLATILE_BASE,
                    "persistent heap overflow"
                );
                Addr::new(base)
            }
            HeapRegion::Volatile => {
                let base = self.volatile_next;
                self.volatile_next += size;
                Addr::new(base)
            }
        }
    }

    /// Allocates an array of `count` objects of `bytes` each, returning the
    /// base; element `i` starts at `base + i * stride` where
    /// `stride = ceil(bytes / 64) * 64`.
    pub fn alloc_array(&mut self, region: HeapRegion, bytes: u64, count: u64) -> (Addr, u64) {
        let stride = pbm_types::LineAddr::lines_for(bytes.max(1)) * LINE_SIZE;
        let base = self.alloc(region, stride * count);
        (base, stride)
    }

    /// Bytes allocated in the persistent region so far.
    pub fn persistent_used(&self) -> u64 {
        self.persistent_next
    }
}

impl Default for PersistentHeap {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_aligned_bump() {
        let mut h = PersistentHeap::new();
        let a = h.alloc(HeapRegion::Persistent, 1);
        let b = h.alloc(HeapRegion::Persistent, 65);
        let c = h.alloc(HeapRegion::Persistent, 512);
        assert_eq!(a, Addr::new(0));
        assert_eq!(b, Addr::new(64));
        assert_eq!(c, Addr::new(64 + 128));
        assert_eq!(h.persistent_used(), 64 + 128 + 512);
    }

    #[test]
    fn volatile_region_is_separate() {
        let mut h = PersistentHeap::new();
        let v = h.alloc(HeapRegion::Volatile, 8);
        assert!(v.as_u64() >= VOLATILE_BASE);
        let p = h.alloc(HeapRegion::Persistent, 8);
        assert!(p.as_u64() < VOLATILE_BASE);
    }

    #[test]
    fn array_stride() {
        let mut h = PersistentHeap::new();
        let (base, stride) = h.alloc_array(HeapRegion::Persistent, 512, 10);
        assert_eq!(stride, 512);
        assert_eq!(base, Addr::new(0));
        let next = h.alloc(HeapRegion::Persistent, 64);
        assert_eq!(next, Addr::new(5120));
    }
}
