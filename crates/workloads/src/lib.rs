//! Workloads for the `pbm` persist-barrier study.
//!
//! Two families, mirroring §6 of the paper:
//!
//! * [`micro`] — persistent data-structure micro-benchmarks (Table 2:
//!   hash, queue, rbtree, sdg, sps) with 512-byte entries and
//!   programmer-inserted persist barriers, used to evaluate **BEP**. These
//!   are real implementations: each generator *performs* the inserts/
//!   deletes/searches against a simulated persistent heap and emits the
//!   resulting loads, stores, locks and barriers.
//! * [`apps`] — nine synthetic proxies for the PARSEC / SPLASH-2 / STAMP
//!   applications of Figure 13/14, used to evaluate **BSP bulk mode**.
//!   Each proxy is a parameterized memory-traffic generator matched to the
//!   published memory character of its namesake (write intensity, sharing
//!   degree, working-set size, locality); see the module docs for the
//!   per-app mapping. Barriers are *not* emitted — BSP inserts them in
//!   hardware.
//!
//! Two supporting modules: [`commit`] packages the Figure-10 commit
//! protocol as a minimal stand-alone workload (with an optional dropped
//! data barrier, the workload-level injected bug), and [`random`] is the
//! shared random-program generator with a barrier-misplacement knob for
//! the fuzzer's and static analyzer's negative corpus.
//!
//! # Example
//!
//! ```
//! use pbm_workloads::micro::{self, MicroParams};
//! use pbm_sim::System;
//! use pbm_types::SystemConfig;
//!
//! let params = MicroParams { threads: 2, ops_per_thread: 4, ..MicroParams::tiny() };
//! let wl = micro::queue(&params);
//! let mut cfg = SystemConfig::small_test();
//! cfg.cores = 2;
//! cfg.llc_banks = 2;
//! cfg.mcs = 2;
//! let mut sys = System::new(cfg, wl.programs.clone()).expect("valid");
//! wl.apply_preloads(&mut sys);
//! let stats = sys.run();
//! assert!(stats.transactions >= 8);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod apps;
pub mod commit;
mod heap;
pub mod micro;
pub mod random;
mod workload;

pub use heap::{HeapRegion, PersistentHeap};
pub use workload::Workload;
