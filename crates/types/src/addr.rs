//! Byte and cache-line addresses in the simulated physical address space.

use serde::{Deserialize, Serialize};
use std::fmt;

/// log2 of the cache-line size (64 B lines, per Table 1).
pub const LINE_SIZE_BITS: u32 = 6;
/// Cache-line size in bytes (64 B, per Table 1).
pub const LINE_SIZE: u64 = 1 << LINE_SIZE_BITS;

/// A byte address in the simulated (non-volatile) physical address space.
///
/// # Example
///
/// ```
/// use pbm_types::{Addr, LINE_SIZE};
/// let a = Addr::new(130);
/// assert_eq!(a.line().base(), Addr::new(128));
/// assert_eq!(a.line_offset(), 2);
/// assert_eq!(a.offset(LINE_SIZE), Addr::new(130 + LINE_SIZE));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Addr(u64);

impl Addr {
    /// Creates a byte address.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte address.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The cache line containing this byte.
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SIZE_BITS)
    }

    /// Offset of this byte within its cache line (`0..LINE_SIZE`).
    pub const fn line_offset(self) -> u64 {
        self.0 & (LINE_SIZE - 1)
    }

    /// The address `bytes` past this one.
    pub const fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A cache-line address (byte address divided by [`LINE_SIZE`]).
///
/// All coherence, epoch tagging and persistence in the simulator happen at
/// line granularity, mirroring the hardware.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a line number (not a byte address).
    pub const fn new(line_number: u64) -> Self {
        LineAddr(line_number)
    }

    /// Returns the line number.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The first byte address of this line.
    pub const fn base(self) -> Addr {
        Addr(self.0 << LINE_SIZE_BITS)
    }

    /// The line `n` lines past this one.
    pub const fn offset(self, n: u64) -> LineAddr {
        LineAddr(self.0 + n)
    }

    /// Iterates over the `n` consecutive lines starting at `self`.
    pub fn span(self, n: u64) -> impl Iterator<Item = LineAddr> {
        (self.0..self.0 + n).map(LineAddr)
    }

    /// Number of lines needed to hold `bytes` bytes starting at a line
    /// boundary (i.e. `ceil(bytes / LINE_SIZE)`).
    pub const fn lines_for(bytes: u64) -> u64 {
        bytes.div_ceil(LINE_SIZE)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn line_of_byte() {
        assert_eq!(Addr::new(0).line(), LineAddr::new(0));
        assert_eq!(Addr::new(63).line(), LineAddr::new(0));
        assert_eq!(Addr::new(64).line(), LineAddr::new(1));
        assert_eq!(Addr::new(64).line_offset(), 0);
        assert_eq!(Addr::new(65).line_offset(), 1);
    }

    #[test]
    fn base_roundtrip() {
        let l = LineAddr::new(10);
        assert_eq!(l.base().line(), l);
        assert_eq!(l.base().as_u64(), 640);
    }

    #[test]
    fn span_is_contiguous() {
        let lines: Vec<_> = LineAddr::new(5).span(3).collect();
        assert_eq!(
            lines,
            vec![LineAddr::new(5), LineAddr::new(6), LineAddr::new(7)]
        );
    }

    #[test]
    fn lines_for_rounds_up() {
        assert_eq!(LineAddr::lines_for(0), 0);
        assert_eq!(LineAddr::lines_for(1), 1);
        assert_eq!(LineAddr::lines_for(64), 1);
        assert_eq!(LineAddr::lines_for(65), 2);
        assert_eq!(LineAddr::lines_for(512), 8);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Addr::new(255).to_string(), "0xff");
        assert_eq!(LineAddr::new(255).to_string(), "L0xff");
    }

    proptest! {
        #[test]
        fn prop_line_base_le_addr(raw in 0u64..u64::MAX / 2) {
            let a = Addr::new(raw);
            prop_assert!(a.line().base() <= a);
            prop_assert!(a.as_u64() - a.line().base().as_u64() < LINE_SIZE);
        }

        #[test]
        fn prop_line_offset_consistent(raw in 0u64..u64::MAX / 2) {
            let a = Addr::new(raw);
            prop_assert_eq!(
                a.line().base().as_u64() + a.line_offset(),
                a.as_u64()
            );
        }
    }
}
