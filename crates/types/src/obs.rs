//! Observability vocabulary: structured trace events and metric samples.
//!
//! These types describe *what happened* inside a simulation at a given
//! cycle. They live in `pbm-types` so that every layer (core, sim, noc,
//! nvram) can emit them without depending on the `pbm-obs` crate, which
//! owns collection, sampling and export.

use crate::ids::{BankId, CoreId, EpochId, EpochTag, McId, NodeId};
use crate::time::Cycle;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why an epoch flush was requested — the attribution behind Figure 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FlushReason {
    /// An intra- or inter-thread epoch conflict demanded the flush
    /// (an *online* persist).
    Conflict,
    /// A cache eviction needed a tagged victim persisted first.
    Eviction,
    /// Proactive flushing on epoch completion (PF, offline).
    Proactive,
    /// The in-flight epoch window (3-bit epoch id) filled up.
    BackPressure,
    /// An EP-model barrier stalled for the epoch (rule E2).
    Barrier,
    /// End-of-run drain.
    Drain,
}

impl FlushReason {
    /// Every variant, in a fixed order (for tables and round-trip codecs).
    pub const ALL: [FlushReason; 6] = [
        FlushReason::Conflict,
        FlushReason::Eviction,
        FlushReason::Proactive,
        FlushReason::BackPressure,
        FlushReason::Barrier,
        FlushReason::Drain,
    ];

    /// Stable lower-case name used in exported traces.
    pub const fn name(self) -> &'static str {
        match self {
            FlushReason::Conflict => "conflict",
            FlushReason::Eviction => "eviction",
            FlushReason::Proactive => "proactive",
            FlushReason::BackPressure => "backpressure",
            FlushReason::Barrier => "barrier",
            FlushReason::Drain => "drain",
        }
    }

    /// Parses the name produced by [`FlushReason::name`].
    pub fn parse(s: &str) -> Option<FlushReason> {
        FlushReason::ALL.into_iter().find(|r| r.name() == s)
    }
}

impl fmt::Display for FlushReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a core is stalled (for cycle attribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum StallKind {
    /// Waiting for an epoch to persist online (conflict or eviction).
    OnlinePersist,
    /// Stalled at a persist barrier (EP rule E2, or BEP in-flight-epoch
    /// back-pressure).
    Barrier,
}

impl StallKind {
    /// Every variant, in a fixed order.
    pub const ALL: [StallKind; 2] = [StallKind::OnlinePersist, StallKind::Barrier];

    /// Stable lower-case name used in exported traces.
    pub const fn name(self) -> &'static str {
        match self {
            StallKind::OnlinePersist => "online_persist",
            StallKind::Barrier => "barrier",
        }
    }

    /// Parses the name produced by [`StallKind::name`].
    pub fn parse(s: &str) -> Option<StallKind> {
        StallKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

impl fmt::Display for StallKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Lifecycle phase of an epoch, mirroring the arbiter FSM in `pbm-core`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EpochPhase {
    /// Open and accepting stores.
    Ongoing,
    /// Closed by a barrier, not yet flushing.
    Completed,
    /// FlushEpoch issued; persists in flight.
    Flushing,
    /// PersistCMP received; durable.
    Persisted,
}

impl EpochPhase {
    /// Every variant, in FSM order.
    pub const ALL: [EpochPhase; 4] = [
        EpochPhase::Ongoing,
        EpochPhase::Completed,
        EpochPhase::Flushing,
        EpochPhase::Persisted,
    ];

    /// Stable lower-case name used in exported traces.
    pub const fn name(self) -> &'static str {
        match self {
            EpochPhase::Ongoing => "ongoing",
            EpochPhase::Completed => "completed",
            EpochPhase::Flushing => "flushing",
            EpochPhase::Persisted => "persisted",
        }
    }

    /// Parses the name produced by [`EpochPhase::name`].
    pub fn parse(s: &str) -> Option<EpochPhase> {
        EpochPhase::ALL.into_iter().find(|p| p.name() == s)
    }
}

impl fmt::Display for EpochPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Virtual-network class of a traced NoC message (mirrors
/// `pbm-noc::MessageClass` without the dependency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NocClass {
    /// Coherence/persistence control (single flit).
    Control,
    /// Data responses (line-sized).
    Data,
    /// Writebacks / persists (line-sized).
    Writeback,
}

impl NocClass {
    /// Every variant, in vnet order.
    pub const ALL: [NocClass; 3] = [NocClass::Control, NocClass::Data, NocClass::Writeback];

    /// Stable lower-case name used in exported traces.
    pub const fn name(self) -> &'static str {
        match self {
            NocClass::Control => "control",
            NocClass::Data => "data",
            NocClass::Writeback => "writeback",
        }
    }

    /// Parses the name produced by [`NocClass::name`].
    pub fn parse(s: &str) -> Option<NocClass> {
        NocClass::ALL.into_iter().find(|c| c.name() == s)
    }
}

impl fmt::Display for NocClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One cycle-stamped observation from the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Simulated cycle at which the event happened.
    pub cycle: Cycle,
    /// What happened.
    pub kind: TraceEventKind,
}

impl TraceEvent {
    /// Creates an event.
    pub const fn new(cycle: Cycle, kind: TraceEventKind) -> Self {
        TraceEvent { cycle, kind }
    }
}

/// The payload of a [`TraceEvent`] — one per instrumentation point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEventKind {
    /// An epoch moved to a new lifecycle phase.
    EpochPhase {
        /// The epoch.
        tag: EpochTag,
        /// The phase entered.
        phase: EpochPhase,
    },
    /// A flush was requested for an epoch that had no prior request — the
    /// causal anchor of its end-to-end persist latency. The gap to the
    /// `FlushEpoch` event is the arbiter's dependence-wait plus queueing
    /// behind the core's earlier in-flight epochs.
    FlushRequested {
        /// The epoch whose flush was requested.
        tag: EpochTag,
        /// Why the flush was requested (first attribution; a later
        /// conflict may still upgrade the reason seen at `FlushEpoch`).
        reason: FlushReason,
    },
    /// The arbiter issued FlushEpoch to the LLC banks (handshake step 1).
    FlushEpoch {
        /// The epoch being flushed.
        tag: EpochTag,
        /// Why the flush was requested.
        reason: FlushReason,
    },
    /// One bank's flush pipeline became unblocked for an epoch (handshake
    /// step 2 issue point). The event is stamped with the issue cycle —
    /// the maximum of the four gate times it also carries, which let an
    /// offline analyzer attribute the gate delay to the component that
    /// held it (command delivery, L1 writebacks, undo-log write-ahead,
    /// checkpoint completion).
    BankFlushStart {
        /// The epoch being flushed.
        tag: EpochTag,
        /// The bank.
        bank: BankId,
        /// When the FlushEpoch control message reached this bank.
        cmd_at: Cycle,
        /// When the last L1 writeback destined for this bank arrived.
        wb_at: Cycle,
        /// When the epoch's undo-log records were durable (BSP; flush
        /// start otherwise).
        log_at: Cycle,
        /// When the processor-state checkpoint completed (BSP, bank 0
        /// only; flush start otherwise).
        chk_at: Cycle,
        /// Number of lines this bank persists for the epoch.
        lines: u32,
    },
    /// One line write of an epoch flush traversed bank → MC → NVRAM →
    /// PersistAck (handshake step 2). Stamped with the bank's issue cycle;
    /// the four milestones it carries decompose the write's round trip.
    PersistWrite {
        /// The epoch being flushed.
        tag: EpochTag,
        /// The issuing bank.
        bank: BankId,
        /// The memory controller that served the write.
        mc: McId,
        /// When the writeback reached the controller.
        mc_at: Cycle,
        /// When the controller started the device write (queue exit).
        begin: Cycle,
        /// When the line was durable (PersistAck generated).
        durable: Cycle,
        /// When the PersistAck reached the bank.
        ack_at: Cycle,
    },
    /// A bank finished persisting its lines for an epoch (handshake step 3).
    BankAck {
        /// The epoch.
        tag: EpochTag,
        /// The acknowledging bank.
        bank: BankId,
    },
    /// The arbiter broadcast PersistCMP for an epoch (handshake step 4).
    PersistCmp {
        /// The epoch that is now durable.
        tag: EpochTag,
    },
    /// An inter-thread dependence was recorded in an IDT register pair
    /// instead of flushing online.
    IdtRecord {
        /// Epoch that must persist first.
        source: EpochTag,
        /// Epoch that depends on it.
        dependent: EpochTag,
    },
    /// All IDT register pairs were busy; the conflict fell back to an
    /// online flush.
    IdtOverflow {
        /// Epoch that must persist first.
        source: EpochTag,
        /// Epoch that depends on it.
        dependent: EpochTag,
    },
    /// The deadlock-avoidance mechanism split an epoch (§3.3).
    DeadlockSplit {
        /// Core whose current epoch was cut.
        core: CoreId,
        /// The epoch that was closed by the split.
        epoch: EpochId,
    },
    /// An intra-thread epoch conflict was detected (§3.2).
    ConflictIntra {
        /// Core that touched its own unpersisted earlier epoch's line.
        core: CoreId,
        /// The earlier epoch that must now flush.
        epoch: EpochId,
    },
    /// An inter-thread epoch conflict was detected (§3.1).
    ConflictInter {
        /// Epoch owning the conflicting line.
        source: EpochTag,
        /// Epoch of the accessing core.
        dependent: EpochTag,
    },
    /// A core stalled.
    StallBegin {
        /// The stalled core.
        core: CoreId,
        /// Why it stalled.
        kind: StallKind,
        /// The epoch it is waiting on.
        tag: EpochTag,
    },
    /// A previously stalled core resumed.
    StallEnd {
        /// The core that resumed.
        core: CoreId,
        /// Why it had stalled.
        kind: StallKind,
        /// Cycles spent stalled.
        waited: Cycle,
    },
    /// A message was injected into the on-chip network.
    NocSend {
        /// Injecting node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Virtual-network class.
        class: NocClass,
        /// Cycle at which the message will be delivered.
        arrival: Cycle,
    },
}

impl TraceEventKind {
    /// Stable snake_case name of the event kind (used as the Chrome trace
    /// event name and in the JSON codec).
    pub const fn name(&self) -> &'static str {
        match self {
            TraceEventKind::EpochPhase { .. } => "epoch_phase",
            TraceEventKind::FlushRequested { .. } => "flush_requested",
            TraceEventKind::FlushEpoch { .. } => "flush_epoch",
            TraceEventKind::BankFlushStart { .. } => "bank_flush_start",
            TraceEventKind::PersistWrite { .. } => "persist_write",
            TraceEventKind::BankAck { .. } => "bank_ack",
            TraceEventKind::PersistCmp { .. } => "persist_cmp",
            TraceEventKind::IdtRecord { .. } => "idt_record",
            TraceEventKind::IdtOverflow { .. } => "idt_overflow",
            TraceEventKind::DeadlockSplit { .. } => "deadlock_split",
            TraceEventKind::ConflictIntra { .. } => "conflict_intra",
            TraceEventKind::ConflictInter { .. } => "conflict_inter",
            TraceEventKind::StallBegin { .. } => "stall_begin",
            TraceEventKind::StallEnd { .. } => "stall_end",
            TraceEventKind::NocSend { .. } => "noc_send",
        }
    }
}

/// One row of the periodic time-series sample (exported as metrics CSV).
///
/// Counter fields are *cumulative* at the sample instant, so consumers can
/// difference adjacent rows for rates (e.g. NVRAM write bandwidth); gauge
/// fields (`mc_queue_depth`, `stalled_cores`) are instantaneous.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricSample {
    /// Sample instant.
    pub cycle: Cycle,
    /// Writes queued across all memory controllers and not yet retired
    /// (instantaneous).
    pub mc_queue_depth: u64,
    /// Cumulative line writes to NVRAM (data + log + checkpoint).
    pub nvram_writes: u64,
    /// Cumulative line reads from NVRAM.
    pub nvram_reads: u64,
    /// Cumulative messages injected into the NoC.
    pub noc_messages: u64,
    /// Cumulative epochs fully persisted.
    pub epochs_persisted: u64,
    /// Cores currently parked on a stall (instantaneous).
    pub stalled_cores: u32,
    /// Cumulative cycles stalled on online persists (all cores).
    pub online_stall_cycles: u64,
    /// Cumulative cycles stalled at barriers (all cores).
    pub barrier_stall_cycles: u64,
}

impl MetricSample {
    /// The CSV header matching [`MetricSample::csv_row`].
    pub const CSV_HEADER: &'static str = "cycle,mc_queue_depth,nvram_writes,nvram_reads,\
noc_messages,epochs_persisted,stalled_cores,online_stall_cycles,barrier_stall_cycles";

    /// Renders the sample as one CSV row (no trailing newline).
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{}",
            self.cycle.as_u64(),
            self.mc_queue_depth,
            self.nvram_writes,
            self.nvram_reads,
            self.noc_messages,
            self.epochs_persisted,
            self.stalled_cores,
            self.online_stall_cycles,
            self.barrier_stall_cycles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for r in FlushReason::ALL {
            assert_eq!(FlushReason::parse(r.name()), Some(r));
        }
        for k in StallKind::ALL {
            assert_eq!(StallKind::parse(k.name()), Some(k));
        }
        for p in EpochPhase::ALL {
            assert_eq!(EpochPhase::parse(p.name()), Some(p));
        }
        for c in NocClass::ALL {
            assert_eq!(NocClass::parse(c.name()), Some(c));
        }
        assert_eq!(FlushReason::parse("bogus"), None);
    }

    #[test]
    fn event_kind_names_are_distinct() {
        let tag = EpochTag::new(CoreId::new(0), EpochId::FIRST);
        let kinds = [
            TraceEventKind::EpochPhase {
                tag,
                phase: EpochPhase::Ongoing,
            },
            TraceEventKind::FlushRequested {
                tag,
                reason: FlushReason::Barrier,
            },
            TraceEventKind::FlushEpoch {
                tag,
                reason: FlushReason::Conflict,
            },
            TraceEventKind::BankFlushStart {
                tag,
                bank: BankId::new(0),
                cmd_at: Cycle::new(4),
                wb_at: Cycle::new(5),
                log_at: Cycle::new(6),
                chk_at: Cycle::new(7),
                lines: 2,
            },
            TraceEventKind::PersistWrite {
                tag,
                bank: BankId::new(0),
                mc: McId::new(1),
                mc_at: Cycle::new(10),
                begin: Cycle::new(11),
                durable: Cycle::new(12),
                ack_at: Cycle::new(13),
            },
            TraceEventKind::BankAck {
                tag,
                bank: BankId::new(0),
            },
            TraceEventKind::PersistCmp { tag },
            TraceEventKind::IdtRecord {
                source: tag,
                dependent: tag,
            },
            TraceEventKind::IdtOverflow {
                source: tag,
                dependent: tag,
            },
            TraceEventKind::DeadlockSplit {
                core: CoreId::new(0),
                epoch: EpochId::FIRST,
            },
            TraceEventKind::ConflictIntra {
                core: CoreId::new(0),
                epoch: EpochId::FIRST,
            },
            TraceEventKind::ConflictInter {
                source: tag,
                dependent: tag,
            },
            TraceEventKind::StallBegin {
                core: CoreId::new(0),
                kind: StallKind::Barrier,
                tag,
            },
            TraceEventKind::StallEnd {
                core: CoreId::new(0),
                kind: StallKind::Barrier,
                waited: Cycle::new(5),
            },
            TraceEventKind::NocSend {
                src: NodeId::Core(CoreId::new(0)),
                dst: NodeId::Bank(BankId::new(1)),
                class: NocClass::Control,
                arrival: Cycle::new(9),
            },
        ];
        let mut names: Vec<_> = kinds.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), kinds.len());
    }

    #[test]
    fn metric_sample_csv_matches_header() {
        let s = MetricSample {
            cycle: Cycle::new(100),
            mc_queue_depth: 3,
            ..MetricSample::default()
        };
        let header_cols = MetricSample::CSV_HEADER.split(',').count();
        let row = s.csv_row();
        assert_eq!(row.split(',').count(), header_cols);
        assert!(row.starts_with("100,3,"));
    }
}
