//! Identifiers for hardware components and epochs.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_newtype {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(
            Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
            Serialize, Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a raw index.
            pub const fn new(raw: u32) -> Self {
                $name(raw)
            }

            /// Returns the raw index.
            pub const fn as_u32(self) -> u32 {
                self.0
            }

            /// Returns the raw index as a `usize`, for vector indexing.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                $name(raw)
            }
        }

        impl From<usize> for $name {
            fn from(raw: usize) -> Self {
                $name(raw as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_newtype!(
    /// A hardware core (and its private L1 cache / epoch arbiter).
    CoreId,
    "C"
);
id_newtype!(
    /// A bank of the shared last-level cache.
    BankId,
    "B"
);
id_newtype!(
    /// A memory controller fronting NVRAM.
    McId,
    "MC"
);
id_newtype!(
    /// A software thread. The simulator pins one thread per core, so
    /// `ThreadId` and [`CoreId`] indices coincide, but the types are kept
    /// distinct to keep software-level and hardware-level code honest.
    ThreadId,
    "T"
);

impl ThreadId {
    /// The core this thread is pinned to (1 thread per core).
    pub const fn core(self) -> CoreId {
        CoreId::new(self.0)
    }
}

impl CoreId {
    /// The thread pinned to this core (1 thread per core).
    pub const fn thread(self) -> ThreadId {
        ThreadId::new(self.0)
    }
}

/// A node on the on-chip interconnect: a core tile, an LLC bank or a
/// memory controller. The concrete placement is decided by `pbm-noc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NodeId {
    /// A core tile (core + private L1 + epoch arbiter).
    Core(CoreId),
    /// A last-level-cache bank tile.
    Bank(BankId),
    /// A memory-controller tile.
    Mc(McId),
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Core(c) => write!(f, "{c}"),
            NodeId::Bank(b) => write!(f, "{b}"),
            NodeId::Mc(m) => write!(f, "{m}"),
        }
    }
}

/// A per-core epoch sequence number.
///
/// Architecturally the paper stores a 3-bit epoch id in cache tags (8
/// in-flight epochs); the simulator tracks the full monotone `u64` and
/// models the 3-bit width by limiting in-flight epochs
/// ([`SystemConfig::inflight_epochs`](crate::SystemConfig)). Epoch 0 is the
/// first epoch of every thread.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct EpochId(u64);

impl EpochId {
    /// The first epoch of a thread.
    pub const FIRST: EpochId = EpochId(0);

    /// Creates an epoch id from a raw sequence number.
    pub const fn new(raw: u64) -> Self {
        EpochId(raw)
    }

    /// Returns the raw sequence number.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The epoch after this one in program order.
    pub const fn next(self) -> EpochId {
        EpochId(self.0 + 1)
    }

    /// The epoch before this one in program order, or `None` for the first.
    pub const fn prev(self) -> Option<EpochId> {
        match self.0 {
            0 => None,
            n => Some(EpochId(n - 1)),
        }
    }
}

impl fmt::Display for EpochId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

/// The (core, epoch) pair that tags a dirty cache line, mirroring the
/// paper's CoreID + EpochID cache-tag extension (§4.3).
///
/// Two tags are equal only if both the owning core and the epoch match; the
/// pair globally identifies an epoch across the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EpochTag {
    /// Core that last modified the line.
    pub core: CoreId,
    /// Epoch (of that core) in which the line was last modified.
    pub epoch: EpochId,
}

impl EpochTag {
    /// Creates a tag.
    pub const fn new(core: CoreId, epoch: EpochId) -> Self {
        EpochTag { core, epoch }
    }

    /// True if `self` precedes `other` in the same core's program order.
    /// Tags from different cores are unordered by program order.
    pub fn precedes_same_core(self, other: EpochTag) -> bool {
        self.core == other.core && self.epoch < other.epoch
    }
}

impl fmt::Display for EpochTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.core, self.epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip_and_display() {
        let c = CoreId::new(7);
        assert_eq!(c.index(), 7);
        assert_eq!(c.as_u32(), 7);
        assert_eq!(c.to_string(), "C7");
        assert_eq!(BankId::from(3usize).to_string(), "B3");
        assert_eq!(McId::from(1u32).to_string(), "MC1");
        assert_eq!(ThreadId::new(9).to_string(), "T9");
    }

    #[test]
    fn thread_core_pinning() {
        assert_eq!(ThreadId::new(4).core(), CoreId::new(4));
        assert_eq!(CoreId::new(4).thread(), ThreadId::new(4));
    }

    #[test]
    fn epoch_sequence() {
        let e = EpochId::FIRST;
        assert_eq!(e.prev(), None);
        let n = e.next();
        assert_eq!(n, EpochId::new(1));
        assert_eq!(n.prev(), Some(e));
        assert!(e < n);
    }

    #[test]
    fn epoch_tag_ordering() {
        let a = EpochTag::new(CoreId::new(0), EpochId::new(1));
        let b = EpochTag::new(CoreId::new(0), EpochId::new(2));
        let c = EpochTag::new(CoreId::new(1), EpochId::new(9));
        assert!(a.precedes_same_core(b));
        assert!(!b.precedes_same_core(a));
        assert!(!a.precedes_same_core(c), "cross-core tags are unordered");
        assert_eq!(a.to_string(), "C0:E1");
    }

    #[test]
    fn node_display() {
        assert_eq!(NodeId::Core(CoreId::new(2)).to_string(), "C2");
        assert_eq!(NodeId::Bank(BankId::new(2)).to_string(), "B2");
        assert_eq!(NodeId::Mc(McId::new(2)).to_string(), "MC2");
    }
}
