//! System configuration (Table 1 of the paper) and its builder.

use crate::error::ConfigError;
use crate::kinds::{BarrierKind, FlushMode, PersistencyKind};
use serde::{Deserialize, Serialize};

/// Full configuration of the simulated multicore, mirroring Table 1 of the
/// paper plus the persistency-machinery knobs from §4.3 and §5.2.
///
/// Construct with [`SystemConfig::micro48`] for the paper's exact setup, or
/// with [`SystemConfig::builder`] / [`ConfigBuilder`] to vary parameters.
/// A `SystemConfig` is always internally consistent: it can only be obtained
/// through the validating builder or the checked presets.
///
/// # Example
///
/// ```
/// use pbm_types::{BarrierKind, SystemConfig};
///
/// let cfg = SystemConfig::builder()
///     .cores(8)
///     .barrier(BarrierKind::LbPp)
///     .build()?;
/// assert_eq!(cfg.cores, 8);
/// assert_eq!(cfg.llc_banks, 8); // one bank tile per core by default
/// # Ok::<(), pbm_types::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of cores (1 thread per core). Paper: 32.
    pub cores: usize,
    /// Reorder-buffer size; bounds outstanding memory operations per core.
    /// Paper: 192.
    pub rob_size: usize,
    /// Store (write) buffer entries per core. Paper: 32.
    pub write_buffer: usize,
    /// L1 data cache size in bytes. Paper: 32 KiB.
    pub l1_size: u64,
    /// L1 associativity. Paper: 4.
    pub l1_assoc: usize,
    /// L1 hit latency in cycles. Paper: 3.
    pub l1_latency: u64,
    /// Number of LLC banks (tiles). Paper: 32 (one per core).
    pub llc_banks: usize,
    /// Per-bank LLC size in bytes. Paper: 1 MiB.
    pub llc_bank_size: u64,
    /// LLC associativity. Paper: 16.
    pub llc_assoc: usize,
    /// LLC access latency in cycles. Paper: 30.
    pub llc_latency: u64,
    /// Number of memory controllers. Paper: 4, at the mesh corners.
    pub mcs: usize,
    /// NVRAM write (persist) latency in cycles. Paper: 360.
    pub nvram_write_latency: u64,
    /// NVRAM read latency in cycles. Paper: 240.
    pub nvram_read_latency: u64,
    /// Concurrent in-flight NVRAM accesses per memory controller (device
    /// banking). Not in Table 1; chosen so 4 MCs provide adequate bandwidth
    /// for 32 cores, as the paper states.
    pub mc_parallelism: usize,
    /// Mesh rows. Paper: 4 (so 32 tiles form a 4x8 mesh).
    pub mesh_rows: usize,
    /// Flit size in bytes. Paper: 16.
    pub flit_bytes: u64,
    /// Per-hop router+link traversal latency in cycles.
    pub hop_latency: u64,
    /// Maximum in-flight (un-persisted) epochs per core. Paper: 8
    /// (3-bit EpochID).
    pub inflight_epochs: usize,
    /// IDT dependence/inform register pairs per in-flight epoch. Paper: 4.
    pub idt_pairs: usize,
    /// Persist-barrier implementation under test.
    pub barrier: BarrierKind,
    /// Persistency model being enforced.
    pub persistency: PersistencyKind,
    /// Whether epoch flushes invalidate lines (`clflush`) or not (`clwb`).
    pub flush_mode: FlushMode,
    /// BSP bulk mode: hardware cuts an epoch every this many dynamic stores.
    /// Paper sweeps 300 / 1000 / 10000 (Figure 13).
    pub bsp_epoch_size: u64,
    /// BSP bulk mode: undo logging enabled (disabled for LB++NOLOG).
    pub logging: bool,
    /// BSP bulk mode: bytes of processor state checkpointed per epoch
    /// (general-purpose + special + privilege + non-AVX FP registers, §6).
    pub checkpoint_bytes: u64,
}

impl SystemConfig {
    /// The paper's evaluation platform (Table 1): 32 OoO cores, 32 KiB 4-way
    /// L1s, 32 x 1 MiB 16-way LLC banks, 4 memory controllers, 4-row mesh,
    /// 360/240-cycle NVRAM write/read.
    ///
    /// Defaults to the LB++ barrier enforcing BEP with non-invalidating
    /// flushes; override via the fields or start from [`Self::builder`].
    pub fn micro48() -> Self {
        SystemConfig {
            cores: 32,
            rob_size: 192,
            write_buffer: 32,
            l1_size: 32 * 1024,
            l1_assoc: 4,
            l1_latency: 3,
            llc_banks: 32,
            llc_bank_size: 1024 * 1024,
            llc_assoc: 16,
            llc_latency: 30,
            mcs: 4,
            nvram_write_latency: 360,
            nvram_read_latency: 240,
            mc_parallelism: 16,
            mesh_rows: 4,
            flit_bytes: 16,
            hop_latency: 3,
            inflight_epochs: 8,
            idt_pairs: 4,
            barrier: BarrierKind::LbPp,
            persistency: PersistencyKind::BufferedEpoch,
            flush_mode: FlushMode::NonInvalidating,
            bsp_epoch_size: 10_000,
            logging: true,
            checkpoint_bytes: 512,
        }
    }

    /// A small, fast configuration for unit and property tests: 4 cores,
    /// 4 banks, tiny caches (so conflicts and evictions actually happen),
    /// otherwise the paper's latencies.
    pub fn small_test() -> Self {
        let mut cfg = Self::micro48();
        cfg.cores = 4;
        cfg.llc_banks = 4;
        cfg.mesh_rows = 2;
        cfg.mcs = 2;
        cfg.l1_size = 4 * 1024;
        cfg.llc_bank_size = 32 * 1024;
        cfg
    }

    /// Starts building a configuration from the [`Self::micro48`] defaults.
    pub fn builder() -> ConfigBuilder {
        ConfigBuilder::new()
    }

    /// Number of cache sets in each L1.
    pub fn l1_sets(&self) -> usize {
        (self.l1_size / (crate::LINE_SIZE * self.l1_assoc as u64)) as usize
    }

    /// Number of cache sets in each LLC bank.
    pub fn llc_sets(&self) -> usize {
        (self.llc_bank_size / (crate::LINE_SIZE * self.llc_assoc as u64)) as usize
    }

    /// Mesh columns, derived from tile count and row count.
    pub fn mesh_cols(&self) -> usize {
        self.cores.max(self.llc_banks).div_ceil(self.mesh_rows)
    }

    /// Validates the configuration, returning it unchanged if consistent.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending parameter if any count
    /// is zero, a power-of-two requirement is violated, or the cache/mesh
    /// geometry is inconsistent.
    pub fn validate(self) -> Result<Self, ConfigError> {
        fn nonzero(v: u64, what: &'static str) -> Result<(), ConfigError> {
            if v == 0 {
                Err(ConfigError::ZeroCount { what })
            } else {
                Ok(())
            }
        }
        nonzero(self.cores as u64, "cores")?;
        nonzero(self.llc_banks as u64, "llc banks")?;
        nonzero(self.mcs as u64, "memory controllers")?;
        nonzero(self.mesh_rows as u64, "mesh rows")?;
        nonzero(self.l1_assoc as u64, "l1 associativity")?;
        nonzero(self.llc_assoc as u64, "llc associativity")?;
        nonzero(self.inflight_epochs as u64, "in-flight epochs")?;
        nonzero(self.write_buffer as u64, "write buffer")?;
        nonzero(self.rob_size as u64, "rob size")?;
        nonzero(self.bsp_epoch_size, "bsp epoch size")?;
        nonzero(self.mc_parallelism as u64, "mc parallelism")?;
        nonzero(self.flit_bytes, "flit bytes")?;

        if !(self.llc_banks as u64).is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                what: "llc banks",
                value: self.llc_banks as u64,
            });
        }
        if !(self.mcs as u64).is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                what: "memory controllers",
                value: self.mcs as u64,
            });
        }
        for (what, size, assoc) in [
            ("l1", self.l1_size, self.l1_assoc as u64),
            ("llc bank", self.llc_bank_size, self.llc_assoc as u64),
        ] {
            let way_bytes = crate::LINE_SIZE * assoc;
            if size % way_bytes != 0 || size / way_bytes == 0 {
                return Err(ConfigError::CacheGeometry {
                    what,
                    detail: format!("{size} B does not split into {assoc} ways of 64 B lines"),
                });
            }
            let sets = size / way_bytes;
            if !sets.is_power_of_two() {
                return Err(ConfigError::NotPowerOfTwo {
                    what: "cache set count",
                    value: sets,
                });
            }
        }
        let slots = self.mesh_rows * self.mesh_cols();
        let tiles = self.cores.max(self.llc_banks);
        if slots < tiles {
            return Err(ConfigError::MeshTooSmall {
                nodes: tiles,
                slots,
            });
        }
        Ok(self)
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::micro48()
    }
}

/// Builder for [`SystemConfig`], starting from the paper's Table 1 values.
///
/// All setters take and return `&mut self` (non-consuming builder);
/// [`ConfigBuilder::build`] validates and produces the config.
#[derive(Debug, Clone)]
pub struct ConfigBuilder {
    cfg: SystemConfig,
}

impl ConfigBuilder {
    /// Creates a builder seeded with [`SystemConfig::micro48`].
    pub fn new() -> Self {
        ConfigBuilder {
            cfg: SystemConfig::micro48(),
        }
    }

    /// Sets the core count and, by default, one LLC bank per core.
    pub fn cores(&mut self, cores: usize) -> &mut Self {
        self.cfg.cores = cores;
        self.cfg.llc_banks = cores;
        self.cfg.mesh_rows = self.cfg.mesh_rows.min(cores.max(1));
        self
    }

    /// Sets the LLC bank count independently of the core count.
    pub fn llc_banks(&mut self, banks: usize) -> &mut Self {
        self.cfg.llc_banks = banks;
        self
    }

    /// Sets the memory-controller count.
    pub fn mcs(&mut self, mcs: usize) -> &mut Self {
        self.cfg.mcs = mcs;
        self
    }

    /// Sets L1 size (bytes) and associativity.
    pub fn l1(&mut self, size: u64, assoc: usize) -> &mut Self {
        self.cfg.l1_size = size;
        self.cfg.l1_assoc = assoc;
        self
    }

    /// Sets per-bank LLC size (bytes) and associativity.
    pub fn llc(&mut self, size: u64, assoc: usize) -> &mut Self {
        self.cfg.llc_bank_size = size;
        self.cfg.llc_assoc = assoc;
        self
    }

    /// Sets NVRAM write/read latencies (cycles).
    pub fn nvram_latency(&mut self, write: u64, read: u64) -> &mut Self {
        self.cfg.nvram_write_latency = write;
        self.cfg.nvram_read_latency = read;
        self
    }

    /// Selects the persist-barrier implementation.
    pub fn barrier(&mut self, kind: BarrierKind) -> &mut Self {
        self.cfg.barrier = kind;
        self
    }

    /// Selects the persistency model.
    pub fn persistency(&mut self, kind: PersistencyKind) -> &mut Self {
        self.cfg.persistency = kind;
        self
    }

    /// Selects the flush mode (`clflush` vs `clwb`).
    pub fn flush_mode(&mut self, mode: FlushMode) -> &mut Self {
        self.cfg.flush_mode = mode;
        self
    }

    /// Sets the BSP bulk-mode epoch size in dynamic stores.
    pub fn bsp_epoch_size(&mut self, stores: u64) -> &mut Self {
        self.cfg.bsp_epoch_size = stores;
        self
    }

    /// Enables or disables BSP undo logging (LB++NOLOG when `false`).
    pub fn logging(&mut self, enabled: bool) -> &mut Self {
        self.cfg.logging = enabled;
        self
    }

    /// Sets the in-flight epoch limit per core.
    pub fn inflight_epochs(&mut self, n: usize) -> &mut Self {
        self.cfg.inflight_epochs = n;
        self
    }

    /// Sets the IDT register pairs per epoch.
    pub fn idt_pairs(&mut self, n: usize) -> &mut Self {
        self.cfg.idt_pairs = n;
        self
    }

    /// Sets the mesh row count.
    pub fn mesh_rows(&mut self, rows: usize) -> &mut Self {
        self.cfg.mesh_rows = rows;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// See [`SystemConfig::validate`].
    pub fn build(&self) -> Result<SystemConfig, ConfigError> {
        self.cfg.clone().validate()
    }
}

impl Default for ConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro48_matches_table1() {
        let c = SystemConfig::micro48().validate().expect("valid preset");
        assert_eq!(c.cores, 32);
        assert_eq!(c.rob_size, 192);
        assert_eq!(c.write_buffer, 32);
        assert_eq!(c.l1_size, 32 * 1024);
        assert_eq!(c.l1_assoc, 4);
        assert_eq!(c.l1_latency, 3);
        assert_eq!(c.llc_bank_size, 1024 * 1024);
        assert_eq!(c.llc_assoc, 16);
        assert_eq!(c.llc_latency, 30);
        assert_eq!(c.mcs, 4);
        assert_eq!(c.nvram_write_latency, 360);
        assert_eq!(c.nvram_read_latency, 240);
        assert_eq!(c.mesh_rows, 4);
        assert_eq!(c.flit_bytes, 16);
        assert_eq!(c.inflight_epochs, 8);
        assert_eq!(c.idt_pairs, 4);
    }

    #[test]
    fn derived_geometry() {
        let c = SystemConfig::micro48();
        assert_eq!(c.l1_sets(), 128); // 32 KiB / (64 B * 4 ways)
        assert_eq!(c.llc_sets(), 1024); // 1 MiB / (64 B * 16 ways)
        assert_eq!(c.mesh_cols(), 8); // 32 tiles over 4 rows
    }

    #[test]
    fn small_test_is_valid() {
        SystemConfig::small_test().validate().expect("valid");
    }

    #[test]
    fn builder_scales_banks_with_cores() {
        let c = SystemConfig::builder().cores(8).build().unwrap();
        assert_eq!(c.llc_banks, 8);
    }

    #[test]
    fn rejects_zero_cores() {
        let mut c = SystemConfig::micro48();
        c.cores = 0;
        assert_eq!(
            c.validate().unwrap_err(),
            ConfigError::ZeroCount { what: "cores" }
        );
    }

    #[test]
    fn rejects_non_pow2_banks() {
        let mut c = SystemConfig::micro48();
        c.llc_banks = 3;
        assert!(matches!(
            c.validate().unwrap_err(),
            ConfigError::NotPowerOfTwo {
                what: "llc banks",
                ..
            }
        ));
    }

    #[test]
    fn rejects_bad_cache_geometry() {
        let mut c = SystemConfig::micro48();
        c.l1_size = 1000; // not divisible into 4 ways of 64 B
        assert!(matches!(
            c.validate().unwrap_err(),
            ConfigError::CacheGeometry { what: "l1", .. }
        ));
    }

    #[test]
    fn rejects_tiny_mesh() {
        let mut c = SystemConfig::micro48();
        c.mesh_rows = 1;
        // 1 row x mesh_cols(=32) still fits; shrink further via cols by
        // forcing more tiles than slots.
        c.llc_banks = 64;
        c.mesh_rows = 4; // 4x16 = 64 slots, still fits
        assert!(c.clone().validate().is_ok());
        c.llc_banks = 128; // 4x32 = 128 slots, fits exactly
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_setters_apply() {
        let c = SystemConfig::builder()
            .cores(4)
            .mcs(2)
            .l1(8 * 1024, 2)
            .llc(64 * 1024, 8)
            .nvram_latency(100, 50)
            .barrier(BarrierKind::Lb)
            .persistency(PersistencyKind::BufferedStrictBulk)
            .flush_mode(FlushMode::Invalidating)
            .bsp_epoch_size(300)
            .logging(false)
            .inflight_epochs(4)
            .idt_pairs(2)
            .mesh_rows(2)
            .build()
            .unwrap();
        assert_eq!(c.mcs, 2);
        assert_eq!(c.l1_size, 8 * 1024);
        assert_eq!(c.llc_assoc, 8);
        assert_eq!(c.nvram_write_latency, 100);
        assert_eq!(c.barrier, BarrierKind::Lb);
        assert_eq!(c.persistency, PersistencyKind::BufferedStrictBulk);
        assert_eq!(c.flush_mode, FlushMode::Invalidating);
        assert_eq!(c.bsp_epoch_size, 300);
        assert!(!c.logging);
        assert_eq!(c.inflight_epochs, 4);
        assert_eq!(c.idt_pairs, 2);
        assert_eq!(c.mesh_rows, 2);
    }
}
