//! Deliberately injected protocol bugs (`bug-inject` feature only).
//!
//! The crash-consistency harness in `pbm-check` validates that it has
//! teeth by switching on one of these known-broken variants and asserting
//! that the fuzzer flags it. Each bug disables exactly one of the
//! correctness mechanisms the paper's design relies on; the hardware
//! checker machinery keeps recording ground truth, so the resulting
//! ordering/atomicity violations are observable at some crash cycle.
//!
//! The active bug is process-global (an atomic), mirroring how a real
//! hardware bug is a property of the whole chip, not of one run. Campaigns
//! that exercise different bugs must therefore run sequentially; cases
//! *under the same bug* may still run in parallel.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

/// One deliberately broken protocol variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InjectedBug {
    /// An inter-thread conflict is resolved by *pretending* to record the
    /// IDT dependence: the requestor proceeds but the source arbiter never
    /// learns it must persist first (§3.1 edge dropped).
    DropIdtEdge,
    /// The epoch arbiter treats the *first* `BankAck` as flush completion
    /// (step ③ of Figure 8 short-circuited), so a core's epoch E+1 starts
    /// flushing while E's remaining banks are still writing.
    PrematureBankAck,
    /// The §3.3 deadlock-avoidance split is skipped: dependences and
    /// forced evictions land on *ongoing* epochs.
    SkipDeadlockSplit,
    /// BSP undo logging is silently dropped: no pre-image is written before
    /// a line's first modification in an epoch, so recovery cannot undo a
    /// partially-persisted epoch (§5.2.1 broken).
    SkipUndoLog,
    /// The *workload-level* bug: the programmer's data persist barrier is
    /// dropped from the Figure-10 commit protocol, so the commit flag
    /// shares an epoch with the data it publishes. The hardware is
    /// blameless and stays BEP-consistent — the crash invariant broken is
    /// the application's (flag durable ⇒ data durable). Hooked in
    /// `pbm_workloads::commit` via the bug campaign rather than in the
    /// protocol model.
    DroppedBarrier,
}

impl InjectedBug {
    /// Every injected bug, in a stable order.
    pub const ALL: [InjectedBug; 5] = [
        InjectedBug::DropIdtEdge,
        InjectedBug::PrematureBankAck,
        InjectedBug::SkipDeadlockSplit,
        InjectedBug::SkipUndoLog,
        InjectedBug::DroppedBarrier,
    ];

    /// Stable CLI / artifact name of the bug.
    pub const fn name(self) -> &'static str {
        match self {
            InjectedBug::DropIdtEdge => "drop-idt-edge",
            InjectedBug::PrematureBankAck => "premature-bank-ack",
            InjectedBug::SkipDeadlockSplit => "skip-deadlock-split",
            InjectedBug::SkipUndoLog => "skip-undo-log",
            InjectedBug::DroppedBarrier => "dropped-barrier",
        }
    }

    /// Parses a [`Self::name`] string.
    pub fn from_name(name: &str) -> Option<InjectedBug> {
        Self::ALL.into_iter().find(|b| b.name() == name)
    }

    fn code(self) -> u8 {
        match self {
            InjectedBug::DropIdtEdge => 1,
            InjectedBug::PrematureBankAck => 2,
            InjectedBug::SkipDeadlockSplit => 3,
            InjectedBug::SkipUndoLog => 4,
            InjectedBug::DroppedBarrier => 5,
        }
    }

    fn from_code(code: u8) -> Option<InjectedBug> {
        Self::ALL.into_iter().find(|b| b.code() == code)
    }
}

impl fmt::Display for InjectedBug {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The process-wide active bug (0 = none).
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// Activates `bug` (or deactivates all with `None`) process-wide.
pub fn set_active(bug: Option<InjectedBug>) {
    ACTIVE.store(bug.map_or(0, InjectedBug::code), Ordering::SeqCst);
}

/// The currently active bug, if any.
pub fn active() -> Option<InjectedBug> {
    InjectedBug::from_code(ACTIVE.load(Ordering::Relaxed))
}

/// True if `bug` is the active one.
pub fn is_active(bug: InjectedBug) -> bool {
    active() == Some(bug)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Single test: the active-bug switch is process-global, so separate
    // #[test] functions would race under the parallel test runner.
    #[test]
    fn names_roundtrip_and_switch_works() {
        for b in InjectedBug::ALL {
            assert_eq!(InjectedBug::from_name(b.name()), Some(b));
            assert_eq!(b.to_string(), b.name());
        }
        assert_eq!(InjectedBug::from_name("no-such-bug"), None);
        assert_eq!(active(), None);
        set_active(Some(InjectedBug::DropIdtEdge));
        assert!(is_active(InjectedBug::DropIdtEdge));
        assert!(!is_active(InjectedBug::SkipUndoLog));
        set_active(None);
        assert_eq!(active(), None);
    }
}
