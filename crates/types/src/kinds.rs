//! Experiment axes: barrier implementations, persistency models, flush modes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which persist-barrier implementation the memory system uses.
///
/// These are the configurations compared throughout the paper's evaluation
/// (§7): the lazy barrier of Condit et al. (`Lb`), the two optimizations
/// applied individually (`LbIdt`, `LbPf`), and their combination `LbPp`
/// (written "LB++" in the paper). `NoPersistency` and `WriteThrough` are the
/// lower/upper baselines used in §7.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BarrierKind {
    /// No persistency enforcement at all ("NP"): plain write-back caches
    /// over NVRAM. The baseline every BSP result is normalized to.
    NoPersistency,
    /// Naive strict persistency: every store writes through to NVRAM and
    /// the next store waits for the persist ack (§7.2 reports ~8x over NP).
    WriteThrough,
    /// The state-of-the-art lazy barrier of Condit et al. (BPFS): buffered
    /// epochs, flushes triggered reactively by conflicts and evictions.
    Lb,
    /// `Lb` plus Inter-thread Dependence Tracking (§3.1).
    LbIdt,
    /// `Lb` plus Proactive Flushing (§3.2).
    LbPf,
    /// The paper's contribution, LB++ = LB + IDT + PF.
    LbPp,
}

impl BarrierKind {
    /// True if inter-thread conflicts are resolved by recording a dependence
    /// (IDT) instead of an online flush.
    pub const fn has_idt(self) -> bool {
        matches!(self, BarrierKind::LbIdt | BarrierKind::LbPp)
    }

    /// True if completed epochs are flushed proactively (PF).
    pub const fn has_pf(self) -> bool {
        matches!(self, BarrierKind::LbPf | BarrierKind::LbPp)
    }

    /// True if the configuration buffers epochs at all (i.e. is a lazy
    /// barrier variant rather than a baseline).
    pub const fn is_buffered(self) -> bool {
        matches!(
            self,
            BarrierKind::Lb | BarrierKind::LbIdt | BarrierKind::LbPf | BarrierKind::LbPp
        )
    }

    /// All lazy-barrier variants, in the order the paper's figures plot them.
    pub const LAZY_VARIANTS: [BarrierKind; 4] = [
        BarrierKind::Lb,
        BarrierKind::LbIdt,
        BarrierKind::LbPf,
        BarrierKind::LbPp,
    ];
}

impl fmt::Display for BarrierKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BarrierKind::NoPersistency => "NP",
            BarrierKind::WriteThrough => "WT",
            BarrierKind::Lb => "LB",
            BarrierKind::LbIdt => "LB+IDT",
            BarrierKind::LbPf => "LB+PF",
            BarrierKind::LbPp => "LB++",
        };
        f.write_str(s)
    }
}

/// Which persistency model the system enforces (Pelley et al., ISCA'14,
/// as refined in §2.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PersistencyKind {
    /// Strict persistency: every store persists before the next becomes
    /// visible. Modeled for the Figure 1(a) timeline and the write-through
    /// baseline.
    Strict,
    /// Epoch persistency: program continues within an epoch but a persist
    /// barrier stalls until the previous epoch has fully persisted (rule E2).
    Epoch,
    /// Buffered epoch persistency: barriers never stall (except for
    /// back-pressure); the memory system persists epochs in order offline.
    /// Programmer-inserted barriers (§5.1).
    BufferedEpoch,
    /// Buffered strict persistency in bulk mode: hardware cuts epochs every
    /// `epoch_size` dynamic stores and uses undo logging + register
    /// checkpoints for atomicity (§5.2).
    BufferedStrictBulk,
}

impl fmt::Display for PersistencyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PersistencyKind::Strict => "SP",
            PersistencyKind::Epoch => "EP",
            PersistencyKind::BufferedEpoch => "BEP",
            PersistencyKind::BufferedStrictBulk => "BSP-bulk",
        };
        f.write_str(s)
    }
}

/// Whether a cache-line flush invalidates the line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlushMode {
    /// `clflush`-style: the line is written back *and invalidated*. Later
    /// accesses re-fetch from NVRAM, disrupting locality.
    Invalidating,
    /// `clwb`-style: the line is written back and stays valid (clean).
    /// The paper uses this mode everywhere after finding it ~30% faster.
    NonInvalidating,
}

impl FlushMode {
    /// True for the `clflush`-style mode.
    pub const fn invalidates(self) -> bool {
        matches!(self, FlushMode::Invalidating)
    }
}

impl fmt::Display for FlushMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FlushMode::Invalidating => "clflush",
            FlushMode::NonInvalidating => "clwb",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idt_pf_composition() {
        assert!(!BarrierKind::Lb.has_idt());
        assert!(!BarrierKind::Lb.has_pf());
        assert!(BarrierKind::LbIdt.has_idt());
        assert!(!BarrierKind::LbIdt.has_pf());
        assert!(!BarrierKind::LbPf.has_idt());
        assert!(BarrierKind::LbPf.has_pf());
        assert!(BarrierKind::LbPp.has_idt());
        assert!(BarrierKind::LbPp.has_pf());
    }

    #[test]
    fn buffered_classification() {
        assert!(!BarrierKind::NoPersistency.is_buffered());
        assert!(!BarrierKind::WriteThrough.is_buffered());
        for k in BarrierKind::LAZY_VARIANTS {
            assert!(k.is_buffered());
        }
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(BarrierKind::LbPp.to_string(), "LB++");
        assert_eq!(BarrierKind::LbIdt.to_string(), "LB+IDT");
        assert_eq!(PersistencyKind::BufferedEpoch.to_string(), "BEP");
        assert_eq!(FlushMode::NonInvalidating.to_string(), "clwb");
    }

    #[test]
    fn flush_mode_invalidates() {
        assert!(FlushMode::Invalidating.invalidates());
        assert!(!FlushMode::NonInvalidating.invalidates());
    }
}
