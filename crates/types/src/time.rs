//! Simulation time, measured in core clock cycles.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (or a duration), in core clock cycles.
///
/// `Cycle` is a transparent `u64` newtype so arithmetic is explicit and
/// cycle counts can never be confused with other integer quantities such as
/// store counts or addresses.
///
/// # Example
///
/// ```
/// use pbm_types::Cycle;
/// let t = Cycle::ZERO + Cycle::new(30);
/// assert_eq!(t + Cycle::new(3), Cycle::new(33));
/// assert_eq!((t - Cycle::new(10)).as_u64(), 20);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Cycle(u64);

impl Cycle {
    /// Time zero, the start of every simulation.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a cycle count from a raw `u64`.
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// Returns the raw cycle count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Saturating subtraction; clamps at [`Cycle::ZERO`].
    pub const fn saturating_sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0.saturating_sub(rhs.0))
    }

    /// Returns the later of two times.
    pub fn max(self, other: Cycle) -> Cycle {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for Cycle {
    type Output = Cycle;
    fn add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign for Cycle {
    fn add_assign(&mut self, rhs: Cycle) {
        self.0 += rhs.0;
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for Cycle {
    type Output = Cycle;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs > self` (time cannot go negative).
    fn sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 - rhs.0)
    }
}

impl From<u64> for Cycle {
    fn from(raw: u64) -> Self {
        Cycle(raw)
    }
}

impl From<Cycle> for u64 {
    fn from(c: Cycle) -> u64 {
        c.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(Cycle::default(), Cycle::ZERO);
    }

    #[test]
    fn add_and_sub_roundtrip() {
        let t = Cycle::new(100) + Cycle::new(23);
        assert_eq!(t, Cycle::new(123));
        assert_eq!(t - Cycle::new(23), Cycle::new(100));
    }

    #[test]
    fn add_u64() {
        let mut t = Cycle::new(5);
        t += 7u64;
        assert_eq!(t + 3u64, Cycle::new(15));
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(Cycle::new(3).saturating_sub(Cycle::new(10)), Cycle::ZERO);
    }

    #[test]
    fn ordering_matches_raw() {
        assert!(Cycle::new(1) < Cycle::new(2));
        assert_eq!(Cycle::new(7).max(Cycle::new(3)), Cycle::new(7));
        assert_eq!(Cycle::new(3).max(Cycle::new(7)), Cycle::new(7));
    }

    #[test]
    fn display_has_suffix() {
        assert_eq!(Cycle::new(42).to_string(), "42cy");
    }

    #[test]
    fn conversions() {
        let c: Cycle = 9u64.into();
        let raw: u64 = c.into();
        assert_eq!(raw, 9);
    }
}
