//! Error types for configuration validation.

use std::error::Error;
use std::fmt;

/// An invalid [`SystemConfig`](crate::SystemConfig) was requested.
///
/// Returned by [`ConfigBuilder::build`](crate::ConfigBuilder::build); every
/// variant names the offending parameter so the message is actionable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A count parameter (cores, banks, controllers, ...) was zero.
    ZeroCount {
        /// Which parameter was zero.
        what: &'static str,
    },
    /// A parameter must be a power of two but was not.
    NotPowerOfTwo {
        /// Which parameter.
        what: &'static str,
        /// The offending value.
        value: u64,
    },
    /// A cache size is not divisible into the requested sets/ways.
    CacheGeometry {
        /// Which cache.
        what: &'static str,
        /// Explanation of the mismatch.
        detail: String,
    },
    /// The mesh cannot host the requested number of nodes.
    MeshTooSmall {
        /// Nodes that need placing.
        nodes: usize,
        /// Available mesh positions.
        slots: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroCount { what } => {
                write!(f, "{what} must be nonzero")
            }
            ConfigError::NotPowerOfTwo { what, value } => {
                write!(f, "{what} must be a power of two, got {value}")
            }
            ConfigError::CacheGeometry { what, detail } => {
                write!(f, "invalid {what} geometry: {detail}")
            }
            ConfigError::MeshTooSmall { nodes, slots } => {
                write!(f, "mesh has {slots} slots but {nodes} nodes need placing")
            }
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_name_the_parameter() {
        let e = ConfigError::ZeroCount { what: "cores" };
        assert_eq!(e.to_string(), "cores must be nonzero");
        let e = ConfigError::NotPowerOfTwo {
            what: "llc banks",
            value: 3,
        };
        assert!(e.to_string().contains("llc banks"));
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
    }
}
