//! Core vocabulary types for the `pbm` persist-barrier simulator.
//!
//! This crate defines the identifiers, addresses, time units, configuration
//! and statistics shared by every other crate in the workspace. It contains
//! no behaviour beyond small, well-tested helpers: the architectural logic
//! (epochs, barriers, flush protocol) lives in [`pbm-core`], the timing model
//! in [`pbm-sim`].
//!
//! # Example
//!
//! ```
//! use pbm_types::{Addr, LineAddr, SystemConfig};
//!
//! let cfg = SystemConfig::micro48(); // Table 1 of the MICRO-48 paper
//! assert_eq!(cfg.cores, 32);
//! let a = Addr::new(0x1234);
//! let line: LineAddr = a.line();
//! assert_eq!(line.base().as_u64(), 0x1200);
//! ```
//!
//! [`pbm-core`]: https://docs.rs/pbm-core
//! [`pbm-sim`]: https://docs.rs/pbm-sim

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

#[cfg(feature = "bug-inject")]
pub mod bug;

mod addr;
mod config;
mod error;
mod ids;
mod kinds;
mod obs;
mod stats;
mod time;

pub use addr::{Addr, LineAddr, LINE_SIZE, LINE_SIZE_BITS};
pub use config::{ConfigBuilder, SystemConfig};
pub use error::ConfigError;
pub use ids::{BankId, CoreId, EpochId, EpochTag, McId, NodeId, ThreadId};
pub use kinds::{BarrierKind, FlushMode, PersistencyKind};
pub use obs::{
    EpochPhase, FlushReason, MetricSample, NocClass, StallKind, TraceEvent, TraceEventKind,
};
pub use stats::{Histogram, SimStats};
pub use time::Cycle;
