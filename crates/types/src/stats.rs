//! Simulation statistics: counters and histograms.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A fixed-bucket power-of-two histogram for latency-like quantities.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))`; bucket 0 also counts 0.
///
/// # Example
///
/// ```
/// use pbm_types::Histogram;
/// let mut h = Histogram::new();
/// h.record(3);
/// h.record(1000);
/// assert_eq!(h.count(), 2);
/// assert_eq!(h.max(), 1000);
/// assert!(h.mean() > 500.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 64],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of samples, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-th percentile (0–100), estimated from the bucket structure.
    ///
    /// Returns the upper bound of the smallest bucket whose cumulative
    /// count reaches `p` percent of samples, clamped to the largest sample
    /// actually observed. Returns 0 for an empty histogram.
    ///
    /// # Example
    ///
    /// ```
    /// use pbm_types::Histogram;
    /// let mut h = Histogram::new();
    /// for _ in 0..99 { h.record(10); }
    /// h.record(1000);
    /// assert_eq!(h.percentile(50.0), 15); // bucket [8, 16)
    /// assert_eq!(h.percentile(100.0), 1000);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.count == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                let upper = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// The occupied power-of-two buckets as `(lower, upper, count)`
    /// triples, in ascending order. Bucket `[2^i, 2^(i+1))` is reported
    /// with `lower = 2^i` (0 for bucket 0, which also counts zero samples)
    /// and `upper = 2^(i+1) - 1`; empty buckets are skipped, so JSON
    /// exports stay compact.
    ///
    /// # Example
    ///
    /// ```
    /// use pbm_types::Histogram;
    /// let mut h = Histogram::new();
    /// h.record(3);
    /// h.record(3);
    /// h.record(40);
    /// assert_eq!(h.nonzero_buckets(), vec![(2, 3, 2), (32, 63, 1)]);
    /// ```
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let lower = if i == 0 { 0 } else { 1u64 << i };
                let upper = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                (lower, upper, n)
            })
            .collect()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for Histogram {
    /// One-line summary with percentiles; the alternate flag (`{:#}`)
    /// appends a bar chart of the occupied power-of-two buckets.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} p50={} p95={} p99={} max={}",
            self.count,
            self.mean(),
            self.percentile(50.0),
            self.percentile(95.0),
            self.percentile(99.0),
            self.max
        )?;
        if !f.alternate() || self.count == 0 {
            return Ok(());
        }
        const BAR_WIDTH: u64 = 40;
        let lo = self.buckets.iter().position(|&n| n > 0).unwrap_or(0);
        let hi = self.buckets.iter().rposition(|&n| n > 0).unwrap_or(0);
        let peak = *self.buckets.iter().max().unwrap_or(&1);
        for (i, &n) in self.buckets.iter().enumerate().take(hi + 1).skip(lo) {
            let bar = (n * BAR_WIDTH).div_ceil(peak.max(1)) as usize;
            let lower = if i == 0 { 0 } else { 1u64 << i };
            writeln!(f)?;
            write!(f, "  {:>12} |{:<40}| {}", lower, "#".repeat(bar), n)?;
        }
        Ok(())
    }
}

/// Aggregated counters from one simulation run.
///
/// Every counter is cumulative over the whole run; per-core statistics are
/// summed by the simulator before being reported. The field groups mirror
/// the quantities the paper reports: execution time, epoch/conflict
/// accounting (Figure 12), persist traffic, and stall attribution.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Total execution time in cycles (max over cores).
    pub cycles: u64,
    /// Committed load operations.
    pub loads: u64,
    /// Committed store operations.
    pub stores: u64,
    /// Persist barriers executed (programmer- or hardware-inserted).
    pub barriers: u64,
    /// Completed application-level transactions (micro-benchmarks only).
    pub transactions: u64,

    /// L1 hits (loads + stores).
    pub l1_hits: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// LLC hits.
    pub llc_hits: u64,
    /// LLC misses (serviced by NVRAM).
    pub llc_misses: u64,

    /// Cache-line reads from NVRAM.
    pub nvram_reads: u64,
    /// Cache-line writes (persists) to NVRAM, excluding log/checkpoint.
    pub nvram_writes: u64,
    /// The subset of [`SimStats::nvram_writes`] performed by epoch flushes
    /// (the Figure 8 handshake), excluding evictions and write-through
    /// persists. Equals the number of distinct dirty lines per flushed
    /// epoch, which is why proactive flushing (§4) cannot change it — the
    /// differential checker in `pbm-check` asserts exactly that.
    pub epoch_flush_writes: u64,
    /// Undo-log line writes to NVRAM (BSP).
    pub log_writes: u64,
    /// Processor-state checkpoint line writes to NVRAM (BSP).
    pub checkpoint_writes: u64,

    /// Epochs closed (persist barrier retired or hardware cut).
    pub epochs_created: u64,
    /// Epochs fully persisted.
    pub epochs_persisted: u64,
    /// Epochs whose flush was triggered by a conflict (online persist).
    pub epochs_conflict_flushed: u64,
    /// Epochs flushed proactively on completion (PF, offline persist).
    pub epochs_proactive_flushed: u64,
    /// Epochs flushed because a dirty line had to be evicted.
    pub epochs_eviction_flushed: u64,

    /// Intra-thread epoch conflicts detected (§3.2).
    pub conflicts_intra: u64,
    /// Inter-thread epoch conflicts detected (§3.1).
    pub conflicts_inter: u64,
    /// Inter-thread dependences recorded in IDT registers instead of
    /// flushing online.
    pub idt_recorded: u64,
    /// Inter-thread conflicts that fell back to an online flush because all
    /// IDT register pairs were in use.
    pub idt_overflows: u64,
    /// Epoch splits performed by the deadlock-avoidance mechanism (§3.3).
    pub deadlock_splits: u64,

    /// Cycles cores spent stalled waiting for online epoch persists.
    pub online_persist_stall_cycles: u64,
    /// Cycles cores spent blocked on demand loads.
    pub load_cycles: u64,
    /// Number of times a core parked waiting for an epoch persist.
    pub parks: u64,
    /// Cycles cores spent spinning on contended locks.
    pub lock_wait_cycles: u64,
    /// Cycles cores spent stalled at persist barriers (EP rule E2, or BEP
    /// in-flight-epoch back-pressure).
    pub barrier_stall_cycles: u64,
    /// Messages injected into the on-chip network.
    pub noc_messages: u64,
    /// Flits injected into the on-chip network.
    pub noc_flits: u64,

    /// Distribution of epoch flush latencies (cycles from flush start to
    /// PersistCMP).
    pub epoch_flush_latency: Histogram,
}

impl SimStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fraction of epochs whose flush was conflict-triggered, in percent —
    /// the quantity plotted in Figure 12. Returns 0.0 if no epoch ever
    /// flushed.
    pub fn conflicting_epoch_pct(&self) -> f64 {
        let flushed = self.epochs_persisted;
        if flushed == 0 {
            0.0
        } else {
            100.0 * self.epochs_conflict_flushed as f64 / flushed as f64
        }
    }

    /// Total epoch conflicts of both kinds.
    pub fn total_conflicts(&self) -> u64 {
        self.conflicts_intra + self.conflicts_inter
    }

    /// Transactions per million cycles (micro-benchmark throughput metric).
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.transactions as f64 * 1.0e6 / self.cycles as f64
        }
    }

    /// Merges per-core statistics into an aggregate: counters add, `cycles`
    /// takes the max (wall-clock is the slowest core).
    pub fn merge(&mut self, other: &SimStats) {
        self.cycles = self.cycles.max(other.cycles);
        self.loads += other.loads;
        self.stores += other.stores;
        self.barriers += other.barriers;
        self.transactions += other.transactions;
        self.l1_hits += other.l1_hits;
        self.l1_misses += other.l1_misses;
        self.llc_hits += other.llc_hits;
        self.llc_misses += other.llc_misses;
        self.nvram_reads += other.nvram_reads;
        self.nvram_writes += other.nvram_writes;
        self.epoch_flush_writes += other.epoch_flush_writes;
        self.log_writes += other.log_writes;
        self.checkpoint_writes += other.checkpoint_writes;
        self.epochs_created += other.epochs_created;
        self.epochs_persisted += other.epochs_persisted;
        self.epochs_conflict_flushed += other.epochs_conflict_flushed;
        self.epochs_proactive_flushed += other.epochs_proactive_flushed;
        self.epochs_eviction_flushed += other.epochs_eviction_flushed;
        self.conflicts_intra += other.conflicts_intra;
        self.conflicts_inter += other.conflicts_inter;
        self.idt_recorded += other.idt_recorded;
        self.idt_overflows += other.idt_overflows;
        self.deadlock_splits += other.deadlock_splits;
        self.online_persist_stall_cycles += other.online_persist_stall_cycles;
        self.load_cycles += other.load_cycles;
        self.parks += other.parks;
        self.lock_wait_cycles += other.lock_wait_cycles;
        self.barrier_stall_cycles += other.barrier_stall_cycles;
        self.noc_messages += other.noc_messages;
        self.noc_flits += other.noc_flits;
        self.epoch_flush_latency.merge(&other.epoch_flush_latency);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1030);
        assert_eq!(h.max(), 1024);
        assert!((h.mean() - 206.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        a.record(5);
        let mut b = Histogram::new();
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 100);
    }

    #[test]
    fn empty_histogram_mean_is_zero() {
        assert_eq!(Histogram::new().mean(), 0.0);
    }

    #[test]
    fn percentiles_follow_buckets() {
        let mut h = Histogram::new();
        assert_eq!(h.percentile(50.0), 0);
        for _ in 0..90 {
            h.record(100); // bucket [64, 128)
        }
        for _ in 0..10 {
            h.record(5000); // bucket [4096, 8192)
        }
        assert_eq!(h.percentile(50.0), 127);
        assert_eq!(h.percentile(90.0), 127);
        assert_eq!(h.percentile(95.0), 5000); // clamped to observed max
        assert_eq!(h.percentile(99.0), 5000);
        assert_eq!(h.percentile(0.0), 127); // smallest non-empty bucket
    }

    #[test]
    fn percentile_of_single_sample_is_that_sample() {
        let mut h = Histogram::new();
        h.record(42);
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), 42);
        }
    }

    #[test]
    fn display_has_percentiles_and_alternate_bars() {
        let mut h = Histogram::new();
        h.record(3);
        h.record(300);
        let plain = format!("{h}");
        assert!(plain.contains("p50="));
        assert!(!plain.contains('#'));
        let bars = format!("{h:#}");
        assert!(bars.contains('#'));
        assert!(bars.lines().count() > 1);
    }

    #[test]
    fn conflicting_epoch_pct() {
        let mut s = SimStats::new();
        assert_eq!(s.conflicting_epoch_pct(), 0.0);
        s.epochs_persisted = 10;
        s.epochs_conflict_flushed = 9;
        assert!((s.conflicting_epoch_pct() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn throughput() {
        let mut s = SimStats::new();
        assert_eq!(s.throughput(), 0.0);
        s.transactions = 100;
        s.cycles = 1_000_000;
        assert!((s.throughput() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn merge_takes_max_cycles_and_adds_counters() {
        let mut a = SimStats {
            cycles: 10,
            loads: 1,
            ..SimStats::new()
        };
        let b = SimStats {
            cycles: 20,
            loads: 2,
            conflicts_inter: 3,
            ..SimStats::new()
        };
        a.merge(&b);
        assert_eq!(a.cycles, 20);
        assert_eq!(a.loads, 3);
        assert_eq!(a.conflicts_inter, 3);
        assert_eq!(a.total_conflicts(), 3);
    }
}
