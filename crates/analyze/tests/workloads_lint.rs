//! Lint every built-in workload: the micro-benchmarks under BEP rules,
//! the application proxies under BSP rules, and the commit protocol in
//! both its healthy and deliberately broken forms.
//!
//! The CI `analyze` binary runs the same checks at paper scale; this test
//! keeps them honest at test scale.

use pbm_analyze::{analyze, AnalyzeConfig, DiagKind};
use pbm_workloads::apps::{self, AppParams};
use pbm_workloads::commit;
use pbm_workloads::micro::{self, MicroParams};

#[test]
fn micros_have_no_unsuppressed_errors_under_bep() {
    let params = MicroParams {
        threads: 4,
        ops_per_thread: 6,
        ..MicroParams::tiny()
    };
    for wl in micro::all(&params) {
        let report = analyze(&wl.programs, &AnalyzeConfig::bep());
        assert_eq!(
            report.error_count(),
            0,
            "{}: {}",
            wl.name,
            report.render_human(wl.name)
        );
    }
}

#[test]
fn apps_have_no_unsuppressed_errors_under_bsp() {
    for wl in apps::all(&AppParams::tiny()) {
        let report = analyze(&wl.programs, &AnalyzeConfig::bsp(7));
        assert_eq!(
            report.error_count(),
            0,
            "{}: {}",
            wl.name,
            report.render_human(wl.name)
        );
    }
}

#[test]
fn healthy_commit_protocol_is_clean() {
    let wl = commit::publisher_consumer(3, false);
    let report = analyze(&wl.programs, &AnalyzeConfig::bep());
    assert_eq!(report.error_count(), 0, "{}", report.render_human("commit"));
    assert!(report.of_kind(DiagKind::UnorderedPublication).is_empty());
}

#[test]
fn dropped_barrier_commit_protocol_is_flagged() {
    let wl = commit::publisher_consumer(3, true);
    let report = analyze(&wl.programs, &AnalyzeConfig::bep());
    let pubs = report.of_kind(DiagKind::UnorderedPublication);
    assert!(
        !pubs.is_empty(),
        "dropped barrier not flagged: {}",
        report.render_human("commit-broken")
    );
    assert!(report.error_count() >= 1);
    // The finding anchors on the publisher's flag store (line 0).
    assert!(pubs.iter().any(|d| d.lines.contains(&commit::FLAG_LINE)));
}
