//! Static soundness over the crash-consistency corpus: every shrunk
//! reproducer the fuzzer ever minted must also be flagged *statically*.
//!
//! The corpus cases are program shapes that exposed injected protocol or
//! workload bugs dynamically; a static analyzer that misses all of them
//! would be decorative. Artifacts are analyzed under BEP rules regardless
//! of the persistency they were recorded under — the corpus programs are
//! barrier-annotated shapes and BEP is the strictest lens.

use pbm_analyze::{analyze, AnalyzeConfig, DiagKind, Severity};
use pbm_check::artifact::decode_case;
use std::path::Path;

fn corpus_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/corpus"))
}

#[test]
fn every_corpus_case_is_statically_flagged() {
    let mut checked = 0;
    for entry in std::fs::read_dir(corpus_dir()).expect("corpus dir exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|e| e != "json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable artifact");
        let case = decode_case(&text).expect("artifact parses");
        let report = analyze(&case.spec.programs, &AnalyzeConfig::bep());
        assert!(
            report
                .unsuppressed()
                .any(|d| d.severity >= Severity::Warning),
            "{}: statically silent\n{}",
            path.display(),
            report.render_human(&path.display().to_string())
        );
        checked += 1;
    }
    assert!(checked >= 5, "only {checked} corpus artifacts found");
}

#[test]
fn expected_kinds_fire_per_artifact() {
    let expect = [
        ("bug-drop-idt-edge.json", DiagKind::PersistencyRace),
        ("bug-premature-bank-ack.json", DiagKind::TailWrites),
        ("bug-skip-deadlock-split.json", DiagKind::PersistencyRace),
        ("bug-skip-undo-log.json", DiagKind::TailWrites),
        ("bug-dropped-barrier.json", DiagKind::UnorderedPublication),
    ];
    for (name, kind) in expect {
        let text = std::fs::read_to_string(corpus_dir().join(name)).expect("artifact exists");
        let case = decode_case(&text).expect("artifact parses");
        let report = analyze(&case.spec.programs, &AnalyzeConfig::bep());
        assert!(
            !report.of_kind(kind).is_empty(),
            "{name}: expected {kind}\n{}",
            report.render_human(name)
        );
    }
}
