//! Static-vs-dynamic cross-validation against the simulator.
//!
//! Three properties tie the analyzer's verdicts to what the hardware model
//! actually does:
//!
//! 1. **Soundness of "clean"**: a workload the analyzer reports error-free
//!    never produces a dynamic consistency violation, across ≥ 8 schedule
//!    perturbations of the exhaustive crash sweep.
//! 2. **Sensitivity**: the misbarrier negative corpus (barriers dropped
//!    from healthy programs) is always flagged.
//! 3. **Split prediction**: the simulator's §3.3 deadlock-split counter
//!    never exceeds the static `predicted_split_bound` (modulo
//!    eviction-triggered splits, which the bound deliberately excludes).

use pbm_analyze::{analyze, AnalyzeConfig, DiagKind};
use pbm_check::{run_case, CaseSpec};
use pbm_types::{BarrierKind, PersistencyKind};
use pbm_workloads::random::{
    apply_misbarrier, programs, random_programs, Misbarrier, RandomProgramParams,
};
use proptest::prelude::*;

fn case(programs: Vec<pbm_sim::Program>, seed: u64, perturb: Option<u64>) -> CaseSpec {
    CaseSpec {
        programs,
        barrier: BarrierKind::LbPp,
        persistency: PersistencyKind::BufferedEpoch,
        perturb_seed: perturb,
        bsp_epoch_size: 7,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property 1 + 3: statically error-free => dynamically consistent
    /// across perturbed schedules, and the split bound holds.
    #[test]
    fn static_clean_implies_dynamic_clean(
        input in programs(4, RandomProgramParams::disjoint(30, 4)),
    ) {
        let (seed, progs) = input;
        let report = analyze(&progs, &AnalyzeConfig::bep());
        if report.error_count() != 0 {
            continue; // the property conditions on a clean static verdict
        }
        for perturb in [None, Some(1), Some(2), Some(3), Some(4), Some(5), Some(6), Some(7)] {
            let spec = case(progs.clone(), seed, perturb.map(|p| seed.wrapping_add(p)));
            let ok = run_case(&spec)
                .unwrap_or_else(|f| panic!("seed {seed} perturb {perturb:?}: {f}"));
            if ok.stats.epochs_eviction_flushed == 0 {
                prop_assert!(
                    ok.stats.deadlock_splits <= report.stats.predicted_split_bound,
                    "seed {seed}: {} splits > predicted bound {}",
                    ok.stats.deadlock_splits,
                    report.stats.predicted_split_bound,
                );
            }
        }
    }

    /// Property 2: dropping every barrier from a healthy program set is
    /// always caught (tail writes at minimum — the final epoch is never
    /// closed).
    #[test]
    fn misbarriered_programs_are_flagged(
        input in programs(4, RandomProgramParams::mixed(40, 8))
            .misbarrier(Misbarrier::DROP_ALL),
    ) {
        let (_seed, progs) = input;
        if progs.iter().all(|p| p.store_count() == 0) {
            continue; // nothing persistent to mis-order
        }
        let report = analyze(&progs, &AnalyzeConfig::bep());
        prop_assert!(
            !report.of_kind(DiagKind::TailWrites).is_empty(),
            "dropped barriers left no tail-writes finding"
        );
    }
}

/// Property 3 on a conflict-heavy deterministic shape: shared-store mixed
/// programs actually exercise inter-thread dependences and (sometimes)
/// splits, so the bound comparison is not vacuous.
#[test]
fn split_bound_holds_on_shared_store_programs() {
    for seed in 0..10u64 {
        let progs = random_programs(seed, 4, &RandomProgramParams::mixed(40, 6));
        let report = analyze(&progs, &AnalyzeConfig::bep());
        let ok = run_case(&case(progs, seed, None)).expect("real design is consistent");
        if ok.stats.epochs_eviction_flushed == 0 {
            assert!(
                ok.stats.deadlock_splits <= report.stats.predicted_split_bound,
                "seed {seed}: {} splits > bound {}",
                ok.stats.deadlock_splits,
                report.stats.predicted_split_bound,
            );
        }
    }
}

/// The deterministic guarantee behind property 1: the healthy commit
/// protocol and the dropped-barrier variant sit on opposite sides of the
/// static verdict, and the healthy one is dynamically clean under every
/// perturbation tried.
#[test]
fn commit_protocol_is_the_boundary_case() {
    use pbm_workloads::commit;
    let healthy = commit::publisher_consumer(2, false);
    let report = analyze(&healthy.programs, &AnalyzeConfig::bep());
    assert_eq!(report.error_count(), 0);
    for perturb in 0..8u64 {
        let spec = case(healthy.programs.clone(), 0, Some(perturb * 31 + 1));
        run_case(&spec).expect("healthy commit protocol is consistent");
    }
    let broken = commit::publisher_consumer(2, true);
    let report = analyze(&broken.programs, &AnalyzeConfig::bep());
    assert!(report.error_count() > 0, "dropped barrier must be flagged");
}

/// The misbarrier knob's MOVE mode re-cuts epochs around the stores the
/// barrier was meant to order; the analyzer notices through tail writes or
/// publication findings often enough to be useful, and never crashes.
#[test]
fn moved_barriers_analyze_without_panicking() {
    for seed in 0..20u64 {
        let healthy = random_programs(seed, 4, &RandomProgramParams::mixed(40, 8));
        let damaged = apply_misbarrier(
            &healthy,
            seed,
            Misbarrier {
                drop_pct: 0,
                move_pct: 100,
            },
        );
        let _ = analyze(&damaged, &AnalyzeConfig::bep());
    }
}
