//! Rendering: ranked human-readable text and the JSON report document.
//!
//! Op references use the canonical encoding from
//! [`pbm_sim::Op::to_json_value`]'s address space (core + op index), so a
//! report span and a corpus artifact point at the same op the same way.

use crate::diag::{DiagKind, Diagnostic, OpRef, Severity};
use pbm_obs::json::JsonValue;
use std::fmt::Write as _;

/// Schema tag stamped into every JSON report.
pub const REPORT_SCHEMA: &str = "pbm-analyze-report/v1";

/// Summary numbers of one analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalyzeStats {
    /// Cores analyzed (programs in the workload).
    pub cores: usize,
    /// Total operations.
    pub ops: usize,
    /// Static epochs across all cores.
    pub epochs: usize,
    /// Materialized cross-core may edges.
    pub may_edges: usize,
    /// Persistent lines with at least one cross-core conflict.
    pub conflict_lines: usize,
    /// Upper bound on §3.3 deadlock-avoidance splits (see
    /// [`crate::graph::StaticHb::predicted_split_bound`]).
    pub predicted_split_bound: u64,
}

/// A completed analysis: ranked diagnostics plus summary stats.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Diagnostics, most severe first.
    pub diagnostics: Vec<Diagnostic>,
    /// Summary numbers.
    pub stats: AnalyzeStats,
}

impl Report {
    /// Sorts diagnostics most-severe-first (then by kind and first span,
    /// for deterministic output).
    pub(crate) fn rank(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.kind.cmp(&b.kind))
                .then_with(|| a.spans.first().cmp(&b.spans.first()))
                .then_with(|| a.lines.cmp(&b.lines))
        });
    }

    /// The diagnostics a suppression did not silence.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| !d.suppressed)
    }

    /// Unsuppressed diagnostics at `severity` exactly.
    pub fn count(&self, severity: Severity) -> usize {
        self.unsuppressed()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Number of unsuppressed errors — the CI gate.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Unsuppressed diagnostics of `kind`.
    pub fn of_kind(&self, kind: DiagKind) -> Vec<&Diagnostic> {
        self.unsuppressed().filter(|d| d.kind == kind).collect()
    }

    /// Renders the ranked human report for workload `name`.
    pub fn render_human(&self, name: &str) -> String {
        let mut out = String::new();
        let suppressed = self.diagnostics.iter().filter(|d| d.suppressed).count();
        let _ = writeln!(
            out,
            "# pbm-analyze: {name} — {} diagnostics ({} errors, {} warnings, {} info, {} suppressed)",
            self.diagnostics.len(),
            self.error_count(),
            self.count(Severity::Warning),
            self.count(Severity::Info),
            suppressed,
        );
        for d in &self.diagnostics {
            let mark = if d.suppressed { " [suppressed]" } else { "" };
            let spans = d
                .spans
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", ");
            let lines = d
                .lines
                .iter()
                .map(|l| format!("{l:#x}"))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = write!(out, "{}: {}: {}{mark}", d.severity, d.kind, d.message);
            if !spans.is_empty() {
                let _ = write!(out, " [at {spans}]");
            }
            if !lines.is_empty() {
                let _ = write!(out, " (lines {lines})");
            }
            out.push('\n');
        }
        let s = self.stats;
        let _ = writeln!(
            out,
            "# {} cores, {} ops, {} epochs, {} may-edges over {} conflict lines, predicted splits <= {}",
            s.cores, s.ops, s.epochs, s.may_edges, s.conflict_lines, s.predicted_split_bound,
        );
        out
    }

    /// The JSON report document for workload `name`.
    pub fn to_json_value(&self, name: &str) -> JsonValue {
        let diag = |d: &Diagnostic| {
            JsonValue::Object(vec![
                ("kind".into(), JsonValue::Str(d.kind.name().into())),
                ("severity".into(), JsonValue::Str(d.severity.name().into())),
                ("suppressed".into(), JsonValue::Bool(d.suppressed)),
                ("message".into(), JsonValue::Str(d.message.clone())),
                (
                    "spans".into(),
                    JsonValue::Array(
                        d.spans
                            .iter()
                            .map(|s: &OpRef| {
                                JsonValue::Object(vec![
                                    ("core".into(), JsonValue::Num(s.core as u64)),
                                    ("op".into(), JsonValue::Num(s.op as u64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "lines".into(),
                    JsonValue::Array(d.lines.iter().map(|&l| JsonValue::Num(l)).collect()),
                ),
            ])
        };
        let s = self.stats;
        JsonValue::Object(vec![
            ("schema".into(), JsonValue::Str(REPORT_SCHEMA.into())),
            ("workload".into(), JsonValue::Str(name.into())),
            (
                "stats".into(),
                JsonValue::Object(vec![
                    ("cores".into(), JsonValue::Num(s.cores as u64)),
                    ("ops".into(), JsonValue::Num(s.ops as u64)),
                    ("epochs".into(), JsonValue::Num(s.epochs as u64)),
                    ("may_edges".into(), JsonValue::Num(s.may_edges as u64)),
                    (
                        "conflict_lines".into(),
                        JsonValue::Num(s.conflict_lines as u64),
                    ),
                    (
                        "predicted_split_bound".into(),
                        JsonValue::Num(s.predicted_split_bound),
                    ),
                ]),
            ),
            ("errors".into(), JsonValue::Num(self.error_count() as u64)),
            (
                "diagnostics".into(),
                JsonValue::Array(self.diagnostics.iter().map(diag).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mk = |kind, severity, suppressed, core| Diagnostic {
            kind,
            severity,
            message: format!("{kind} on core {core}"),
            spans: vec![OpRef { core, op: 3 }],
            lines: vec![64],
            suppressed,
        };
        let mut r = Report {
            diagnostics: vec![
                mk(DiagKind::TailWrites, Severity::Warning, false, 1),
                mk(DiagKind::PersistencyRace, Severity::Error, false, 0),
                mk(DiagKind::PersistencyRace, Severity::Error, true, 2),
            ],
            stats: AnalyzeStats {
                cores: 3,
                ops: 30,
                epochs: 6,
                may_edges: 2,
                conflict_lines: 1,
                predicted_split_bound: 4,
            },
        };
        r.rank();
        r
    }

    #[test]
    fn ranking_puts_errors_first_and_counts_skip_suppressed() {
        let r = sample();
        assert_eq!(r.diagnostics[0].severity, Severity::Error);
        assert_eq!(r.error_count(), 1, "suppressed error does not count");
        assert_eq!(r.count(Severity::Warning), 1);
        assert_eq!(r.of_kind(DiagKind::PersistencyRace).len(), 1);
    }

    #[test]
    fn human_report_mentions_everything() {
        let text = sample().render_human("demo");
        assert!(text.contains("pbm-analyze: demo"));
        assert!(text.contains("1 errors, 1 warnings, 0 info, 1 suppressed"));
        assert!(text.contains("[suppressed]"));
        assert!(text.contains("c1:op3"));
        assert!(text.contains("predicted splits <= 4"));
    }

    #[test]
    fn json_report_round_trips_through_the_parser() {
        let doc = sample().to_json_value("demo").to_json();
        let back = pbm_obs::json::parse(&doc).expect("parses");
        assert_eq!(
            back.get("schema").and_then(JsonValue::as_str),
            Some(REPORT_SCHEMA)
        );
        assert_eq!(back.get("errors").and_then(JsonValue::as_u64), Some(1));
        let diags = back
            .get("diagnostics")
            .and_then(JsonValue::as_array)
            .expect("array");
        assert_eq!(diags.len(), 3);
        assert_eq!(
            diags[0].get("kind").and_then(JsonValue::as_str),
            Some("persistency-race")
        );
    }
}
