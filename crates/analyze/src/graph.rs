//! The static must/may happens-before graph over static epochs.
//!
//! Must edges are program order (each core's epoch chain). May edges are
//! cross-core conflicts on persistent lines: a writer's epoch may have to
//! persist before any other core's epoch that touches the same line,
//! depending on the runtime access order. Lock-mediated conflicts *stay*
//! in the may graph — mutual exclusion orders the accesses but the persist
//! dependence (and the §3.3 splits it can force) exists either way; locks
//! only decide whether a conflict is also a *race* (see the diagnostics in
//! `lib.rs`).
//!
//! Conflict structure in real workloads is periodic (every transaction
//! re-touches the same hot lines), so materializing every epoch pair on a
//! hot line is quadratic noise. Per line and core the graph keeps the
//! first [`MAX_EPOCHS_PER_LINE_CORE`] conflicting epochs — a cycle among
//! late epochs has an isomorphic image among the earliest ones — while
//! race detection and the split bound use exact whole-program summaries.

use crate::diag::OpRef;
use crate::epoch::CoreAnalysis;
use pbm_core::HbGraph;
use pbm_types::{CoreId, EpochId, EpochTag};
use std::collections::{BTreeMap, BTreeSet};

/// Epoch-pair materialization cap per (line, core); see the module doc.
pub const MAX_EPOCHS_PER_LINE_CORE: usize = 8;

/// Exact per-line conflict summary (all cores, whole program).
#[derive(Debug, Clone, Default)]
pub struct LineConflicts {
    /// Distinct locksets under which each core *stores* the line, with the
    /// first store op per lockset. Distinct locksets per core per line are
    /// few in practice (usually one), which keeps race checks cheap on hot
    /// lines with thousands of accesses.
    pub store_locksets: BTreeMap<usize, Vec<(BTreeSet<u64>, OpRef)>>,
    /// Distinct locksets under which each core *loads* the line.
    pub load_locksets: BTreeMap<usize, Vec<(BTreeSet<u64>, OpRef)>>,
    /// First [`MAX_EPOCHS_PER_LINE_CORE`] distinct epochs per core that
    /// store the line.
    pub writer_epochs: BTreeMap<usize, Vec<(u64, OpRef)>>,
    /// First [`MAX_EPOCHS_PER_LINE_CORE`] distinct epochs per core that
    /// access the line at all.
    pub accessor_epochs: BTreeMap<usize, Vec<(u64, OpRef)>>,
    /// Every core that stores the line (exact, uncapped).
    pub writer_cores: BTreeSet<usize>,
}

/// One materialized cross-core may edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MayEdge {
    /// Writer epoch (must persist first if the writer's access wins).
    pub from: EpochTag,
    /// Dependent epoch.
    pub to: EpochTag,
    /// The conflicting line.
    pub line: u64,
    /// Representative op on the writer side.
    pub from_op: OpRef,
    /// Representative op on the dependent side.
    pub to_op: OpRef,
}

/// A potential dependence cycle: one strongly connected component of the
/// static graph whose may edges span at least two distinct lines.
#[derive(Debug, Clone)]
pub struct CycleFinding {
    /// A concrete witness walk through the component (closing edge back to
    /// the first element implied), from [`HbGraph::find_cycle`].
    pub witness: Vec<EpochTag>,
    /// The distinct conflict lines inside the component.
    pub lines: Vec<u64>,
    /// Representative ops, one per witness epoch where available.
    pub spans: Vec<OpRef>,
}

/// The built graph plus everything the diagnostics need from it.
#[derive(Debug, Clone, Default)]
pub struct StaticHb {
    /// Program order + may dependences, on [`pbm_core::HbGraph`] so the
    /// analyzer shares the simulator's graph machinery (cycle witnesses,
    /// prefix checks in tests).
    pub hb: HbGraph,
    /// Exact per-line conflict summaries.
    pub lines: BTreeMap<u64, LineConflicts>,
    /// Materialized (capped, deduplicated) cross-core may edges.
    pub may_edges: Vec<MayEdge>,
    /// Sound upper bound on §3.3 deadlock-avoidance splits: the number of
    /// ops that access a persistent line some *other* core stores. Every
    /// access-triggered split is caused by such an op, so the simulator's
    /// `deadlock_splits` counter never exceeds this (eviction-triggered
    /// splits are bounded separately by `epochs_eviction_flushed`).
    pub predicted_split_bound: u64,
}

fn tag(core: usize, epoch: u64) -> EpochTag {
    EpochTag::new(CoreId::new(core as u32), EpochId::new(epoch))
}

/// Builds the static graph from the per-core partitions.
pub fn build(cores: &[CoreAnalysis]) -> StaticHb {
    let mut out = StaticHb::default();
    // Program order: each core's epoch chain.
    for ca in cores {
        for pair in ca.epochs.windows(2) {
            out.hb
                .add_program_order(tag(ca.core, pair[0].index), tag(ca.core, pair[1].index));
        }
    }
    // Exact per-line summaries.
    for ca in cores {
        for a in &ca.accesses {
            let lc = out.lines.entry(a.line).or_default();
            let locksets = if a.is_store {
                lc.store_locksets.entry(ca.core).or_default()
            } else {
                lc.load_locksets.entry(ca.core).or_default()
            };
            if !locksets.iter().any(|(s, _)| *s == a.locks) {
                locksets.push((a.locks.clone(), a.at));
            }
            if a.is_store {
                lc.writer_cores.insert(ca.core);
                let we = lc.writer_epochs.entry(ca.core).or_default();
                if we.len() < MAX_EPOCHS_PER_LINE_CORE
                    && we.last().is_none_or(|&(e, _)| e != a.epoch)
                {
                    we.push((a.epoch, a.at));
                }
            }
            let ae = lc.accessor_epochs.entry(ca.core).or_default();
            if ae.len() < MAX_EPOCHS_PER_LINE_CORE && ae.last().is_none_or(|&(e, _)| e != a.epoch) {
                ae.push((a.epoch, a.at));
            }
        }
    }
    // The split bound: one potential split per op touching a line another
    // core stores.
    for ca in cores {
        for a in &ca.accesses {
            let lc = &out.lines[&a.line];
            if lc.writer_cores.iter().any(|&w| w != ca.core) {
                out.predicted_split_bound += 1;
            }
        }
    }
    // May edges: writer epoch -> any other core's conflicting epoch.
    let mut seen: BTreeSet<(EpochTag, EpochTag, u64)> = BTreeSet::new();
    for (&line, lc) in &out.lines {
        for (&wc, writers) in &lc.writer_epochs {
            for (&ac, accessors) in &lc.accessor_epochs {
                if wc == ac {
                    continue;
                }
                for &(we, wop) in writers {
                    for &(ae, aop) in accessors {
                        let (from, to) = (tag(wc, we), tag(ac, ae));
                        if seen.insert((from, to, line)) {
                            out.hb.add_dependence(from, to);
                            out.may_edges.push(MayEdge {
                                from,
                                to,
                                line,
                                from_op: wop,
                                to_op: aop,
                            });
                        }
                    }
                }
            }
        }
    }
    out
}

impl StaticHb {
    /// Finds the potential dependence cycles: SCCs of the combined graph
    /// whose may edges span ≥ 2 distinct lines. Single-line components are
    /// skipped — a conflict on one line linearizes at runtime (the
    /// dependence direction follows the access order), so only multi-line
    /// interleavings can deadlock the flush protocol (Figure 6).
    pub fn cycles(&self) -> Vec<CycleFinding> {
        let sccs = self.sccs();
        let mut findings = Vec::new();
        for scc in sccs {
            if scc.len() < 2 {
                continue;
            }
            let nodes: BTreeSet<EpochTag> = scc.iter().copied().collect();
            let mut lines = BTreeSet::new();
            let mut spans = Vec::new();
            let mut sub = HbGraph::new();
            for e in &self.may_edges {
                if nodes.contains(&e.from) && nodes.contains(&e.to) {
                    lines.insert(e.line);
                    spans.push(e.from_op);
                    sub.add_dependence(e.from, e.to);
                }
            }
            if lines.len() < 2 {
                continue;
            }
            // Program-order edges inside the component complete the walk.
            for &a in &nodes {
                for &b in &nodes {
                    if a.core == b.core && a.precedes_same_core(b) {
                        sub.add_program_order(a, b);
                    }
                }
            }
            let witness = sub
                .find_cycle()
                .expect("an SCC with >= 2 nodes has a cycle");
            spans.sort_unstable();
            spans.dedup();
            spans.truncate(8);
            findings.push(CycleFinding {
                witness,
                lines: lines.into_iter().collect(),
                spans,
            });
        }
        findings
    }

    /// Tarjan's strongly-connected components, iteratively.
    fn sccs(&self) -> Vec<Vec<EpochTag>> {
        let nodes: Vec<EpochTag> = self.hb.nodes().collect();
        let adj: BTreeMap<EpochTag, Vec<EpochTag>> =
            nodes.iter().map(|&n| (n, self.hb.successors(n))).collect();
        let mut index_of: BTreeMap<EpochTag, usize> = BTreeMap::new();
        let mut low: BTreeMap<EpochTag, usize> = BTreeMap::new();
        let mut on_stack: BTreeSet<EpochTag> = BTreeSet::new();
        let mut stack: Vec<EpochTag> = Vec::new();
        let mut next_index = 0usize;
        let mut sccs = Vec::new();
        // Explicit DFS frames: (node, next successor position).
        for &root in &nodes {
            if index_of.contains_key(&root) {
                continue;
            }
            let mut frames: Vec<(EpochTag, usize)> = vec![(root, 0)];
            index_of.insert(root, next_index);
            low.insert(root, next_index);
            next_index += 1;
            stack.push(root);
            on_stack.insert(root);
            while let Some(&(v, pos)) = frames.last() {
                if let Some(&w) = adj[&v].get(pos) {
                    frames.last_mut().expect("frame exists").1 += 1;
                    if let Some(&wi) = index_of.get(&w) {
                        if on_stack.contains(&w) {
                            let lv = low[&v].min(wi);
                            low.insert(v, lv);
                        }
                    } else {
                        index_of.insert(w, next_index);
                        low.insert(w, next_index);
                        next_index += 1;
                        stack.push(w);
                        on_stack.insert(w);
                        frames.push((w, 0));
                    }
                } else {
                    frames.pop();
                    if let Some(&(parent, _)) = frames.last() {
                        let lv = low[&parent].min(low[&v]);
                        low.insert(parent, lv);
                    }
                    if low[&v] == index_of[&v] {
                        let mut scc = Vec::new();
                        loop {
                            let w = stack.pop().expect("root still on stack");
                            on_stack.remove(&w);
                            scc.push(w);
                            if w == v {
                                break;
                            }
                        }
                        sccs.push(scc);
                    }
                }
            }
        }
        sccs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::partition;
    use crate::AnalyzeConfig;
    use pbm_sim::ProgramBuilder;
    use pbm_types::Addr;

    fn analyze_cores(programs: Vec<pbm_sim::Program>) -> Vec<CoreAnalysis> {
        let cfg = AnalyzeConfig::bep();
        programs
            .iter()
            .enumerate()
            .map(|(c, p)| partition(c, p, &cfg))
            .collect()
    }

    #[test]
    fn disjoint_programs_have_no_may_edges() {
        let mut a = ProgramBuilder::new();
        a.store(Addr::new(0), 1).barrier().store(Addr::new(64), 2);
        let mut b = ProgramBuilder::new();
        b.store(Addr::new(128), 1).barrier();
        let hb = build(&analyze_cores(vec![a.build(), b.build()]));
        assert!(hb.may_edges.is_empty());
        assert_eq!(hb.predicted_split_bound, 0);
        assert!(hb.cycles().is_empty());
        assert!(hb.hb.is_acyclic(), "program order alone is acyclic");
    }

    #[test]
    fn single_line_ww_is_not_a_cycle_finding() {
        let mut a = ProgramBuilder::new();
        a.store(Addr::new(0), 1);
        let mut b = ProgramBuilder::new();
        b.store(Addr::new(0), 2);
        let hb = build(&analyze_cores(vec![a.build(), b.build()]));
        assert_eq!(hb.may_edges.len(), 2, "WW conflicts go both ways");
        assert!(!hb.hb.is_acyclic(), "the 2-cycle exists in the may graph");
        assert!(hb.cycles().is_empty(), "but one line cannot deadlock");
        assert_eq!(hb.predicted_split_bound, 2);
    }

    #[test]
    fn two_line_interleaving_is_a_cycle_finding() {
        // The Figure-6 shape: both cores write A and B in one epoch.
        let mut a = ProgramBuilder::new();
        a.store(Addr::new(0), 1).store(Addr::new(64), 1);
        let mut b = ProgramBuilder::new();
        b.store(Addr::new(64), 2).store(Addr::new(0), 2);
        let hb = build(&analyze_cores(vec![a.build(), b.build()]));
        let cycles = hb.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].lines, vec![0, 1]);
        assert!(cycles[0].witness.len() >= 2);
        assert!(!cycles[0].spans.is_empty());
    }

    #[test]
    fn writer_reader_edges_are_one_directional() {
        let mut a = ProgramBuilder::new();
        a.store(Addr::new(0), 1);
        let mut b = ProgramBuilder::new();
        b.load(Addr::new(0));
        let hb = build(&analyze_cores(vec![a.build(), b.build()]));
        assert_eq!(hb.may_edges.len(), 1);
        assert_eq!(hb.may_edges[0].from, tag(0, 0));
        assert_eq!(hb.may_edges[0].to, tag(1, 0));
        assert!(hb.hb.is_acyclic());
        assert_eq!(
            hb.predicted_split_bound, 1,
            "only the reader touches a foreign-written line"
        );
    }

    #[test]
    fn hot_line_epoch_pairs_are_capped() {
        let mut a = ProgramBuilder::new();
        let mut b = ProgramBuilder::new();
        for i in 0..100u32 {
            a.store(Addr::new(0), i).barrier();
            b.store(Addr::new(0), i).barrier();
        }
        let hb = build(&analyze_cores(vec![a.build(), b.build()]));
        let cap = MAX_EPOCHS_PER_LINE_CORE;
        assert!(hb.may_edges.len() <= 2 * cap * cap);
        assert_eq!(hb.predicted_split_bound, 200, "the bound stays exact");
    }
}
