//! Static epoch partitioning: split each core's straight-line program into
//! the epochs the hardware would form, without running it.
//!
//! Under BEP/EP the programmer's barriers cut epochs; under BSP bulk mode
//! the hardware cuts every `bsp_epoch_size` persistent stores. Each
//! persistent-line access is annotated with its epoch and the lock lines
//! held when it executes — the lockset is what decides, later, whether two
//! conflicting accesses are ordered by mutual exclusion or race.

use crate::diag::OpRef;
use crate::AnalyzeConfig;
use pbm_sim::{Op, Program};
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::ops::Range;

/// One persistent-line access with its static context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Access {
    /// Where it is.
    pub at: OpRef,
    /// Line number accessed.
    pub line: u64,
    /// Store (true) or load (false).
    pub is_store: bool,
    /// The core's static epoch the access belongs to.
    pub epoch: u64,
    /// Lock lines held when the access executes.
    pub locks: BTreeSet<u64>,
}

/// One static epoch of one core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticEpoch {
    /// Owning core.
    pub core: usize,
    /// Per-core epoch sequence number (0-based, matches
    /// [`pbm_types::EpochId`] numbering).
    pub index: u64,
    /// Op-index span `[start, end)` in the core's program. A barrier that
    /// closes the epoch is *inside* the span.
    pub span: Range<usize>,
    /// Index of the programmer barrier that closes the epoch; `None` for
    /// the tail epoch and for hardware-cut (BSP) epochs.
    pub closed_by: Option<usize>,
    /// Number of persistent stores in the epoch.
    pub persistent_stores: usize,
}

/// Everything the partitioning pass learns about one core.
#[derive(Debug, Clone, Default)]
pub struct CoreAnalysis {
    /// The core index.
    pub core: usize,
    /// The core's static epochs, in program order (always at least one
    /// for a non-empty program).
    pub epochs: Vec<StaticEpoch>,
    /// Persistent-line accesses, in program order.
    pub accesses: Vec<Access>,
    /// `Unlock` ops releasing a lock that was not held.
    pub unbalanced_unlocks: Vec<OpRef>,
    /// `Lock` ops whose lock is still held when the program ends.
    pub held_at_end: Vec<OpRef>,
    /// `Unlock` ops released after a persistent store in the critical
    /// section with no barrier in between.
    pub unlock_without_barrier: Vec<OpRef>,
}

/// Partitions `program` into static epochs under `cfg`.
pub fn partition(core: usize, program: &Program, cfg: &AnalyzeConfig) -> CoreAnalysis {
    let mut out = CoreAnalysis {
        core,
        ..CoreAnalysis::default()
    };
    // lock line -> (acquiring op, persistent store since the last barrier
    // while held).
    let mut held: BTreeMap<u64, (usize, bool)> = BTreeMap::new();
    let mut epoch: u64 = 0;
    let mut epoch_start = 0usize;
    let mut epoch_stores = 0usize;
    let hardware_cuts = cfg.hardware_epochs();
    let cut = |epochs: &mut Vec<StaticEpoch>,
               epoch: &mut u64,
               start: &mut usize,
               stores: &mut usize,
               closer: Option<usize>,
               end: usize| {
        epochs.push(StaticEpoch {
            core,
            index: *epoch,
            span: *start..end,
            closed_by: closer,
            persistent_stores: *stores,
        });
        *epoch += 1;
        *start = end;
        *stores = 0;
    };
    for (i, &op) in program.ops().iter().enumerate() {
        let at = OpRef { core, op: i };
        match op {
            Op::Load(a) | Op::Store(a, _) => {
                let is_store = matches!(op, Op::Store(_, _));
                if a.as_u64() < cfg.volatile_base {
                    out.accesses.push(Access {
                        at,
                        line: a.line().as_u64(),
                        is_store,
                        epoch,
                        locks: held.keys().copied().collect(),
                    });
                    if is_store {
                        epoch_stores += 1;
                        for (_, dirty) in held.values_mut() {
                            *dirty = true;
                        }
                        if hardware_cuts && epoch_stores as u64 >= cfg.bsp_epoch_size {
                            cut(
                                &mut out.epochs,
                                &mut epoch,
                                &mut epoch_start,
                                &mut epoch_stores,
                                None,
                                i + 1,
                            );
                        }
                    }
                }
            }
            Op::Barrier => {
                cut(
                    &mut out.epochs,
                    &mut epoch,
                    &mut epoch_start,
                    &mut epoch_stores,
                    Some(i),
                    i + 1,
                );
                for (_, dirty) in held.values_mut() {
                    *dirty = false;
                }
            }
            Op::Lock(a) => {
                held.insert(a.line().as_u64(), (i, false));
            }
            Op::Unlock(a) => match held.remove(&a.line().as_u64()) {
                Some((_, dirty)) => {
                    if dirty {
                        out.unlock_without_barrier.push(at);
                    }
                }
                None => out.unbalanced_unlocks.push(at),
            },
            Op::Compute(_) | Op::TxEnd => {}
        }
    }
    // The tail epoch: whatever follows the last cut stays in a
    // never-closed epoch.
    if epoch_start < program.len() {
        out.epochs.push(StaticEpoch {
            core,
            index: epoch,
            span: epoch_start..program.len(),
            closed_by: None,
            persistent_stores: epoch_stores,
        });
    }
    for &(lock_op, _) in held.values() {
        out.held_at_end.push(OpRef { core, op: lock_op });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbm_sim::ProgramBuilder;
    use pbm_types::Addr;

    fn bep() -> AnalyzeConfig {
        AnalyzeConfig::bep()
    }

    #[test]
    fn barriers_cut_epochs_and_count_stores() {
        let mut b = ProgramBuilder::new();
        b.store(Addr::new(0), 1)
            .store(Addr::new(64), 2)
            .barrier()
            .load(Addr::new(0))
            .barrier()
            .store(Addr::new(128), 3);
        let ca = partition(0, &b.build(), &bep());
        assert_eq!(ca.epochs.len(), 3);
        assert_eq!(ca.epochs[0].persistent_stores, 2);
        assert_eq!(ca.epochs[0].closed_by, Some(2));
        assert_eq!(ca.epochs[1].persistent_stores, 0);
        assert_eq!(ca.epochs[2].closed_by, None, "tail epoch is open");
        assert_eq!(ca.epochs[2].persistent_stores, 1);
        assert_eq!(ca.accesses.len(), 4);
        assert_eq!(ca.accesses[3].epoch, 2);
    }

    #[test]
    fn volatile_accesses_are_ignored() {
        let mut b = ProgramBuilder::new();
        b.store(Addr::new(pbm_sim::VOLATILE_BASE + 64), 1)
            .store(Addr::new(64), 2);
        let ca = partition(0, &b.build(), &bep());
        assert_eq!(ca.accesses.len(), 1);
        assert_eq!(ca.epochs[0].persistent_stores, 1);
    }

    #[test]
    fn locksets_track_held_locks() {
        let l1 = Addr::new(pbm_sim::VOLATILE_BASE);
        let l2 = Addr::new(pbm_sim::VOLATILE_BASE + 64);
        let mut b = ProgramBuilder::new();
        b.lock(l1)
            .store(Addr::new(0), 1)
            .lock(l2)
            .store(Addr::new(64), 2)
            .barrier()
            .unlock(l2)
            .unlock(l1)
            .store(Addr::new(128), 3);
        let ca = partition(0, &b.build(), &bep());
        assert_eq!(ca.accesses[0].locks.len(), 1);
        assert_eq!(ca.accesses[1].locks.len(), 2);
        assert!(ca.accesses[2].locks.is_empty());
        assert!(
            ca.unlock_without_barrier.is_empty(),
            "barrier before unlock"
        );
        assert!(ca.unbalanced_unlocks.is_empty());
        assert!(ca.held_at_end.is_empty());
    }

    #[test]
    fn dirty_unlock_and_imbalance_are_recorded() {
        let l1 = Addr::new(pbm_sim::VOLATILE_BASE);
        let l2 = Addr::new(pbm_sim::VOLATILE_BASE + 64);
        let mut b = ProgramBuilder::new();
        b.lock(l1)
            .store(Addr::new(0), 1)
            .unlock(l1) // dirty: store, no barrier
            .unlock(l2) // not held
            .lock(l2); // never released
        let ca = partition(0, &b.build(), &bep());
        assert_eq!(ca.unlock_without_barrier, vec![OpRef { core: 0, op: 2 }]);
        assert_eq!(ca.unbalanced_unlocks, vec![OpRef { core: 0, op: 3 }]);
        assert_eq!(ca.held_at_end, vec![OpRef { core: 0, op: 4 }]);
    }

    #[test]
    fn bsp_cuts_every_n_persistent_stores() {
        let mut b = ProgramBuilder::new();
        for i in 0..7u64 {
            b.store(Addr::new(i * 64), i as u32);
        }
        let mut cfg = AnalyzeConfig::bsp(3);
        cfg.bsp_epoch_size = 3;
        let ca = partition(1, &b.build(), &cfg);
        assert_eq!(ca.epochs.len(), 3, "3 + 3 + tail(1)");
        assert_eq!(ca.epochs[0].persistent_stores, 3);
        assert_eq!(ca.epochs[0].closed_by, None, "hardware cut, no barrier op");
        assert_eq!(ca.epochs[2].persistent_stores, 1);
        assert_eq!(ca.accesses[6].epoch, 2);
    }

    #[test]
    fn empty_program_has_no_epochs() {
        let ca = partition(0, &Program::empty(), &bep());
        assert!(ca.epochs.is_empty());
        assert!(ca.accesses.is_empty());
    }
}
