//! Diagnostics: what the analyzer reports, how severe it is, and how a
//! workload author silences a finding they have judged benign.

use std::fmt;

/// A reference to one operation: `(core, index into that core's program)`.
///
/// This is the span unit of every diagnostic — programs are straight-line,
/// so an op index is as precise as a source line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpRef {
    /// Core whose program contains the op.
    pub core: usize,
    /// Index of the op in that core's program.
    pub op: usize,
}

impl fmt::Display for OpRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}:op{}", self.core, self.op)
    }
}

/// How bad a finding is.
///
/// `Error` gates CI (the `analyze` binary exits nonzero on any
/// unsuppressed error); `Warning` is reported but non-fatal — the
/// micro-benchmarks legitimately warn (lock-mediated conflict cycles that
/// the hardware resolves with §3.3 splits); `Info` is context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational — expected behaviour worth surfacing.
    Info,
    /// Suspicious but survivable; the hardware or the programmer may have
    /// it covered.
    Warning,
    /// A crash-consistency hazard under the configured persistency model.
    Error,
}

impl Severity {
    /// Stable lower-case label (report format).
    pub const fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The analyzer's diagnostic catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagKind {
    /// Two cores store the same persistent line with no common lock: the
    /// persist order of their epochs depends on the race winner.
    PersistencyRace,
    /// A strongly connected component in the static happens-before graph
    /// spanning at least two conflict lines: at runtime the epoch flush
    /// protocol would need §3.3 deadlock-avoidance splits to make
    /// progress.
    EpochDeadlockCycle,
    /// A persist barrier closing an epoch with no persistent stores: it
    /// orders nothing.
    RedundantBarrier,
    /// Persistent stores after the last barrier of a program: under BEP
    /// they sit in a never-closed epoch and may not persist before a
    /// crash.
    TailWrites,
    /// A store whose line another core reads (then relies on data written
    /// earlier in the same epoch): publication without a separating
    /// barrier, the Figure-10 commit-protocol bug.
    UnorderedPublication,
    /// A critical section wrote persistent data but releases the lock
    /// without a barrier: the next owner can observe (and republish)
    /// unpersisted state.
    UnlockWithoutBarrier,
    /// Unlock of a lock that is not held, or a lock still held when the
    /// program ends.
    LockImbalance,
}

impl DiagKind {
    /// Every kind, in a stable order.
    pub const ALL: [DiagKind; 7] = [
        DiagKind::PersistencyRace,
        DiagKind::EpochDeadlockCycle,
        DiagKind::RedundantBarrier,
        DiagKind::TailWrites,
        DiagKind::UnorderedPublication,
        DiagKind::UnlockWithoutBarrier,
        DiagKind::LockImbalance,
    ];

    /// Stable kebab-case name (suppression and report format).
    pub const fn name(self) -> &'static str {
        match self {
            DiagKind::PersistencyRace => "persistency-race",
            DiagKind::EpochDeadlockCycle => "epoch-deadlock-cycle",
            DiagKind::RedundantBarrier => "redundant-barrier",
            DiagKind::TailWrites => "tail-writes",
            DiagKind::UnorderedPublication => "unordered-publication",
            DiagKind::UnlockWithoutBarrier => "unlock-without-barrier",
            DiagKind::LockImbalance => "lock-imbalance",
        }
    }

    /// Parses a [`Self::name`] string.
    pub fn from_name(name: &str) -> Option<DiagKind> {
        Self::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl fmt::Display for DiagKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub kind: DiagKind,
    /// How severe it is under the analyzed persistency model.
    pub severity: Severity,
    /// Human explanation, self-contained.
    pub message: String,
    /// The ops the finding is anchored to (first span is the primary one).
    pub spans: Vec<OpRef>,
    /// Persistent line numbers involved.
    pub lines: Vec<u64>,
    /// True if a [`Suppression`] matched; suppressed findings are kept in
    /// the report but do not gate.
    pub suppressed: bool,
}

/// A per-finding suppression: comma-separated `key=value` constraints.
///
/// Keys: `kind` (diagnostic name), `core`, `op`, `line` (decimal or
/// `0x…` hex line number). Every given key must match; omitted keys match
/// anything. `core`/`op` must match within a *single* span of the
/// diagnostic.
///
/// ```
/// use pbm_analyze::Suppression;
/// let s = Suppression::parse("kind=persistency-race,core=1,line=0x40").unwrap();
/// assert_eq!(s.line, Some(0x40));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Suppression {
    /// Diagnostic kind to match, if constrained.
    pub kind: Option<DiagKind>,
    /// Core a span must mention, if constrained.
    pub core: Option<usize>,
    /// Op index a span must mention, if constrained.
    pub op: Option<usize>,
    /// Line number the finding must involve, if constrained.
    pub line: Option<u64>,
}

impl Suppression {
    /// Parses the `key=value[,key=value…]` syntax.
    pub fn parse(spec: &str) -> Result<Suppression, String> {
        let mut s = Suppression::default();
        let mut any = false;
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("suppression {part:?} is not key=value"))?;
            let parse_num = |v: &str| -> Result<u64, String> {
                let r = match v.strip_prefix("0x") {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => v.parse(),
                };
                r.map_err(|_| format!("bad number {v:?} in suppression"))
            };
            match key {
                "kind" => {
                    s.kind = Some(
                        DiagKind::from_name(value)
                            .ok_or_else(|| format!("unknown diagnostic kind {value:?}"))?,
                    );
                }
                "core" => s.core = Some(parse_num(value)? as usize),
                "op" => s.op = Some(parse_num(value)? as usize),
                "line" => s.line = Some(parse_num(value)?),
                _ => return Err(format!("unknown suppression key {key:?}")),
            }
            any = true;
        }
        if !any {
            return Err("empty suppression".to_string());
        }
        Ok(s)
    }

    /// True if every given key matches `diag`.
    pub fn matches(&self, diag: &Diagnostic) -> bool {
        if self.kind.is_some_and(|k| k != diag.kind) {
            return false;
        }
        if self.line.is_some_and(|l| !diag.lines.contains(&l)) {
            return false;
        }
        if self.core.is_some() || self.op.is_some() {
            let span_hit = diag.spans.iter().any(|s| {
                self.core.is_none_or(|c| c == s.core) && self.op.is_none_or(|o| o == s.op)
            });
            if !span_hit {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag() -> Diagnostic {
        Diagnostic {
            kind: DiagKind::PersistencyRace,
            severity: Severity::Error,
            message: "race".into(),
            spans: vec![OpRef { core: 1, op: 2 }, OpRef { core: 3, op: 9 }],
            lines: vec![0x40],
            suppressed: false,
        }
    }

    #[test]
    fn kinds_round_trip() {
        for k in DiagKind::ALL {
            assert_eq!(DiagKind::from_name(k.name()), Some(k));
            assert_eq!(k.to_string(), k.name());
        }
        assert_eq!(DiagKind::from_name("no-such"), None);
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn suppressions_parse_and_match() {
        let s = Suppression::parse("kind=persistency-race,core=1,op=2,line=0x40").unwrap();
        assert!(s.matches(&diag()));
        // Same keys on different spans do not combine across spans.
        let cross = Suppression::parse("core=1,op=9").unwrap();
        assert!(!cross.matches(&diag()));
        assert!(Suppression::parse("core=3,op=9").unwrap().matches(&diag()));
        assert!(!Suppression::parse("kind=tail-writes")
            .unwrap()
            .matches(&diag()));
        assert!(Suppression::parse("line=64").unwrap().matches(&diag()));
        assert!(!Suppression::parse("line=65").unwrap().matches(&diag()));
    }

    #[test]
    fn suppression_parse_rejects_garbage() {
        assert!(Suppression::parse("").is_err());
        assert!(Suppression::parse("core").is_err());
        assert!(Suppression::parse("core=x").is_err());
        assert!(Suppression::parse("kind=nope").is_err());
        assert!(Suppression::parse("banana=1").is_err());
    }
}
