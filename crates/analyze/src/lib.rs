//! `pbm-analyze` — static persist-order analysis over the shared
//! [`pbm_sim::Program`] IR, without simulating.
//!
//! The analyzer partitions each core's straight-line program into the
//! static epochs the hardware would form (programmer barriers under
//! BEP/EP, `bsp_epoch_size`-store hardware cuts under BSP bulk mode),
//! builds a must/may happens-before graph over them (program order plus
//! cross-core conflicts on persistent lines, with lock regions tracked),
//! and emits ranked diagnostics with op-index spans:
//!
//! | kind | severity (BEP / BSP) | meaning |
//! |------|----------------------|---------|
//! | `persistency-race` | error / info | cross-core stores to one line, no common lock |
//! | `unordered-publication` | error / – | flag published in the same epoch as its data |
//! | `epoch-deadlock-cycle` | warning | static HB cycle over ≥ 2 lines (§3.3 splits) |
//! | `tail-writes` | warning / – | persistent stores after the last barrier |
//! | `redundant-barrier` | warning | barrier closing a store-free epoch |
//! | `unlock-without-barrier` | warning | critical section publishes unpersisted data |
//! | `lock-imbalance` | warning | unlock-not-held / never-released lock |
//!
//! Findings can be silenced per-op with [`Suppression`]s
//! (`kind=…,core=…,op=…,line=…`). The `analyze` binary in `pbm-bench`
//! lints every built-in workload and gates CI on unsuppressed errors.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod diag;
pub mod epoch;
pub mod graph;
pub mod report;

pub use diag::{DiagKind, Diagnostic, OpRef, Severity, Suppression};
pub use report::{AnalyzeStats, Report, REPORT_SCHEMA};

use epoch::CoreAnalysis;
use graph::StaticHb;
use pbm_sim::Program;
use pbm_types::PersistencyKind;
use std::collections::BTreeSet;

/// What the analyzer assumes about the hardware and what it silences.
#[derive(Debug, Clone)]
pub struct AnalyzeConfig {
    /// Persistency model the workload targets. BEP/EP trust the
    /// programmer's barriers (strictest diagnostics); BSP bulk mode cuts
    /// epochs in hardware, demoting barrier-placement findings.
    pub persistency: PersistencyKind,
    /// Hardware epoch size for BSP bulk mode (persistent stores per
    /// epoch).
    pub bsp_epoch_size: u64,
    /// Addresses at or above this are volatile: never tagged, never
    /// persisted, invisible to the analysis (locks live there).
    pub volatile_base: u64,
    /// Findings to silence.
    pub suppressions: Vec<Suppression>,
}

impl AnalyzeConfig {
    /// Buffered epoch persistency with programmer barriers — the
    /// micro-benchmark configuration and the default lint mode.
    pub fn bep() -> Self {
        AnalyzeConfig {
            persistency: PersistencyKind::BufferedEpoch,
            bsp_epoch_size: 7,
            volatile_base: pbm_sim::VOLATILE_BASE,
            suppressions: Vec::new(),
        }
    }

    /// BSP bulk mode with hardware epochs of `bsp_epoch_size` stores —
    /// the application-proxy configuration.
    pub fn bsp(bsp_epoch_size: u64) -> Self {
        AnalyzeConfig {
            persistency: PersistencyKind::BufferedStrictBulk,
            bsp_epoch_size,
            ..AnalyzeConfig::bep()
        }
    }

    /// True when the hardware cuts epochs itself (barrier placement is
    /// not the programmer's correctness tool).
    pub fn hardware_epochs(&self) -> bool {
        matches!(
            self.persistency,
            PersistencyKind::BufferedStrictBulk | PersistencyKind::Strict
        )
    }
}

impl Default for AnalyzeConfig {
    fn default() -> Self {
        AnalyzeConfig::bep()
    }
}

/// Analyzes `programs` (one per core) under `cfg` and returns the ranked
/// report. Purely static — nothing is simulated.
pub fn analyze(programs: &[Program], cfg: &AnalyzeConfig) -> Report {
    let cores: Vec<CoreAnalysis> = programs
        .iter()
        .enumerate()
        .map(|(c, p)| epoch::partition(c, p, cfg))
        .collect();
    let hb = graph::build(&cores);
    let mut report = Report {
        diagnostics: Vec::new(),
        stats: AnalyzeStats {
            cores: programs.len(),
            ops: programs.iter().map(Program::len).sum(),
            epochs: cores.iter().map(|c| c.epochs.len()).sum(),
            may_edges: hb.may_edges.len(),
            conflict_lines: hb
                .lines
                .iter()
                .filter(|(_, lc)| {
                    let cores_involved: BTreeSet<usize> = lc
                        .store_locksets
                        .keys()
                        .chain(lc.load_locksets.keys())
                        .copied()
                        .collect();
                    !lc.writer_cores.is_empty() && cores_involved.len() > 1
                })
                .count(),
            predicted_split_bound: hb.predicted_split_bound,
        },
    };
    races(&hb, cfg, &mut report);
    cycles(&hb, &mut report);
    barrier_findings(&cores, cfg, &mut report);
    publications(&cores, &hb, cfg, &mut report);
    lock_findings(&cores, &mut report);
    for d in &mut report.diagnostics {
        d.suppressed = cfg.suppressions.iter().any(|s| s.matches(d));
    }
    report.rank();
    report
}

/// `persistency-race`: two cores store one persistent line with no common
/// lock. Under BEP the relative persist order of their epochs is then
/// whatever the race resolves to — recovery can observe either. Under BSP
/// bulk mode the machine-wide epoch ordering covers it (info only).
fn races(hb: &StaticHb, cfg: &AnalyzeConfig, report: &mut Report) {
    let severity = if cfg.hardware_epochs() {
        Severity::Info
    } else {
        Severity::Error
    };
    for (&line, lc) in &hb.lines {
        let cores: Vec<usize> = lc.store_locksets.keys().copied().collect();
        let mut found: Option<(diag::OpRef, diag::OpRef)> = None;
        'outer: for (i, &a) in cores.iter().enumerate() {
            for &b in &cores[i + 1..] {
                for (sa, ra) in &lc.store_locksets[&a] {
                    for (sb, rb) in &lc.store_locksets[&b] {
                        if sa.intersection(sb).next().is_none() {
                            found = Some((*ra, *rb));
                            break 'outer;
                        }
                    }
                }
            }
        }
        if let Some((ra, rb)) = found {
            report.diagnostics.push(Diagnostic {
                kind: DiagKind::PersistencyRace,
                severity,
                message: format!(
                    "cores {} and {} both store line {line:#x} with no common lock; \
                     the epochs' persist order depends on the race",
                    ra.core, rb.core
                ),
                spans: vec![ra, rb],
                lines: vec![line],
                suppressed: false,
            });
        }
    }
}

/// `epoch-deadlock-cycle`: a static happens-before cycle over at least two
/// conflict lines — at runtime the flush protocol breaks it with §3.3
/// epoch splits, so the finding is a warning plus the predicted bound.
fn cycles(hb: &StaticHb, report: &mut Report) {
    for c in hb.cycles() {
        let walk = c
            .witness
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(" -> ");
        report.diagnostics.push(Diagnostic {
            kind: DiagKind::EpochDeadlockCycle,
            severity: Severity::Warning,
            message: format!(
                "potential dependence cycle {walk} over {} lines; the hardware \
                 resolves such cycles with epoch splits (predicted <= {} splits \
                 across the run)",
                c.lines.len(),
                hb.predicted_split_bound
            ),
            spans: c.spans,
            lines: c.lines,
            suppressed: false,
        });
    }
}

/// `redundant-barrier` and `tail-writes` (the latter only where the
/// programmer owns epoch boundaries).
fn barrier_findings(cores: &[CoreAnalysis], cfg: &AnalyzeConfig, report: &mut Report) {
    for ca in cores {
        for e in &ca.epochs {
            if let Some(b) = e.closed_by {
                if e.persistent_stores == 0 {
                    report.diagnostics.push(Diagnostic {
                        kind: DiagKind::RedundantBarrier,
                        severity: Severity::Warning,
                        message: format!(
                            "barrier closes epoch E{} of core {} which has no \
                             persistent stores; it orders nothing",
                            e.index, ca.core
                        ),
                        spans: vec![OpRef {
                            core: ca.core,
                            op: b,
                        }],
                        lines: Vec::new(),
                        suppressed: false,
                    });
                }
            }
        }
        if cfg.hardware_epochs() {
            continue;
        }
        if let Some(tail) = ca.epochs.last().filter(|e| e.closed_by.is_none()) {
            if tail.persistent_stores > 0 {
                let first_store = ca
                    .accesses
                    .iter()
                    .find(|a| a.epoch == tail.index && a.is_store)
                    .map(|a| a.at)
                    .expect("tail epoch counted a store");
                report.diagnostics.push(Diagnostic {
                    kind: DiagKind::TailWrites,
                    severity: Severity::Warning,
                    message: format!(
                        "{} persistent store(s) after the last barrier of core {}; \
                         they sit in a never-closed epoch and may not persist \
                         before a crash",
                        tail.persistent_stores, ca.core
                    ),
                    spans: vec![first_store],
                    lines: Vec::new(),
                    suppressed: false,
                });
            }
        }
    }
}

/// `unordered-publication`: the Figure-10 commit-protocol bug, statically.
///
/// A store `F` *publishes* earlier stores of its own epoch if another core
/// loads `F`'s line and *later* loads a line the publisher stored earlier
/// in the same epoch — the reader's program relies on "if I see F, the
/// data is there", which only holds if a barrier separates them. Fires
/// when the flag conflict is not lock-ordered; skipped entirely under
/// hardware epochs.
fn publications(cores: &[CoreAnalysis], hb: &StaticHb, cfg: &AnalyzeConfig, report: &mut Report) {
    if cfg.hardware_epochs() {
        return;
    }
    // Cap on earlier-in-epoch lines tracked per publication candidate.
    const MAX_PUBLISHED_LINES: usize = 32;
    let mut diagnosed: BTreeSet<(usize, u64)> = BTreeSet::new();
    for ca in cores {
        for (fi, f) in ca.accesses.iter().enumerate() {
            if !f.is_store || diagnosed.contains(&(ca.core, f.line)) {
                continue;
            }
            // Lines this core stored earlier in F's epoch.
            let earlier = || {
                ca.accesses[..fi]
                    .iter()
                    .filter(|a| a.is_store && a.epoch == f.epoch && a.line != f.line)
            };
            let published: BTreeSet<u64> = earlier()
                .map(|a| a.line)
                .take(MAX_PUBLISHED_LINES)
                .collect();
            if published.is_empty() {
                continue;
            }
            // A lock-disciplined publisher is exempt: when the flag and all
            // the data it publishes are written under a common lock,
            // readers that want the flag->data ordering must take that
            // lock — an unlocked reader is racing by choice, not missing a
            // barrier (the rbtree micro's unlocked searches, for example).
            let disciplined = !f.locks.is_empty()
                && earlier().all(|a| a.locks.intersection(&f.locks).next().is_some());
            if disciplined {
                continue;
            }
            let Some(lc) = hb.lines.get(&f.line) else {
                continue;
            };
            for reader in cores.iter().filter(|r| r.core != ca.core) {
                // The reader's first un-lock-ordered load of F's line.
                let flag_load = lc.load_locksets.get(&reader.core).and_then(|sets| {
                    sets.iter()
                        .filter(|(locks, _)| locks.intersection(&f.locks).next().is_none())
                        .map(|&(_, at)| at)
                        .min_by_key(|at| at.op)
                });
                let Some(flag_load) = flag_load else { continue };
                // A later load of a published line completes the pattern.
                let dependent = reader
                    .accesses
                    .iter()
                    .find(|a| !a.is_store && a.at.op > flag_load.op && published.contains(&a.line));
                if let Some(dep) = dependent {
                    diagnosed.insert((ca.core, f.line));
                    report.diagnostics.push(Diagnostic {
                        kind: DiagKind::UnorderedPublication,
                        severity: Severity::Error,
                        message: format!(
                            "core {} stores line {:#x} in the same epoch as {} earlier \
                             data line(s), and core {} reads the flag then the data \
                             (line {:#x}); a barrier must separate data from flag",
                            ca.core,
                            f.line,
                            published.len(),
                            reader.core,
                            dep.line
                        ),
                        spans: vec![f.at, flag_load, dep.at],
                        lines: vec![f.line, dep.line],
                        suppressed: false,
                    });
                    break;
                }
            }
        }
    }
}

/// `unlock-without-barrier` and `lock-imbalance`.
fn lock_findings(cores: &[CoreAnalysis], report: &mut Report) {
    let push = |kind, at: OpRef, message: String, report: &mut Report| {
        report.diagnostics.push(Diagnostic {
            kind,
            severity: Severity::Warning,
            message,
            spans: vec![at],
            lines: Vec::new(),
            suppressed: false,
        });
    };
    for ca in cores {
        for &at in &ca.unlock_without_barrier {
            push(
                DiagKind::UnlockWithoutBarrier,
                at,
                format!(
                    "core {} releases a lock after persistent stores with no \
                     barrier in between; the next owner can observe and \
                     republish unpersisted state",
                    at.core
                ),
                report,
            );
        }
        for &at in &ca.unbalanced_unlocks {
            push(
                DiagKind::LockImbalance,
                at,
                format!("core {} unlocks a lock it does not hold", at.core),
                report,
            );
        }
        for &at in &ca.held_at_end {
            push(
                DiagKind::LockImbalance,
                at,
                format!(
                    "core {} still holds the lock acquired here when its \
                     program ends",
                    at.core
                ),
                report,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbm_sim::ProgramBuilder;
    use pbm_types::Addr;

    fn progs(build: impl FnOnce(&mut ProgramBuilder, &mut ProgramBuilder)) -> Vec<Program> {
        let mut a = ProgramBuilder::new();
        let mut b = ProgramBuilder::new();
        build(&mut a, &mut b);
        vec![a.build(), b.build()]
    }

    #[test]
    fn unlocked_ww_is_an_error_under_bep_and_info_under_bsp() {
        let programs = progs(|a, b| {
            a.store(Addr::new(0), 1).barrier();
            b.store(Addr::new(0), 2).barrier();
        });
        let r = analyze(&programs, &AnalyzeConfig::bep());
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.of_kind(DiagKind::PersistencyRace).len(), 1);
        let r = analyze(&programs, &AnalyzeConfig::bsp(7));
        assert_eq!(r.error_count(), 0);
        let races = r.of_kind(DiagKind::PersistencyRace);
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].severity, Severity::Info);
    }

    #[test]
    fn common_lock_silences_the_race() {
        let l = Addr::new(pbm_sim::VOLATILE_BASE);
        let programs = progs(|a, b| {
            a.lock(l).store(Addr::new(0), 1).barrier().unlock(l);
            b.lock(l).store(Addr::new(0), 2).barrier().unlock(l);
        });
        let r = analyze(&programs, &AnalyzeConfig::bep());
        assert_eq!(r.error_count(), 0, "{:?}", r.diagnostics);
        assert!(r.of_kind(DiagKind::PersistencyRace).is_empty());
    }

    #[test]
    fn redundant_barrier_and_tail_writes_warn() {
        let programs = progs(|a, b| {
            a.barrier().store(Addr::new(0), 1);
            b.compute(5).barrier();
        });
        let r = analyze(&programs, &AnalyzeConfig::bep());
        assert_eq!(r.of_kind(DiagKind::RedundantBarrier).len(), 2);
        assert_eq!(r.of_kind(DiagKind::TailWrites).len(), 1);
        // BSP: the hardware cuts epochs, tail writes are fine.
        let r = analyze(&programs, &AnalyzeConfig::bsp(7));
        assert!(r.of_kind(DiagKind::TailWrites).is_empty());
    }

    #[test]
    fn suppressions_mark_but_keep_findings() {
        let programs = progs(|a, b| {
            a.store(Addr::new(0), 1).barrier();
            b.store(Addr::new(0), 2).barrier();
        });
        let mut cfg = AnalyzeConfig::bep();
        cfg.suppressions = vec![Suppression::parse("kind=persistency-race,line=0").unwrap()];
        let r = analyze(&programs, &cfg);
        assert_eq!(r.error_count(), 0);
        assert_eq!(r.diagnostics.len(), 1, "kept, just marked");
        assert!(r.diagnostics[0].suppressed);
    }

    #[test]
    fn stats_summarize_the_workload() {
        let programs = progs(|a, b| {
            a.store(Addr::new(0), 1).barrier().store(Addr::new(64), 2);
            b.load(Addr::new(0));
        });
        let r = analyze(&programs, &AnalyzeConfig::bep());
        assert_eq!(r.stats.cores, 2);
        assert_eq!(r.stats.ops, 4);
        assert_eq!(r.stats.epochs, 3);
        assert_eq!(r.stats.conflict_lines, 1);
        assert!(r.stats.predicted_split_bound >= 1);
    }
}
