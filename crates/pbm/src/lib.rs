//! `pbm` — *Efficient Persist Barriers for Multicores* (Joshi, Nagarajan,
//! Cintra, Viglas; MICRO-48, 2015), reproduced as a Rust library.
//!
//! Emerging non-volatile memories make persistence as fast as memory — if
//! the memory system can be told in what order dirty cache lines must
//! reach NVRAM. The paper's answer is **LB++**, an efficient *persist
//! barrier* that keeps those orderings out of the critical path using two
//! optimizations over the state-of-the-art lazy barrier (LB):
//! inter-thread dependence tracking (IDT) and proactive flushing (PF),
//! plus epoch-deadlock avoidance and a multi-banked LLC flush protocol.
//!
//! This crate is the facade over the workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`types`] | ids, addresses, `SystemConfig` (Table 1), statistics |
//! | [`noc`] | 2D-mesh on-chip network model |
//! | [`nvram`] | NVRAM device, memory controllers, undo log, snapshots |
//! | [`cache`] | epoch-tagged cache arrays, victim policy, directory |
//! | [`core`] | the paper's contribution: arbiter, IDT, PF, deadlock avoidance, recovery checking |
//! | [`sim`] | the deterministic multicore timing simulator |
//! | [`workloads`] | Table 2 micro-benchmarks + nine BSP application proxies |
//! | [`analyze`] | static persist-order analyzer: epoch partitioning, happens-before linting |
//! | [`prof`] | offline causal critical-path profiler, flame-graph export, perf-regression diffing |
//!
//! # Quickstart
//!
//! ```
//! use pbm::prelude::*;
//!
//! // A 4-core system running the LB++ barrier under buffered epoch
//! // persistency (the paper's headline configuration).
//! let mut cfg = SystemConfig::small_test();
//! cfg.barrier = BarrierKind::LbPp;
//!
//! // One thread inserts into a persistent queue: data epoch, barrier,
//! // pointer epoch, barrier (Figure 10).
//! let mut b = ProgramBuilder::new();
//! b.store_span(Addr::new(0), 512, 7).barrier()
//!     .store(Addr::new(4096), 1).barrier();
//!
//! let mut sys = System::new(cfg, vec![b.build()])?;
//! let stats = sys.run();
//! assert_eq!(stats.epochs_persisted, 2);
//! # Ok::<(), pbm::types::ConfigError>(())
//! ```

#![warn(missing_docs)]

pub use pbm_analyze as analyze;
pub use pbm_cache as cache;
pub use pbm_core as core;
pub use pbm_noc as noc;
pub use pbm_nvram as nvram;
pub use pbm_obs as obs;
pub use pbm_prof as prof;
pub use pbm_sim as sim;
pub use pbm_types as types;
pub use pbm_workloads as workloads;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use pbm_core::{BarrierSemantics, EpochArbiter};
    pub use pbm_nvram::DurableSnapshot;
    pub use pbm_sim::{Op, Program, ProgramBuilder, System, VOLATILE_BASE};
    pub use pbm_types::{
        Addr, BarrierKind, ConfigError, CoreId, Cycle, EpochId, EpochTag, FlushMode, LineAddr,
        PersistencyKind, SimStats, SystemConfig,
    };
    pub use pbm_workloads::{apps, micro, Workload};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_reexports() {
        use crate::prelude::*;
        let cfg = SystemConfig::small_test();
        assert_eq!(cfg.cores, 4);
        let _ = BarrierKind::LbPp;
    }
}
